"""Concurrent view serving: one writer, many snapshot readers (CQRS).

A :class:`~repro.runtime.session.Session` is single-threaded — the same
caller applies updates and reads views, and every read flushes batched
pending work.  That is the right contract for a maintenance *engine*,
but it makes "serving heavy read traffic while the stream keeps
flowing" impossible: readers would serialize behind the writer and
every read would pay a flush.

:class:`ViewServer` splits the two roles (the CQRS pattern, run at
production scale by Snowflake Dynamic Tables' delayed-view model):

* **one writer thread** owns the session outright.  It drains an
  ingress :class:`queue.Queue` of :class:`~repro.runtime.updates
  .FactoredUpdate`\\ s (queue-based load leveling: bursts queue up
  instead of stalling producers) through the session's normal
  ``apply_update`` path — so PR 5 batching, drift probes and
  :class:`~repro.runtime.drift.ReplanMonitor` re-planning all run
  unchanged, **on the writer thread** (the flush-before-switch
  convention is preserved because the writer is the only thread that
  ever touches session state);
* **epoch snapshots** are the read side: when the staleness policy
  fires, the writer flushes the session and publishes an immutable
  copy of the served views under a new epoch number.  Publication is
  one reference assignment (atomic under the GIL), so
* **readers are lock-free**: :meth:`ViewServer.read` returns the last
  published epoch's value without taking any lock and **never forces a
  flush** — a read can lag the stream by at most the staleness bound,
  and never blocks (or is blocked by) the writer.

The staleness policy is explicit: ``max_staleness`` bounds how many
absorbed-but-unpublished updates a snapshot may lag (``None`` = only
publish when the queue idles), ``max_age`` adds a wall-clock bound on
the oldest unpublished update.  Whenever the ingress queue runs dry the
writer publishes immediately, so an idle server is always fresh.

:class:`FlushOnReadServer` is the strawman this replaces — a mutex
around the session where every read flushes — kept as the measured
baseline for ``benchmarks/bench_serve_latency.py`` and
``repro serve --baseline``.  :func:`run_load` is the shared load
generator (writer pressure + paced reader threads, p50/p99 read
latency, achieved staleness, writer throughput) used by the benchmark
and the ``repro serve`` CLI.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from .updates import FactoredUpdate

#: Default bound on absorbed-but-unpublished updates per snapshot.
DEFAULT_MAX_STALENESS = 64

#: Ingress overload policies a bounded server accepts.
OVERLOAD_POLICIES = ("block", "reject", "shed-oldest")

_STOP = object()


class ServerClosedError(RuntimeError):
    """Raised when submitting to (or reading from) a closed server."""


class WriterFailedError(RuntimeError):
    """The writer thread died; the original exception is ``__cause__``."""


class IngressOverflowError(RuntimeError):
    """A bounded ``overload="reject"`` ingress queue refused an update."""


class IngressTimeoutError(RuntimeError):
    """A blocking ingress enqueue exceeded its ``timeout``."""


@dataclass(frozen=True)
class Snapshot:
    """One published epoch: an immutable view of the maintained state.

    ``seq`` counts the update/task events folded in since the server
    started; ``pending`` is how many of those landed since the previous
    epoch (the staleness this publication cleared).  Arrays are
    read-only copies — they never change after publication, so readers
    may hold them indefinitely.
    """

    epoch: int
    seq: int
    views: Mapping[str, np.ndarray]
    pending: int
    published_at: float


@dataclass
class ServerStats:
    """Counters describing one server's lifetime (writer-side unless noted)."""

    #: Updates/tasks accepted into the ingress queue (submitter-side).
    submitted: int = 0
    #: Update/task events the writer has applied to the session.
    applied: int = 0
    #: Epochs published.
    epochs: int = 0
    #: Largest pending count any publication cleared (achieved staleness).
    max_pending_at_publish: int = 0
    #: Per-publication pending counts (the staleness trace).
    pending_log: list[int] = field(default_factory=list)
    #: Total seconds spent flushing + copying snapshots.
    publish_seconds: float = 0.0
    #: Updates dropped by the ``shed-oldest`` overload policy.
    shed: int = 0
    #: Updates refused by the ``reject`` overload policy.
    rejected: int = 0
    #: Queued updates thrown away by ``close(discard=True)`` / deadline.
    discarded: int = 0
    #: Snapshots cut at epoch-publish boundaries (writer thread).
    checkpoints: int = 0

    def as_dict(self) -> dict:
        """Scalar counters as a JSON-ready dict (the bench schema)."""
        return {
            "submitted": self.submitted,
            "applied": self.applied,
            "epochs": self.epochs,
            "max_pending_at_publish": self.max_pending_at_publish,
            "publish_seconds": self.publish_seconds,
            "shed": self.shed,
            "rejected": self.rejected,
            "discarded": self.discarded,
            "checkpoints": self.checkpoints,
        }


# -- engines --------------------------------------------------------------
#
# A ViewServer drives an *engine*: the small surface it needs from
# whatever maintains the state.  Sessions (and their drift/replan
# monitors) get one adapter, the analytics drivers another, so the
# writer loop itself stays agnostic.

class SessionEngine:
    """Adapts a :class:`Session` (or drift/replan monitor) for serving.

    ``target`` may be a bare session or a
    :class:`~repro.runtime.drift.SessionDriftMonitor` /
    :class:`~repro.runtime.drift.ReplanMonitor`; attribute access on
    monitors falls through to the *current* session, so a mid-stream
    :meth:`~repro.runtime.session.Session.with_plan` switch is
    transparent here — the writer keeps calling ``apply_update`` and
    the monitor re-plans underneath it, on the writer thread.
    """

    def __init__(self, target):
        self.target = target
        self.program = target.program

    def default_names(self) -> tuple[str, ...]:
        """Views published when the caller named none: the outputs."""
        return tuple(self.program.outputs)

    def available(self) -> frozenset[str]:
        """Every view name a reader may :meth:`ViewServer.watch`."""
        return frozenset(self.target.views.names())

    def apply(self, update: FactoredUpdate) -> None:
        """Apply one factored update (writer thread only)."""
        self.target.apply_update(update)

    def flush(self) -> None:
        """Land deferred (batched / heavy-light) updates before capture."""
        self.target.flush()

    def capture(self, names: Iterable[str]) -> dict[str, np.ndarray]:
        """Fresh dense copies of ``names`` (caller flushed already).

        ``get_dense`` may return live storage (the fused in-place path
        mutates views without replacing them), so every published array
        is copied here — copy-on-publish is what makes snapshots
        immutable.
        """
        views = self.target.views
        return {
            name: np.array(views.get_dense(name), dtype=np.float64)
            for name in names
        }

    def checkpointer(self):
        """The served session's attached checkpointer (or ``None``)."""
        return getattr(self.target, "checkpointer", None)


class MaintainerEngine:
    """Adapts an analytics driver (pagerank, markov, ...) for serving.

    ``views`` maps served names to zero-argument accessors returning
    the current value (reads on drivers flush their own
    :class:`~repro.delta.batch.BatchedRefresher` queues, so accessors
    are always current).  ``refresh`` optionally accepts raw factored
    updates — drivers whose mutations are richer than ``u v'`` (edge
    edits, column replacements) route them through
    :meth:`ViewServer.call` instead.
    """

    def __init__(
        self,
        owner,
        views: Mapping[str, Callable[[], np.ndarray]],
        refresh: Callable[[np.ndarray, np.ndarray], None] | None = None,
    ):
        if not views:
            raise ValueError("a MaintainerEngine needs at least one view accessor")
        self.owner = owner
        self._views = dict(views)
        self._refresh = refresh

    def default_names(self) -> tuple[str, ...]:
        """Views published when the caller named none: all accessors."""
        return tuple(self._views)

    def available(self) -> frozenset[str]:
        """Every view name a reader may :meth:`ViewServer.watch`."""
        return frozenset(self._views)

    def apply(self, update: FactoredUpdate) -> None:
        """Route a raw factored update through the driver's refresh."""
        if self._refresh is None:
            raise TypeError(
                f"{type(self.owner).__name__} accepts mutations via "
                "server.call(...), not raw factored updates"
            )
        self._refresh(update.u_block, update.v_block)

    def flush(self) -> None:
        """Land the driver's deferred updates, when it defers any."""
        flush = getattr(self.owner, "flush", None)
        if callable(flush):
            flush()

    def capture(self, names: Iterable[str]) -> dict[str, np.ndarray]:
        """Fresh dense copies from the accessors (copy-on-publish)."""
        return {
            name: np.array(self._views[name](), dtype=np.float64)
            for name in names
        }

    def checkpointer(self):
        """Analytics drivers have no session checkpointer."""
        return None


def _as_engine(target, views=None):
    if isinstance(target, (SessionEngine, MaintainerEngine)):
        return target
    if hasattr(target, "apply_update") and hasattr(target, "views"):
        return SessionEngine(target)
    raise TypeError(
        f"cannot serve {type(target).__name__}: expected a session, a "
        "session monitor, or a serving engine"
    )


class _IngressQueue:
    """Bounded ingress with an explicit overload policy.

    Only :class:`FactoredUpdate` items count against ``maxsize`` —
    control items (flush barriers, tasks, the stop sentinel) always
    enqueue, because shutdown and read barriers must never be refused
    by a full queue.  Overload policies for updates:

    * ``"block"`` — wait for space (bounded by the per-enqueue
      ``timeout``, raising :class:`IngressTimeoutError` on expiry) —
      classic backpressure;
    * ``"reject"`` — raise :class:`IngressOverflowError` immediately,
      pushing the retry decision to the producer;
    * ``"shed-oldest"`` — drop the oldest *queued* update to admit the
      new one (freshness over completeness; sheds are counted).

    :meth:`close_for_updates` wakes every blocked producer with
    :class:`ServerClosedError` so a closing (or failed) server never
    strands a producer in an un-wakeable wait.
    """

    def __init__(self, maxsize: int, policy: str):
        if policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload must be one of {OVERLOAD_POLICIES}, got {policy!r}")
        if maxsize < 0:
            raise ValueError(f"max_queue must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        self.policy = policy
        self.shed = 0
        self._items: deque = deque()
        self._updates = 0
        self._closed = False
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def _has_space(self) -> bool:
        return self.maxsize <= 0 or self._updates < self.maxsize

    def put_control(self, item) -> None:
        """Enqueue a control item unconditionally (never refused)."""
        with self._cond:
            self._items.append(item)
            self._cond.notify_all()

    def put_update(self, update: FactoredUpdate,
                   timeout: float | None = None) -> None:
        """Enqueue one update under the overload policy."""
        with self._cond:
            if self._closed:
                raise ServerClosedError("this ViewServer is closed")
            if not self._has_space():
                if self.policy == "reject":
                    raise IngressOverflowError(
                        f"ingress queue full ({self.maxsize} updates)")
                if self.policy == "shed-oldest":
                    self._shed_oldest()
                else:
                    deadline = (None if timeout is None
                                else time.monotonic() + timeout)
                    # Re-test closed even once space appears: close()
                    # discards the queue (making space) right after
                    # refusing updates, and an update admitted then
                    # would land behind _STOP and vanish unapplied.
                    while not self._has_space() or self._closed:
                        if self._closed:
                            raise ServerClosedError(
                                "this ViewServer is closed")
                        remaining = None
                        if deadline is not None:
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                raise IngressTimeoutError(
                                    f"no ingress space within {timeout}s "
                                    f"(queue bound {self.maxsize})")
                        self._cond.wait(remaining)
            self._items.append(update)
            self._updates += 1
            self._cond.notify_all()

    def _shed_oldest(self) -> None:
        for index, item in enumerate(self._items):
            if isinstance(item, FactoredUpdate):
                del self._items[index]
                self._updates -= 1
                self.shed += 1
                return
        # No queued update to shed (all control items): admit anyway —
        # control items don't consume update capacity.

    def get(self):
        """Blocking dequeue (writer thread)."""
        with self._cond:
            while not self._items:
                self._cond.wait()
            return self._pop_locked()

    def get_nowait(self):
        """Non-blocking dequeue; raises :class:`queue.Empty` when idle."""
        with self._cond:
            if not self._items:
                raise queue.Empty
            return self._pop_locked()

    def _pop_locked(self):
        item = self._items.popleft()
        if isinstance(item, FactoredUpdate):
            self._updates -= 1
            self._cond.notify_all()  # space freed: wake blocked producers
        return item

    def discard_updates(self) -> int:
        """Drop every queued update (control items survive); return count."""
        with self._cond:
            kept = deque(item for item in self._items
                         if not isinstance(item, FactoredUpdate))
            dropped = len(self._items) - len(kept)
            self._items = kept
            self._updates = 0
            self._cond.notify_all()
            return dropped

    def close_for_updates(self) -> None:
        """Refuse future updates; wake blocked producers to raise."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class _Flush:
    """Control item: flush + publish, then release the waiter."""

    __slots__ = ("event",)

    def __init__(self):
        self.event = threading.Event()


class _Task:
    """Control item: run ``fn`` on the writer thread (a CQRS command)."""

    __slots__ = ("fn", "event", "error")

    def __init__(self, fn, waitable: bool):
        self.fn = fn
        self.event = threading.Event() if waitable else None
        self.error: BaseException | None = None


class ViewServer:
    """Serve a session's views to many threads at bounded staleness.

    Parameters
    ----------
    target:
        What to serve: a session, a drift/replan monitor wrapping one,
        or a prepared engine (:class:`SessionEngine` /
        :class:`MaintainerEngine`).  The server's writer thread becomes
        the *only* thread allowed to touch it.
    views:
        Names to publish per epoch (default: the program's outputs for
        sessions, every accessor for maintainer engines).  Reading an
        unpublished-but-known name registers it and triggers one
        synchronous publish — copy-on-publish grows to what readers
        actually ask for, nothing more.
    max_staleness:
        Publish whenever this many updates/tasks have been absorbed
        since the last epoch (``None``: no count bound — publish only
        on idle, age, or explicit flush).  Bounds how far any read can
        lag the applied stream.
    max_age:
        Publish whenever the oldest unpublished event is this many
        seconds old (``None``: no wall-clock bound).
    max_queue:
        Ingress queue capacity; ``0`` (default) is unbounded, a
        positive bound applies the ``overload`` policy — queue-based
        load leveling with explicit backpressure.
    overload:
        What a full (bounded) ingress queue does with a new update:
        ``"block"`` (default) waits for space — per-call ``timeout``
        on :meth:`submit` bounds the wait with
        :class:`IngressTimeoutError`; ``"reject"`` raises
        :class:`IngressOverflowError` immediately; ``"shed-oldest"``
        drops the oldest queued update to admit the new one (sheds are
        counted in ``stats.shed``).  Control items — flush barriers,
        :meth:`call` tasks, shutdown — are never refused.

    If the served session has an attached
    :class:`~repro.runtime.checkpoint.Checkpointer`, the writer thread
    additionally cuts any *due* snapshot right after each epoch
    publication — durability rides the epoch cadence, on the writer
    thread, so readers never block on a checkpoint write.

    Use as a context manager, or call :meth:`close` — shutdown drains
    the queue (or discards it: ``close(discard=True)``), publishes the
    final epoch, and joins the writer.
    """

    def __init__(
        self,
        target,
        views: Sequence[str] | None = None,
        max_staleness: int | None = DEFAULT_MAX_STALENESS,
        max_age: float | None = None,
        max_queue: int = 0,
        overload: str = "block",
    ):
        if max_staleness is not None and max_staleness < 1:
            raise ValueError("max_staleness must be positive (or None)")
        if max_age is not None and max_age <= 0:
            raise ValueError("max_age must be positive (or None)")
        self._engine = _as_engine(target, views)
        self.max_staleness = max_staleness
        self.max_age = max_age
        self._queue = _IngressQueue(max_queue, overload)
        self.stats = ServerStats()
        self._submit_lock = threading.Lock()
        self._closed = False
        self._error: BaseException | None = None

        available = self._engine.available()
        names = tuple(views) if views is not None else self._engine.default_names()
        unknown = set(names) - set(available)
        if unknown:
            raise KeyError(f"cannot serve unknown views: {sorted(unknown)}")
        self._names: tuple[str, ...] = names
        self._names_lock = threading.Lock()

        # Writer-thread state (no locks: one owner).
        self._seq = 0
        self._pending = 0
        self._oldest_pending: float | None = None

        # Epoch 0 is published before the writer starts, so reads never
        # race an empty slot.
        self._snapshot = self._make_snapshot(epoch=0)
        self._pub_cond = threading.Condition()
        self._thread = threading.Thread(
            target=self._run, name="repro-view-writer", daemon=True
        )
        self._thread.start()

    # -- the read side (any thread, lock-free) ---------------------------
    @property
    def snapshot(self) -> Snapshot:
        """The last published epoch (one atomic reference read)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        """Publication count of the snapshot reads currently serve."""
        return self._snapshot.epoch

    def read(self, name: str) -> np.ndarray:
        """``name``'s value at the last published epoch.

        Never flushes, never blocks on the writer: the common case is a
        dict lookup on the current snapshot.  The first read of a view
        that exists but is not yet in the publish set registers it and
        waits for one publication (copy-on-publish of the views a
        reader asked for).
        """
        snap = self._snapshot
        value = snap.views.get(name)
        if value is not None:
            return value
        self._raise_if_failed()
        return self.watch(name)[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.read(name)

    def watch(self, *names: str) -> Mapping[str, np.ndarray]:
        """Add ``names`` to the publish set; returns a snapshot with them."""
        unknown = set(names) - set(self._engine.available())
        if unknown:
            raise KeyError(f"no view named {sorted(unknown)}")
        with self._names_lock:
            missing = [n for n in names if n not in self._names]
            if missing:
                self._check_open()
                self._names = self._names + tuple(missing)
        snap = self._snapshot
        if all(n in snap.views for n in names):
            return snap.views
        return self.refresh().views

    # -- the write side (any producer thread) ----------------------------
    def submit(self, update: FactoredUpdate,
               timeout: float | None = None) -> None:
        """Enqueue one factored update for the writer.

        Non-blocking on an unbounded queue; on a bounded one the
        ``overload`` policy decides (block / reject / shed-oldest).
        ``timeout`` bounds a blocking wait — expiry raises
        :class:`IngressTimeoutError` and the update is *not* enqueued,
        so the producer can apply its own shed/retry policy.
        """
        self._check_open()
        try:
            self._queue.put_update(update, timeout=timeout)
        except ServerClosedError:
            # The writer closed (or died) while we waited for space:
            # surface the richer failure when there is one.
            self._raise_if_failed()
            raise
        except IngressOverflowError:
            with self._submit_lock:
                self.stats.rejected += 1
            raise
        finally:
            self.stats.shed = self._queue.shed
        with self._submit_lock:
            self.stats.submitted += 1

    def submit_many(self, updates: Iterable[FactoredUpdate]) -> None:
        """Enqueue a whole stream in order (convenience over submit)."""
        for update in updates:
            self.submit(update)

    def call(self, fn: Callable, *args, wait: bool = False, **kwargs):
        """Run ``fn(*args, **kwargs)`` on the writer thread, in stream order.

        The command side of CQRS for mutations richer than a factored
        update: analytics edits (``server.call(pr.add_edge, 2, 3)``),
        re-configuration, manual plan switches.  ``wait=True`` blocks
        until the call ran and re-raises its exception here; the
        default is fire-and-forget (a failure poisons the server like
        any writer error).
        """
        self._check_open()
        task = _Task((lambda: fn(*args, **kwargs)), waitable=wait)
        with self._submit_lock:
            self.stats.submitted += 1
        self._queue.put_control(task)
        if wait:
            self._wait(task.event)
            if task.error is not None and task.error is not self._error:
                raise task.error  # the task's own failure, writer survived
            self._raise_if_failed()
        return None

    def refresh(self, timeout: float | None = None) -> Snapshot:
        """Barrier: apply everything queued so far, publish, return it.

        The one read-side verb that *does* synchronize with the writer
        — for tests and callers that need read-your-writes semantics.
        Ordinary reads never need it.
        """
        self._raise_if_failed()
        if self._closed:
            return self._snapshot
        flush = _Flush()
        self._queue.put_control(flush)
        self._wait(flush.event, timeout)
        # The event is also set by the failure drain: re-check before
        # handing back a snapshot that predates the writer's death.
        self._raise_if_failed()
        return self._snapshot

    def close(self, deadline: float | None = None,
              discard: bool = False) -> None:
        """Stop the writer: drain the queue (default) or discard it.

        Idempotent — a second close is a no-op join.  New submissions
        are refused immediately (producers blocked on a full queue wake
        with :class:`ServerClosedError`); queued updates are applied
        and folded into one final epoch before the writer stops, unless
        ``discard=True`` throws them away (counted in
        ``stats.discarded``).  ``deadline`` bounds the drain in
        seconds: on expiry whatever is still queued is discarded so
        close always returns (default: a 60 s deadlock guard).
        Re-raises the writer's exception if it failed.
        """
        if not self._closed:
            self._closed = True
            self._queue.close_for_updates()
            if discard:
                dropped = self._queue.discard_updates()
                with self._submit_lock:
                    self.stats.discarded += dropped
            self._queue.put_control(_STOP)
        self._thread.join(timeout=60.0 if deadline is None else deadline)
        if self._thread.is_alive():
            if deadline is not None:
                # Deadline expired mid-drain: give up on the remaining
                # queue and let the writer hit _STOP promptly.
                dropped = self._queue.discard_updates()
                with self._submit_lock:
                    self.stats.discarded += dropped
                self._thread.join(timeout=60.0)
            if self._thread.is_alive():  # pragma: no cover - deadlock guard
                raise WriterFailedError("writer thread failed to stop")
        self._raise_if_failed()

    def __enter__(self) -> "ViewServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Surface shutdown errors only when the body didn't raise first.
        if exc_type is None:
            self.close()
        else:
            try:
                self.close()
            except Exception:
                pass

    # -- internals -------------------------------------------------------
    def _check_open(self) -> None:
        self._raise_if_failed()
        if self._closed:
            raise ServerClosedError("this ViewServer is closed")

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise WriterFailedError("the writer thread died") from self._error

    def _wait(self, event: threading.Event, timeout: float | None = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not event.wait(0.05):
            self._raise_if_failed()
            if not self._thread.is_alive():
                raise WriterFailedError("writer thread exited before the barrier")
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("timed out waiting for the writer")

    def _make_snapshot(self, epoch: int) -> Snapshot:
        start = time.perf_counter()
        self._engine.flush()
        with self._names_lock:
            names = self._names
        views = self._engine.capture(names)
        for arr in views.values():
            arr.setflags(write=False)
        pending = self._pending
        snap = Snapshot(
            epoch=epoch, seq=self._seq, views=views, pending=pending,
            published_at=time.monotonic(),
        )
        self._pending = 0
        self._oldest_pending = None
        self.stats.epochs = epoch + 1
        self.stats.publish_seconds += time.perf_counter() - start
        if epoch > 0:
            self.stats.pending_log.append(pending)
            if pending > self.stats.max_pending_at_publish:
                self.stats.max_pending_at_publish = pending
        return snap
    # The first (constructor) snapshot is epoch 0 with nothing pending;
    # it is excluded from the staleness trace.

    def _publish(self) -> None:
        snap = self._make_snapshot(self._snapshot.epoch + 1)
        self._snapshot = snap  # the atomic epoch-pointer swap
        with self._pub_cond:
            self._pub_cond.notify_all()
        # Epoch boundary = durability boundary: cut any due checkpoint
        # *after* the swap, on the writer thread — readers already have
        # the new snapshot and never wait on the disk write.
        checkpointer = self._engine.checkpointer()
        if checkpointer is not None:
            if checkpointer.maybe_checkpoint() is not None:
                self.stats.checkpoints += 1

    def _handle(self, item) -> None:
        if isinstance(item, FactoredUpdate):
            self._engine.apply(item)
            self._note_event()
        elif isinstance(item, _Task):
            try:
                item.fn()
            except BaseException as exc:
                if item.event is None:
                    raise
                item.error = exc
            finally:
                self._note_event()
                if item.event is not None:
                    # Publish before releasing the waiter so wait=True
                    # callers read their own write.
                    self._publish()
                    item.event.set()
        elif isinstance(item, _Flush):
            self._publish()
            item.event.set()
        else:  # pragma: no cover - queue protocol violation
            raise TypeError(f"unexpected queue item {item!r}")

    def _note_event(self) -> None:
        self._seq += 1
        self._pending += 1
        self.stats.applied += 1
        if self._oldest_pending is None:
            self._oldest_pending = time.monotonic()

    def _should_publish(self) -> bool:
        if self._pending <= 0:
            return False
        if self.max_staleness is not None and self._pending >= self.max_staleness:
            return True
        if self.max_age is not None and self._oldest_pending is not None:
            return time.monotonic() - self._oldest_pending >= self.max_age
        return False

    def _run(self) -> None:
        try:
            stop = False
            while not stop:
                item = self._queue.get()
                while True:
                    if item is _STOP:
                        stop = True
                        break
                    self._handle(item)
                    if self._should_publish():
                        self._publish()
                    try:
                        item = self._queue.get_nowait()
                    except queue.Empty:
                        break
                # Queue idle (or shutting down): publish promptly so an
                # unloaded server serves fresh state.
                if self._pending:
                    self._publish()
        except BaseException as exc:  # noqa: BLE001 - reported to callers
            self._error = exc
            self._drain_failed()

    def _drain_failed(self) -> None:
        """Release every waiter after a writer failure (no hangs)."""
        # Producers blocked on a full ingress queue must wake too.
        self._queue.close_for_updates()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if isinstance(item, _Flush):
                item.event.set()
            elif isinstance(item, _Task) and item.event is not None:
                item.error = self._error
                item.event.set()


class FlushOnReadServer:
    """The pre-serving strawman: one mutex, reads flush (measured baseline).

    Presents the same ``submit``/``read``/``refresh``/``close`` surface
    as :class:`ViewServer`, but every operation serializes on one lock
    and every read goes through ``session.view`` — which flushes
    batched pending updates first.  This is exactly what sharing a
    single-threaded session between threads costs; the benchmark's
    p50/p99 gap against :class:`ViewServer` is the tentpole claim.
    """

    def __init__(self, target, views: Sequence[str] | None = None):
        self._engine = _as_engine(target, views)
        self._lock = threading.Lock()
        self.stats = ServerStats()
        names = tuple(views) if views is not None else self._engine.default_names()
        self._names = names
        self.max_staleness = 0
        self.max_age = None

    @property
    def epoch(self) -> int:
        """Applied-update count (this server has no real epochs)."""
        return self.stats.applied

    def submit(self, update: FactoredUpdate) -> None:
        """Apply one update under the global lock (blocking)."""
        with self._lock:
            self.stats.submitted += 1
            self._engine.apply(update)
            self.stats.applied += 1

    def call(self, fn: Callable, *args, wait: bool = False, **kwargs):
        """Run a mutation under the global lock, in caller order."""
        with self._lock:
            self.stats.submitted += 1
            result = fn(*args, **kwargs)
            self.stats.applied += 1
        return result if wait else None

    def read(self, name: str) -> np.ndarray:
        """Flush, then copy ``name`` out — the cost being measured."""
        with self._lock:
            self._engine.flush()
            return self._engine.capture((name,))[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.read(name)

    def refresh(self, timeout: float | None = None):
        """Flush and capture the full publish set as a Snapshot."""
        with self._lock:
            self._engine.flush()
            views = self._engine.capture(self._names)
        return Snapshot(epoch=self.stats.applied, seq=self.stats.applied,
                        views=views, pending=0, published_at=time.monotonic())

    def close(self) -> None:
        """Flush pending state; nothing to join (no writer thread)."""
        with self._lock:
            self._engine.flush()

    def __enter__(self) -> "FlushOnReadServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- load generation ------------------------------------------------------

def run_load(
    server,
    make_update: Callable[[int], FactoredUpdate],
    read_names: Sequence[str],
    duration: float = 2.0,
    readers: int = 4,
    reader_rate: float = 200.0,
    writer_pause: float = 0.0,
) -> dict:
    """Drive a server with write pressure + paced readers; measure both.

    One pressure thread submits ``make_update(i)`` as fast as the
    server accepts (``writer_pause`` seconds between submissions adds
    an optional cap); ``readers`` threads each read a round-robin name
    at ``reader_rate`` reads/second, timing every ``read`` call.
    Returns read p50/p99/max latency, reader and writer throughput, and
    the server's achieved staleness — the numbers ``repro serve`` and
    ``bench_serve_latency.py`` report.
    """
    if readers < 1:
        raise ValueError("need at least one reader thread")
    stop = threading.Event()
    interval = 1.0 / reader_rate if reader_rate > 0 else 0.0
    latencies: list[list[float]] = [[] for _ in range(readers)]
    errors: list[BaseException] = []

    def read_loop(slot: int) -> None:
        sink = latencies[slot]
        try:
            # Desynchronize reader ticks so they don't stampede the GIL.
            time.sleep(interval * slot / max(readers, 1))
            i = 0
            while not stop.is_set():
                name = read_names[i % len(read_names)]
                start = time.perf_counter()
                value = server.read(name)
                sink.append(time.perf_counter() - start)
                del value
                i += 1
                if interval:
                    time.sleep(interval)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    applied_before = server.stats.applied

    def write_loop() -> None:
        try:
            i = 0
            while not stop.is_set():
                server.submit(make_update(i))
                i += 1
                if writer_pause:
                    time.sleep(writer_pause)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=write_loop, name="repro-load-writer",
                                daemon=True)]
    threads += [
        threading.Thread(target=read_loop, args=(slot,),
                         name=f"repro-load-reader-{slot}", daemon=True)
        for slot in range(readers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    elapsed = time.perf_counter() - start
    # Throughput counts what the writer landed inside the window; the
    # barrier below only drains the residual queue so the server's
    # final state is consistent for later reads.
    applied = server.stats.applied - applied_before
    server.refresh()
    if errors:
        raise errors[0]

    samples = np.array(sorted(x for sink in latencies for x in sink))
    if samples.size == 0:
        raise RuntimeError("load window too short: no reads completed")
    return {
        "duration_seconds": elapsed,
        "readers": readers,
        "reads": int(samples.size),
        "read_p50_ms": float(np.percentile(samples, 50) * 1e3),
        "read_p99_ms": float(np.percentile(samples, 99) * 1e3),
        "read_max_ms": float(samples[-1] * 1e3),
        "reads_per_second": float(samples.size / elapsed),
        "writer_updates": int(applied),
        "writer_updates_per_second": float(applied / elapsed),
        "epochs": int(getattr(server.stats, "epochs", 0)),
        "max_staleness_observed": int(server.stats.max_pending_at_publish),
        "staleness_bound": server.max_staleness,
    }


__all__ = [
    "DEFAULT_MAX_STALENESS",
    "FlushOnReadServer",
    "IngressOverflowError",
    "IngressTimeoutError",
    "MaintainerEngine",
    "OVERLOAD_POLICIES",
    "ServerClosedError",
    "ServerStats",
    "SessionEngine",
    "Snapshot",
    "ViewServer",
    "WriterFailedError",
    "run_load",
]
