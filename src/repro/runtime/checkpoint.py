"""Checkpoint/restore: durable snapshots plus a bounded delta log.

LINVIEW's economics make durable incremental state the right recovery
primitive: views are cheap to *maintain* (a thin factored refresh) but
expensive to *recompute* (REEVAL from base tables), so recovery should
restore the last consistent snapshot and replay the short delta tail —
the log+checkpoint discipline of DBToaster-style IVM engines — instead
of re-evaluating the program.  This module implements that discipline
for maintenance sessions:

* :func:`write_checkpoint` / :func:`load_checkpoint` — the on-disk
  format: a ``LVCK`` magic + version header, a JSON manifest (array
  names/shapes, plan, strategy/mode/backend, batching and heavy-light
  deferral state), the raw float64 view payload, and a SHA-256 trailer
  over everything before it.  Files land via temp-file +
  :func:`os.replace`, so a crash mid-write leaves the previous
  checkpoint untouched; a torn file fails its checksum and loads raise
  :class:`CheckpointCorruptError` instead of returning garbage.
* :class:`CheckpointManager` — a ``keep``-bounded directory of
  sequenced snapshots whose :meth:`~CheckpointManager.latest` walks
  newest-first past corrupt files to the most recent *valid* one (the
  torn-write fallback the chaos suite exercises).
* :class:`Checkpointer` — the session-facing policy object: every
  applied update is :meth:`~Checkpointer.note`\\ d into a bounded
  in-memory delta log; on cadence (``every`` updates, or priced by
  :func:`repro.cost.estimate.recommend_checkpoint_every` with
  ``every="auto"``) the session flushes and a snapshot is written;
  :meth:`~Checkpointer.restore` rebuilds a fresh session from the
  latest valid snapshot and replays the logged tail through
  ``apply_update`` — landing on state **bitwise identical** to the
  live session it shadows, because snapshots are cut at flush
  boundaries and replay routes through identically-restored
  batcher/heavy-light state (same fold boundaries, same summation
  order).

Checkpoints capture everything value-affecting: view arrays, plan,
``rank``/``optimize``/``fused`` trigger-compilation knobs (the fused
``__rank__`` routing changes summation order), batch policy, and the
heavy-light maintainer's surviving cross-flush state (occupancy sketch,
heavy-set membership, retune phase).  They deliberately do *not*
capture the program — programs are code; :func:`restore_session` takes
the same :class:`~repro.compiler.program.Program` the original session
was opened with.  Sharded (``nodes > 1``) sessions checkpoint their
shared-memory views the same way and restore single-process; cluster
recovery is the supervisor's job (:mod:`repro.distributed.workers`).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path

import numpy as np

from ..cost import counters
from ..testing import faults
from .updates import FactoredUpdate
from .views import ViewStore

#: File magic of the checkpoint format ("LinView ChecKpoint").
MAGIC = b"LVCK"
#: Current format version (bumped on any incompatible layout change).
VERSION = 1
#: Default number of snapshots a :class:`CheckpointManager` retains.
DEFAULT_KEEP = 3
#: Default bound on the in-memory delta log: reaching it forces a
#: checkpoint even when the cadence says "not yet" (epoch-driven
#: checkpointers would otherwise grow the log without bound).
DEFAULT_DELTA_LIMIT = 1024
#: Upper bound on a sane header, to fail fast on garbage files.
_MAX_HEADER = 64 * 1024 * 1024

_FILE_PREFIX = "ckpt-"
_FILE_SUFFIX = ".lvck"


class CheckpointError(RuntimeError):
    """A checkpoint operation failed (I/O, missing snapshot, bad config)."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed validation (torn write, bad checksum)."""


# -- on-disk format -------------------------------------------------------

def serialize_state(header: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """Encode a captured session state as one checkpoint blob.

    Layout: ``MAGIC | u32 version | u64 header length | JSON header |
    float64 payload | SHA-256 over everything before the trailer``.
    The header's ``arrays`` manifest records name/shape in payload
    order, so offsets are implicit.
    """
    manifest = []
    chunks = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        manifest.append({"name": name, "shape": list(arr.shape)})
        chunks.append(arr.tobytes())
    full = dict(header)
    full["arrays"] = manifest
    encoded = json.dumps(full).encode("utf-8")
    body = b"".join([
        MAGIC,
        struct.pack("<I", VERSION),
        struct.pack("<Q", len(encoded)),
        encoded,
        *chunks,
    ])
    return body + hashlib.sha256(body).digest()


def deserialize_state(blob: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    """Decode and validate a checkpoint blob back into (header, arrays).

    Raises :class:`CheckpointCorruptError` on any truncation, checksum
    mismatch, or malformed header — a torn write can never round-trip
    into silently-wrong view state.
    """
    digest_size = hashlib.sha256().digest_size
    if len(blob) < len(MAGIC) + 4 + 8 + digest_size:
        raise CheckpointCorruptError("checkpoint truncated below header size")
    if blob[: len(MAGIC)] != MAGIC:
        raise CheckpointCorruptError("bad checkpoint magic")
    body, trailer = blob[:-digest_size], blob[-digest_size:]
    if hashlib.sha256(body).digest() != trailer:
        raise CheckpointCorruptError("checkpoint checksum mismatch (torn write?)")
    (version,) = struct.unpack_from("<I", blob, len(MAGIC))
    if version != VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version} (this build reads "
            f"{VERSION})"
        )
    (header_len,) = struct.unpack_from("<Q", blob, len(MAGIC) + 4)
    start = len(MAGIC) + 4 + 8
    if header_len > _MAX_HEADER or start + header_len > len(body):
        raise CheckpointCorruptError("checkpoint header length out of range")
    try:
        header = json.loads(blob[start:start + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError("unreadable checkpoint header") from exc
    offset = start + header_len
    arrays: dict[str, np.ndarray] = {}
    for entry in header.get("arrays", ()):
        shape = tuple(int(d) for d in entry["shape"])
        nbytes = 8 * int(np.prod(shape, dtype=np.int64)) if shape else 8
        if offset + nbytes > len(body):
            raise CheckpointCorruptError(
                f"checkpoint payload truncated at array {entry['name']!r}")
        arrays[entry["name"]] = (
            np.frombuffer(blob, dtype=np.float64, count=int(np.prod(shape)),
                          offset=offset).reshape(shape).copy()
        )
        offset += nbytes
    if offset != len(body):
        raise CheckpointCorruptError("trailing bytes after checkpoint payload")
    return header, arrays


def write_checkpoint(path, header: dict, arrays: dict[str, np.ndarray]) -> Path:
    """Atomically write one checkpoint file (temp file + ``os.replace``).

    The serialized blob passes through the ``checkpoint.write`` fault
    seam before touching the filesystem, so the chaos suite can tear or
    crash the write deterministically.  I/O failures surface as
    :class:`CheckpointError`.
    """
    path = Path(path)
    blob = serialize_state(header, arrays)
    blob = faults.fire("checkpoint.write", blob, path=str(path))
    tmp = path.parent / f".{path.name}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_checkpoint(path) -> tuple[dict, dict[str, np.ndarray]]:
    """Read and validate one checkpoint file."""
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return deserialize_state(blob)


class CheckpointManager:
    """A bounded directory of sequenced snapshots with corrupt fallback.

    Files are named ``ckpt-<seq>.lvck``; :meth:`save` writes the next
    sequence number and prunes beyond ``keep``; :meth:`latest` walks
    newest-first and returns the first snapshot that validates, so a
    torn final write falls back to the previous good state instead of
    failing recovery.
    """

    def __init__(self, directory, keep: int = DEFAULT_KEEP):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = int(keep)
        self.directory.mkdir(parents=True, exist_ok=True)

    def paths(self) -> list[Path]:
        """Checkpoint files present, newest (highest sequence) first."""
        found = []
        for path in self.directory.iterdir():
            name = path.name
            if not (name.startswith(_FILE_PREFIX)
                    and name.endswith(_FILE_SUFFIX)):
                continue
            seq = name[len(_FILE_PREFIX):-len(_FILE_SUFFIX)]
            if seq.isdigit():
                found.append((int(seq), path))
        return [path for _, path in sorted(found, reverse=True)]

    def save(self, header: dict, arrays: dict[str, np.ndarray]) -> Path:
        """Write the next snapshot and prune past ``keep``."""
        existing = self.paths()
        next_seq = 1
        if existing:
            first = existing[0].name
            next_seq = int(first[len(_FILE_PREFIX):-len(_FILE_SUFFIX)]) + 1
        path = self.directory / f"{_FILE_PREFIX}{next_seq:08d}{_FILE_SUFFIX}"
        written = write_checkpoint(path, header, arrays)
        for stale in self.paths()[self.keep:]:
            stale.unlink(missing_ok=True)
        return written

    def latest(self) -> tuple[Path, dict, dict[str, np.ndarray]] | None:
        """Newest snapshot that validates, or ``None`` when none does.

        Corrupt files (torn writes) are skipped, not deleted — the next
        :meth:`save` prunes them off the end naturally, and leaving
        them aids post-mortems.
        """
        for path in self.paths():
            try:
                header, arrays = load_checkpoint(path)
            except CheckpointCorruptError:
                continue
            return path, header, arrays
        return None


# -- session state capture / rebuild --------------------------------------

def capture_session(session, rank: int = 1, optimize: bool = False) -> tuple[
        dict, dict[str, np.ndarray]]:
    """Capture a *flushed* session's value-affecting state.

    The caller must flush first (``Checkpointer.checkpoint`` does):
    snapshots are cut at flush boundaries so restore + tail replay
    reproduces the live session's fold boundaries exactly.
    """
    views = session.views
    arrays = {name: views.get_dense(name) for name in views.names()}
    fused = True
    if getattr(session, "mode", "interpret") == "codegen":
        fused = getattr(session, "workspace", None) is not None
    header: dict = {
        "strategy": session.strategy,
        "mode": getattr(session, "mode", "interpret"),
        "backend": session.backend.name,
        "rank": int(rank),
        "optimize": bool(optimize),
        "fused": bool(fused),
        "update_count": int(session.update_count),
        "dims": dict(views.dims),
        "batch": {
            "width": session._batcher.width
            if session._batcher is not None else None,
            "max_staleness": session._batch_staleness,
            "rtol": session._batcher.rtol
            if session._batcher is not None else None,
            "auto": bool(session._auto_batch),
        },
        "partition": _capture_partition(session),
        "partition_auto": bool(session._auto_partition),
    }
    plan = getattr(session, "plan", None)
    if plan is not None:
        plan_dict = plan.as_dict()
        plan_dict.pop("label", None)  # derived property, not a ctor field
        header["plan"] = plan_dict
    return header, arrays


def _capture_partition(session) -> dict | None:
    maintainer = session._partitioner
    if maintainer is None:
        return None
    sketch = maintainer.sketch
    return {
        "budget": maintainer.budget,
        "rank_bound": maintainer.rank_bound,
        "retune_every": maintainer.retune_every,
        "max_staleness": maintainer.max_staleness,
        "rtol": maintainer.rtol,
        "observe": bool(maintainer.observe_stream),
        "slot_rows": list(maintainer._slot_rows),
        "since_retune": int(maintainer._since_retune),
        "sketch": {
            "capacity": sketch.capacity,
            "total": sketch.total,
            "overflow": sketch.overflow,
            "counts": [[int(k), int(v)] for k, v in sketch._counts.items()],
        },
    }


def rebuild_session(program, header: dict, arrays: dict[str, np.ndarray],
                    counter: counters.Counter = counters.NULL_COUNTER):
    """Rebuild a session from captured state (the restore path).

    Views are adopted by value — nothing is re-evaluated — and every
    deferral knob is restored so subsequent updates fold exactly as
    they would have on the checkpointed session.  Sharded snapshots
    restore single-process (``INCR``/interpret with the same kernels);
    re-sharding is a fresh ``open_session(nodes=N)`` call.
    """
    from ..backends import get_backend
    from ..planner.plan import MaintenancePlan, StreamSketch
    from .session import IVMSession, ReevalSession

    backend = get_backend(header["backend"])
    store = ViewStore(header.get("dims"), backend=backend)
    for name, arr in arrays.items():
        store.set(name, arr)
    if header["strategy"] == "REEVAL":
        session = ReevalSession(program, store, counter=counter,
                                backend=backend)
    elif header["strategy"] == "INCR":
        session = IVMSession(
            program, store, rank=int(header.get("rank", 1)),
            optimize=bool(header.get("optimize", False)),
            mode=header.get("mode", "interpret"), counter=counter,
            backend=backend, fused=bool(header.get("fused", True)),
        )
    else:
        raise CheckpointError(
            f"cannot restore a {header['strategy']!r} session")
    session.update_count = int(header.get("update_count", 0))
    plan_dict = header.get("plan")
    if plan_dict is not None:
        session.plan = MaintenancePlan(**plan_dict)
    batch = header.get("batch") or {}
    width = batch.get("width")
    if width is not None or batch.get("auto"):
        kwargs = {"auto": bool(batch.get("auto", False)),
                  "max_staleness": batch.get("max_staleness")}
        if batch.get("rtol") is not None:
            kwargs["rtol"] = batch["rtol"]
        session.set_batching(width, **kwargs)
    partition = header.get("partition")
    if partition is not None:
        sketch_state = partition["sketch"]
        sketch = StreamSketch(capacity=int(sketch_state["capacity"]))
        sketch._counts = {int(k): int(v) for k, v in sketch_state["counts"]}
        sketch.total = int(sketch_state["total"])
        sketch.overflow = int(sketch_state["overflow"])
        session.set_partition(
            "heavy-light",
            heavy_budget=partition["budget"],
            rank_bound=partition["rank_bound"],
            retune_every=partition["retune_every"],
            max_staleness=partition["max_staleness"],
            rtol=partition["rtol"],
            auto=bool(header.get("partition_auto", False)),
            sketch=sketch,
            observe=bool(partition["observe"]),
        )
        # Heavy-set membership and retune phase survive flushes on the
        # live session, so they must survive restore too: membership
        # changes move accumulator rows between tiers, which changes
        # summation order — a value-affecting knob, not a statistic.
        maintainer = session._partitioner
        maintainer._seed_heavy(partition["slot_rows"])
        maintainer._since_retune = int(partition["since_retune"])
    elif header.get("partition_auto"):
        session.set_partition("uniform", auto=True)
    return session


def restore_session(program, directory,
                    counter: counters.Counter = counters.NULL_COUNTER):
    """Rebuild a session from the newest valid snapshot in ``directory``.

    The cold-start recovery entry point (the process that crashed has
    no delta log to replay).  Raises :class:`CheckpointError` when the
    directory holds no valid snapshot.
    """
    manager = CheckpointManager(directory)
    found = manager.latest()
    if found is None:
        raise CheckpointError(
            f"no valid checkpoint found in {manager.directory}")
    _, header, arrays = found
    return rebuild_session(program, header, arrays, counter=counter)


class Checkpointer:
    """Per-session checkpoint policy: cadence, delta log, restore.

    Attach with :meth:`Session.attach_checkpointer
    <repro.runtime.session.Session.attach_checkpointer>` (or
    ``open_session(checkpoint=...)``): the session then reports every
    applied update through :meth:`note`, which appends it to a bounded
    in-memory delta log and — with ``auto=True`` — cuts a snapshot
    every ``every`` updates.  ``every="auto"`` prices the cadence from
    the view footprint and update rank
    (:func:`repro.cost.estimate.recommend_checkpoint_every`), targeting
    a few percent of write-path overhead.  With ``auto=False`` the
    owner decides when (:class:`~repro.runtime.serving.ViewServer`
    calls :meth:`maybe_checkpoint` at epoch-publish boundaries); the
    ``delta_limit`` backstop still forces a snapshot before the log
    grows without bound.
    """

    def __init__(self, session, directory, every: int | str = "auto",
                 keep: int = DEFAULT_KEEP, auto: bool = True,
                 rank: int = 1, optimize: bool = False,
                 delta_limit: int | None = None):
        self.manager = CheckpointManager(directory, keep=keep)
        self.session = session
        self.auto = bool(auto)
        self.rank = int(rank)
        self.optimize = bool(optimize)
        if every == "auto":
            every = self._priced_cadence(session)
        if not isinstance(every, int) or isinstance(every, bool) or every < 1:
            raise ValueError(
                f"every must be 'auto' or an int >= 1, got {every!r}")
        self.every = int(every)
        if delta_limit is None:
            delta_limit = max(4 * self.every, DEFAULT_DELTA_LIMIT)
        if delta_limit < self.every:
            raise ValueError("delta_limit must be >= the checkpoint cadence")
        self.delta_limit = int(delta_limit)
        self._pending: list[FactoredUpdate] = []
        #: Snapshots written over this checkpointer's lifetime.
        self.saves = 0
        #: Path of the most recent snapshot (``None`` before the first).
        self.last_path: Path | None = None

    def _priced_cadence(self, session) -> int:
        from ..cost.estimate import recommend_checkpoint_every

        views_bytes = session.views.total_bytes()
        # Per-update work proxy: a rank-r factored refresh touches every
        # stored entry a constant number of times.
        refresh_flops = 2.0 * max(self.rank, 1) * max(views_bytes / 8.0, 1.0)
        return recommend_checkpoint_every(views_bytes, refresh_flops)

    @property
    def pending(self) -> int:
        """Updates in the delta log (applied live, not yet on disk)."""
        return len(self._pending)

    @property
    def due(self) -> bool:
        """Whether the cadence says a snapshot should be cut now."""
        return len(self._pending) >= self.every

    def note(self, update: FactoredUpdate) -> None:
        """Log one applied update; cut a snapshot when policy says so."""
        self._pending.append(FactoredUpdate(
            update.target, update.u_block.copy(), update.v_block.copy()))
        if self.auto:
            if self.due:
                self.checkpoint()
        elif len(self._pending) >= self.delta_limit:
            # Epoch-driven owner never got around to it: bound the log.
            self.checkpoint()

    def maybe_checkpoint(self) -> Path | None:
        """Cut a snapshot if one is due (the epoch-boundary hook)."""
        if self.due:
            return self.checkpoint()
        return None

    def checkpoint(self) -> Path:
        """Flush the session and write one snapshot now."""
        self.session.flush()
        header, arrays = capture_session(self.session, rank=self.rank,
                                         optimize=self.optimize)
        path = self.manager.save(header, arrays)
        self._pending.clear()
        self.saves += 1
        self.last_path = path
        return path

    def restore(self):
        """Rebuild from the newest valid snapshot and replay the tail.

        Returns the fresh session (also re-attached to this
        checkpointer), on state bitwise-identical to the live session:
        the snapshot was cut at a flush boundary and the logged tail
        replays through identically-restored deferral state.  The tail
        stays in the log — it is not on disk yet.
        """
        found = self.manager.latest()
        if found is None:
            raise CheckpointError(
                f"no valid checkpoint found in {self.manager.directory}")
        _, header, arrays = found
        old = self.session
        session = rebuild_session(old.program, header, arrays,
                                  counter=old.counter)
        for update in self._pending:
            session.apply_update(update)
        self.session = session
        session._checkpointer = self
        if old is not session:
            # Detach the superseded session: were it to keep noting,
            # the delta log would interleave two streams and the next
            # restore would replay updates that never hit the snapshot.
            old._checkpointer = None
        return session


__all__ = [
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointManager",
    "Checkpointer",
    "DEFAULT_DELTA_LIMIT",
    "DEFAULT_KEEP",
    "MAGIC",
    "VERSION",
    "capture_session",
    "load_checkpoint",
    "rebuild_session",
    "restore_session",
    "serialize_state",
    "deserialize_state",
    "write_checkpoint",
]
