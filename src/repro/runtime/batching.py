"""Plan-driven update batching for IVM sessions (the Table 4 loop).

The planner prices a batch width for every plan
(:attr:`MaintenancePlan.batch_size <repro.planner.plan.MaintenancePlan>`:
collect ``m`` rank-1 updates, pay one QR+SVD compaction plus one
rank-``r`` propagation instead of ``m`` unit propagations).  This module
is the driver side that *honors* it: a :class:`SessionBatcher` sits
inside :class:`~repro.runtime.session.Session` and turns
``apply_update`` into an enqueue, with three explicit flush policies:

* **width** — ``batch_size`` pending updates trigger a flush (bounded
  memory, the planner's amortization unit);
* **read** — ``session.view()`` / ``session[...]`` / ``output()`` /
  ``revalidate()`` (drift probes) flush first, so no caller can observe
  state that lags the updates it already issued;
* **staleness** — ``max_staleness`` bounds the pending update count
  regardless of the planned width, for applications that cap read lag
  below the throughput-optimal batch.

Two structural flushes keep the semantics exact: a *target change*
flushes (pending updates always address one input, so cross-input
ordering is preserved), and :meth:`Session.with_plan
<repro.runtime.session.Session.with_plan>` flushes before any
re-planning switch (pending deltas must land in the state that crosses
the backend boundary — the flush-before-switch convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..delta.batch import DEFAULT_RTOL, BatchCollector


@dataclass
class BatchStats:
    """Achieved batching/compression counters of one session."""

    #: Update events absorbed through the batched path.
    updates: int = 0
    #: Flushes that actually carried updates.
    flushes: int = 0
    #: Total stacked factor width across all flushed batches.
    stacked_width: int = 0
    #: Total compacted width actually propagated.
    compacted_width: int = 0
    #: Spectral mass dropped by rank_cap truncation (0.0 normally).
    dropped_mass: float = 0.0
    #: Per-flush log of (batch_size, compacted_rank, dropped).
    log: list[tuple[int, int, float]] = field(default_factory=list)

    @property
    def compression(self) -> float:
        """Stacked-to-compacted width ratio (1.0 = nothing saved)."""
        if self.compacted_width == 0:
            return float(self.stacked_width) if self.stacked_width else 1.0
        return self.stacked_width / self.compacted_width

    def as_dict(self) -> dict:
        """Counters as a JSON-ready dict (the bench/CLI schema)."""
        return {
            "updates": self.updates,
            "flushes": self.flushes,
            "stacked_width": self.stacked_width,
            "compacted_width": self.compacted_width,
            "compression": self.compression,
            "dropped_mass": self.dropped_mass,
        }


class SessionBatcher:
    """The batching state a session routes ``apply_update`` through.

    ``width`` is the planned batch size; ``max_staleness`` optionally
    caps pending updates below it (whether the width is plan-derived —
    and thus re-tunable by online re-planning — is the *session's*
    ``_auto_batch`` flag, not this object's concern).
    """

    def __init__(
        self,
        width: int,
        max_staleness: int | None = None,
        rtol: float = DEFAULT_RTOL,
        backend=None,
    ):
        if width < 2:
            raise ValueError("a batching width below 2 is per-update application")
        if max_staleness is not None and max_staleness < 1:
            raise ValueError("max_staleness must be positive (or None)")
        self.width = int(width)
        self.max_staleness = max_staleness
        self.rtol = rtol
        self.collector = BatchCollector(rtol=rtol, backend=backend)
        self.target: str | None = None
        self.stats = BatchStats()

    @property
    def trigger(self) -> int:
        """Pending-update count at which a flush fires."""
        if self.max_staleness is None:
            return self.width
        return min(self.width, self.max_staleness)

    def absorb(self, session, update) -> None:
        """Queue one update for ``session``, flushing per policy."""
        session._check_update_target(update)
        if self.target is not None and update.target != self.target:
            # Cross-input ordering is preserved by construction: one
            # batch never spans two targets.
            self.flush(session)
        self.target = update.target
        self.collector.add(update.u_block, update.v_block)
        self.stats.updates += 1
        if len(self.collector) >= self.trigger:
            self.flush(session)

    def flush(self, session) -> tuple[int, int, float]:
        """Apply the pending batch to ``session`` as one compacted update.

        Returns ``(batch_size, compacted_rank, dropped)``; flushing an
        empty batcher is a no-op.  A batch that cancels to numerical
        rank 0 is dropped outright — the zero update changes nothing.
        """
        from .updates import FactoredUpdate

        if not len(self.collector):
            return 0, 0, 0.0
        size = len(self.collector)
        stacked = self.collector.pending_width
        left, right, dropped = self.collector.compacted()
        self.collector.clear()
        target, self.target = self.target, None
        if left.shape[1] > 0:
            session._apply_now(FactoredUpdate(target, left, right))
        self.stats.flushes += 1
        self.stats.stacked_width += stacked
        self.stats.compacted_width += left.shape[1]
        self.stats.dropped_mass += dropped
        self.stats.log.append((size, left.shape[1], dropped))
        return size, left.shape[1], dropped


__all__ = ["BatchStats", "SessionBatcher"]
