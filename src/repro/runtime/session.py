"""IVM sessions: compile once, maintain forever.

:class:`IVMSession` is the top of the public API.  It takes a
:class:`~repro.compiler.program.Program` and initial input values,
evaluates every statement to materialize the views, compiles the
triggers (Algorithm 1), and then maintains all views under a stream of
:class:`~repro.runtime.updates.FactoredUpdate` events.

Two execution modes are supported for triggers:

* ``mode="interpret"`` — delta expressions are evaluated by the AST
  executor (FLOP-counted, the default);
* ``mode="codegen"`` — triggers are lowered to Python/NumPy source and
  ``exec``-compiled once (the paper's generated-code path).

A matching :class:`ReevalSession` provides the re-evaluation baseline
with the same interface, so experiments can swap strategies.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ..backends import get_backend
from ..compiler.codegen.python_gen import compile_trigger_function, outer_operands
from ..compiler.compile import compile_program
from ..compiler.optimizer import optimize_trigger
from ..compiler.program import Program
from ..compiler.trigger import Trigger
from ..cost import counters
from ..cost.ops import outer_update_flops
from .executor import evaluate
from .updates import FactoredUpdate
from .views import ViewStore


class IVMSession:
    """Incrementally maintained program state (the INCR strategy).

    Parameters
    ----------
    program:
        The linear algebra program to maintain.
    inputs:
        Initial values for every declared input matrix.
    dims:
        Bindings for symbolic dimension names used in the program.
    rank:
        Expected width of incoming factored updates.  Updates of any
        width are accepted in ``interpret`` mode at their true cost; in
        ``codegen`` mode the generated function is width-agnostic too
        (widths only appear as array shapes).
    optimize:
        Run the Section 6 optimizer pipeline over each trigger.
    mode:
        ``"interpret"`` or ``"codegen"`` (see module docstring).
    backend:
        Execution backend for view state and trigger math — a name
        (``"dense"``, ``"sparse"``), a
        :class:`~repro.backends.base.Backend` instance, or ``None`` for
        the dense default.  See :mod:`repro.backends`.
    """

    def __init__(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        dims: Mapping[str, int] | None = None,
        rank: int = 1,
        optimize: bool = False,
        mode: str = "interpret",
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        if mode not in ("interpret", "codegen"):
            raise ValueError(f"unknown mode {mode!r}")
        self.program = program
        self.mode = mode
        self.counter = counter
        self.backend = get_backend(backend)
        self.views = ViewStore(dims, backend=self.backend)
        self.update_count = 0

        missing = set(program.input_names) - set(inputs)
        if missing:
            raise ValueError(f"missing initial values for inputs: {sorted(missing)}")
        for name in program.input_names:
            self.views.set(name, inputs[name])
        self._materialize_all()

        self.triggers: dict[str, Trigger] = compile_program(program, rank=rank)
        if optimize:
            self.triggers = {
                name: optimize_trigger(trigger)
                for name, trigger in self.triggers.items()
            }
        self._compiled: dict[str, Callable] = {}
        if mode == "codegen":
            self._compiled = {
                name: compile_trigger_function(trigger, backend=self.backend)
                for name, trigger in self.triggers.items()
            }

    # -- queries ---------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        """Current value of a view or input, densely (do not mutate)."""
        return self.views.get_dense(name)

    def output(self) -> np.ndarray:
        """Current value of the program's (first) output view, densely."""
        return self.views.get_dense(self.program.outputs[0])

    # -- maintenance -----------------------------------------------------
    def apply_update(self, update: FactoredUpdate) -> None:
        """Maintain every view for one factored update (the INCR path)."""
        trigger = self.triggers.get(update.target)
        if trigger is None:
            raise KeyError(f"no trigger compiled for input {update.target!r}")
        if self.mode == "codegen":
            fn = self._compiled[update.target]
            fn(self.views._arrays, update.u_block, update.v_block,
               dims=self.views.dims)
        else:
            self._interpret(trigger, update)
        self.update_count += 1

    def apply_updates(self, updates: Sequence[FactoredUpdate]) -> None:
        """Maintain the views across a sequence of updates, in order."""
        for update in updates:
            self.apply_update(update)

    def _interpret(self, trigger: Trigger, update: FactoredUpdate) -> None:
        env = self.views.as_env()
        u_name, v_name = (p.name for p in trigger.params)
        env[u_name] = update.u_block
        env[v_name] = update.v_block
        for assign in trigger.assigns:
            env[assign.target.name] = evaluate(
                assign.expr, env, dims=self.views.dims, counter=self.counter,
                backend=self.backend,
            )
        # Updates in the canonical factored shape ``view += U V'`` apply
        # through the backend's add_outer kernel — no dense delta is
        # materialized, and sparse view state stays sparse.  Anything
        # else (e.g. optimizer-rewritten exprs) evaluates generically.
        # Either way all factors were derived above from old values, so
        # application order cannot leak new state into deltas.
        outers: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        deltas: dict[str, np.ndarray] = {}
        for upd in trigger.updates:
            operands = outer_operands(upd.expr)
            if operands is not None and all(n in env for n in operands):
                factors = (env[operands[0]], env[operands[1]])
                self._charge_outer(upd.view.name, factors)
                outers[upd.view.name] = factors
            else:
                deltas[upd.view.name] = evaluate(
                    upd.expr, env, dims=self.views.dims, counter=self.counter,
                    backend=self.backend,
                )
        for name, (u_arr, v_arr) in outers.items():
            self.views.add_outer(name, u_arr, v_arr)
        for name, delta in deltas.items():
            self.views.add_in_place(name, delta)

    def _charge_outer(
        self, name: str, factors: tuple[np.ndarray, np.ndarray]
    ) -> None:
        """Charge a factored application like the evaluated form did."""
        u_arr, v_arr = factors
        current = self.views.get(name)
        rows, cols = self.backend.shape(current)
        self.counter.record("transpose", 0)
        self.counter.record(
            "matmul",
            outer_update_flops(self.backend, current, u_arr, v_arr),
            rows * cols * 8,
        )

    # -- validation ------------------------------------------------------
    def _materialize_all(self) -> None:
        for stmt in self.program.statements:
            value = evaluate(
                stmt.expr,
                self.views.as_env(),
                dims=self.views.dims,
                counter=self.counter,
                backend=self.backend,
            )
            self.views.set(stmt.target.name, value)

    def revalidate(self) -> float:
        """Recompute every view from the current inputs; return max drift.

        Useful for monitoring numerical error accumulated over long
        update streams.  Leaves the maintained values in place.
        """
        env = {name: self.views.get(name) for name in self.program.input_names}
        worst = 0.0
        for stmt in self.program.statements:
            value = evaluate(stmt.expr, env, dims=self.views.dims,
                             backend=self.backend)
            drift = self.backend.max_abs(
                self.backend.sub(value, self.views.get(stmt.target.name))
            )
            worst = max(worst, drift)
            env[stmt.target.name] = value
        return worst


class ReevalSession:
    """The re-evaluation baseline (REEVAL): apply the update, recompute.

    Mirrors :class:`IVMSession`'s interface so experiments can swap the
    two strategies without touching driver code.
    """

    def __init__(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        dims: Mapping[str, int] | None = None,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        self.program = program
        self.counter = counter
        self.backend = get_backend(backend)
        self.views = ViewStore(dims, backend=self.backend)
        self.update_count = 0
        missing = set(program.input_names) - set(inputs)
        if missing:
            raise ValueError(f"missing initial values for inputs: {sorted(missing)}")
        for name in program.input_names:
            self.views.set(name, inputs[name])
        self._reevaluate()

    def __getitem__(self, name: str) -> np.ndarray:
        """Current value of a view or input, densely (do not mutate)."""
        return self.views.get_dense(name)

    def output(self) -> np.ndarray:
        """Current value of the program's (first) output view, densely."""
        return self.views.get_dense(self.program.outputs[0])

    def apply_update(self, update: FactoredUpdate) -> None:
        """Apply the update to its input and re-evaluate every statement."""
        self.views.add_outer(update.target, update.u_block, update.v_block)
        self._reevaluate()
        self.update_count += 1

    def apply_updates(self, updates: Sequence[FactoredUpdate]) -> None:
        """Apply a sequence of updates, re-evaluating after each one."""
        for update in updates:
            self.apply_update(update)

    def _reevaluate(self) -> None:
        for stmt in self.program.statements:
            value = evaluate(
                stmt.expr,
                self.views.as_env(),
                dims=self.views.dims,
                counter=self.counter,
                backend=self.backend,
            )
            self.views.set(stmt.target.name, value)
