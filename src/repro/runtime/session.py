"""IVM sessions: compile once, maintain forever.

:class:`Session` is the shared spine — program validation, view
storage, backend resolution, output accessors, revalidation — with two
strategies on top:

* :class:`IVMSession` — incremental maintenance (INCR): compile the
  triggers (Algorithm 1) and repair every view per factored update;
* :class:`ReevalSession` — the re-evaluation baseline (REEVAL): apply
  the update, recompute every statement.

Both take the same constructor surface, so experiments can swap
strategies without touching driver code.  :func:`open_session` is the
planner-driven entry point: ``open_session(program, inputs)`` measures
the inputs, asks :mod:`repro.planner` for the cheapest (strategy,
backend, mode) configuration, and returns the matching session with the
chosen :class:`~repro.planner.plan.MaintenancePlan` attached as
``session.plan``.

Two execution modes are supported for triggers:

* ``mode="interpret"`` — delta expressions are evaluated by the AST
  executor (FLOP-counted, the default);
* ``mode="codegen"`` — triggers are lowered to Python/NumPy source and
  ``exec``-compiled once (the paper's generated-code path).  By default
  codegen sessions additionally *specialize* each trigger against the
  session's concrete dimensions and backend
  (:mod:`repro.compiler.codegen.fused`): the specialized function runs
  every kernel through the backend's ``*_into`` forms into buffers
  preallocated in a session :class:`~repro.runtime.workspace.Workspace`
  and repairs views **in place**, so a warmed-up dense session performs
  zero heap allocation per update.  Updates whose rank differs from the
  compiled width, and triggers containing nodes without an in-place
  lowering, transparently fall back to the generic generated code;
  ``fused=False`` (or ``mode="interpret"``) disables specialization
  outright.  Because views mutate in place on this path, treat matrices
  returned by ``session[...]``/``session.output()`` as *live* state —
  copy them if you need a snapshot that survives further updates.

Sessions also honor the plan's **batch recommendation** (Table 4):
when ``plan.batch_size > 1``, :func:`open_session` routes
``apply_update`` through a :class:`~repro.delta.batch.BatchCollector`
and flushes one QR+SVD-compacted rank-``r`` refresh per batch — on
width, on read (``session[...]``/``view()``/``output()``/
``revalidate()``), on target change, before any :meth:`with_plan`
switch, and within ``max_staleness`` updates (see
:meth:`Session.set_batching` and :mod:`repro.runtime.batching`).
"""

from __future__ import annotations

import dataclasses
import warnings
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from ..backends import get_backend
from ..compiler.codegen.fused import FusedUnsupported, compile_fused_trigger
from ..compiler.codegen.python_gen import compile_trigger_function, outer_operands
from ..compiler.compile import compile_program
from ..compiler.optimizer import optimize_trigger
from ..compiler.program import Program
from ..compiler.trigger import Trigger
from ..cost import counters
from ..cost.ops import outer_update_flops
from ..delta.batch import DEFAULT_RTOL
from .batching import SessionBatcher
from .executor import evaluate
from .heavylight import HeavyLightMaintainer
from .updates import FactoredUpdate, InvalidUpdateError
from .views import ViewStore
from .workspace import Workspace


class Session:
    """Shared state and plumbing of every maintenance session.

    Parameters
    ----------
    program:
        The linear algebra program to maintain.
    inputs:
        Initial values for every declared input matrix — or a live
        :class:`~repro.runtime.views.ViewStore` to *adopt*: the store's
        state (inputs **and** materialized views) is carried over by
        value, converted to this session's backend, and nothing is
        re-evaluated.  Adoption is the online re-planning hand-off; see
        :meth:`with_plan`.
    dims:
        Bindings for symbolic dimension names used in the program.
    counter:
        FLOP/byte counter charged with all maintenance work.
    backend:
        Execution backend for view state and trigger math — a name
        (``"dense"``, ``"sparse"``), a
        :class:`~repro.backends.base.Backend` instance, or ``None`` for
        the dense default.  See :mod:`repro.backends`.
    """

    #: Strategy name reported by plans/monitors (set by subclasses).
    strategy = "ABSTRACT"

    def __init__(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        dims: Mapping[str, int] | None = None,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        self.program = program
        self.counter = counter
        self.backend = get_backend(backend)
        self.update_count = 0
        self._batcher: SessionBatcher | None = None
        self._auto_batch = False
        self._batch_staleness: int | None = None
        self._partitioner: HeavyLightMaintainer | None = None
        self._auto_partition = False
        self._checkpointer = None
        if isinstance(inputs, ViewStore):
            # Adopt live state: one conversion pass, no re-evaluation.
            self.views = inputs.converted(self.backend)
            return
        self.views = ViewStore(dims, backend=self.backend)
        missing = set(program.input_names) - set(inputs)
        if missing:
            raise ValueError(f"missing initial values for inputs: {sorted(missing)}")
        for name in program.input_names:
            self.views.set(name, inputs[name])
        self._materialize_all()

    # -- queries ---------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        """Current value of a view or input, densely (do not mutate).

        Reads flush any batched pending updates first, so callers never
        observe state that lags the updates they already issued.
        """
        self.flush()
        return self.views.get_dense(name)

    def view(self, name: str) -> np.ndarray:
        """Explicit read accessor: flush pending updates, return densely."""
        return self[name]

    def output(self) -> np.ndarray:
        """Current value of the program's (first) output view, densely."""
        return self[self.program.outputs[0]]

    # -- maintenance -----------------------------------------------------
    def apply_update(self, update: FactoredUpdate) -> None:
        """Maintain the views for one factored update.

        With batching enabled (:meth:`set_batching`, or a plan whose
        ``batch_size > 1`` honored by :func:`open_session`), the update
        is queued in the session's :class:`BatchCollector` and applied
        on the next flush — on width, staleness, read, or plan switch.
        With heavy-light partitioning enabled (:meth:`set_partition`,
        or a plan whose ``partition == "heavy-light"``), the update is
        instead split by target row through the session's
        :class:`~repro.runtime.heavylight.HeavyLightMaintainer` —
        partitioning takes precedence over uniform batching.

        Malformed updates — NaN/Inf factor entries, factor shapes the
        target view cannot absorb — are rejected with
        :class:`~repro.runtime.updates.InvalidUpdateError` *before* any
        view, batcher or accumulator is touched, so a bad update never
        poisons maintained state.
        """
        self._validate_update(update)
        if self._partitioner is not None:
            self._partitioner.absorb(self, update)
        elif self._batcher is not None:
            self._batcher.absorb(self, update)
        else:
            self._apply_now(update)
        self.update_count += 1
        if self._checkpointer is not None:
            self._checkpointer.note(update)

    def apply_updates(self, updates: Sequence[FactoredUpdate]) -> None:
        """Maintain the views across a sequence of updates, in order."""
        for update in updates:
            self.apply_update(update)

    def _apply_now(self, update: FactoredUpdate) -> None:
        """Apply one (possibly batch-compacted) update immediately."""
        raise NotImplementedError

    def _check_update_target(self, update: FactoredUpdate) -> None:
        """Raise early for updates no flush could ever apply."""
        if update.target not in self.views:
            raise KeyError(f"no view or input named {update.target!r}")

    def _validate_update(self, update: FactoredUpdate) -> None:
        """Reject malformed updates before they can touch any state."""
        update.validate_finite()
        self._check_update_target(update)
        if update.target not in self.views:
            return
        rows, cols = self.backend.shape(self.views.get(update.target))
        if update.u_block.shape[0] != rows or update.v_block.shape[0] != cols:
            raise InvalidUpdateError(
                f"update factors ({update.u_block.shape[0]} x "
                f"{update.v_block.shape[0]}) do not match {update.target!r} "
                f"({rows} x {cols})"
            )

    # -- checkpointing ---------------------------------------------------
    def attach_checkpointer(self, target, **options):
        """Attach a checkpoint policy; every applied update is logged.

        ``target`` is a directory (snapshots land there under a
        :class:`~repro.runtime.checkpoint.CheckpointManager`) or an
        existing :class:`~repro.runtime.checkpoint.Checkpointer` to
        re-point at this session; ``options`` pass through to the
        ``Checkpointer`` constructor (``every``, ``keep``, ``auto``,
        ``rank``, ``optimize``, ``delta_limit``).  Returns the attached
        checkpointer.
        """
        from .checkpoint import Checkpointer

        if isinstance(target, Checkpointer):
            checkpointer = target
            checkpointer.session = self
        else:
            checkpointer = Checkpointer(self, target, **options)
        self._checkpointer = checkpointer
        return checkpointer

    @property
    def checkpointer(self):
        """The attached :class:`Checkpointer`, or ``None``."""
        return self._checkpointer

    def restore(self):
        """Rebuild this session's state from its latest valid snapshot.

        Delegates to the attached checkpointer: the newest valid
        snapshot is loaded, the logged delta tail replays, and the
        returned *fresh* session (bitwise-identical to this one) takes
        over the checkpointer.  Raises
        :class:`~repro.runtime.checkpoint.CheckpointError` when no
        checkpointer is attached.
        """
        from .checkpoint import CheckpointError

        if self._checkpointer is None:
            raise CheckpointError(
                "no checkpointer attached (open_session(checkpoint=...) "
                "or session.attach_checkpointer(directory))"
            )
        return self._checkpointer.restore()

    # -- batching --------------------------------------------------------
    def set_batching(
        self,
        width: int | None,
        max_staleness: int | None = None,
        rtol: float = DEFAULT_RTOL,
        auto: bool = False,
    ) -> None:
        """Enable (``width > 1``) or disable (``None``/``<= 1``) batching.

        Pending updates are flushed before the policy changes.
        ``max_staleness`` caps the pending update count below the batch
        width (a read-lag bound; reads always flush regardless).
        ``auto=True`` marks the width as plan-derived so online
        re-planning (:class:`~repro.runtime.drift.ReplanMonitor`) may
        re-price it from live stream statistics — a user-forced width is
        never overridden.

        Achieved-compression statistics survive re-configuration (width
        re-tunes, :meth:`with_plan` switches): ``batch_stats`` keeps
        describing the whole stream, not just the tail segment.
        """
        self.flush()
        prior_stats = self._batcher.stats if self._batcher is not None else None
        self._auto_batch = auto
        self._batch_staleness = max_staleness
        if width is None or width <= 1:
            self._batcher = None
            return
        self._batcher = SessionBatcher(
            width, max_staleness=max_staleness, rtol=rtol,
            backend=self.backend,
        )
        if prior_stats is not None:
            self._batcher.stats = prior_stats

    def set_partition(
        self,
        mode: str | None,
        heavy_budget: int | None = None,
        rank_bound: int | None = None,
        retune_every: int | None = None,
        max_staleness: int | None = None,
        rtol: float = DEFAULT_RTOL,
        auto: bool = False,
        sketch=None,
        observe: bool | None = None,
    ) -> None:
        """Enable (``"heavy-light"``) or disable (``"uniform"``/``None``)
        heavy-light partitioned maintenance.

        Pending updates (batched *and* partitioned) are flushed before
        the policy changes — the flush-before-switch convention.  With
        ``"heavy-light"``, ``apply_update`` routes through a
        :class:`~repro.runtime.heavylight.HeavyLightMaintainer`:
        heavy-hitter rows (at most ``heavy_budget``, chosen adaptively
        from the stream) merge eagerly into accumulator rows while the
        light tail defers into a compacted pending block folded at
        ``rank_bound``.  ``max_staleness`` caps the total pending
        update count (a read-lag bound; reads always flush regardless).
        ``auto=True`` marks the mode as plan-derived so online
        re-planning (:class:`~repro.runtime.drift.ReplanMonitor`) may
        re-tune it from live stream statistics — a user-forced mode is
        never overridden.  ``sketch`` optionally seeds the maintainer
        with an already-warm
        :class:`~repro.planner.plan.StreamSketch` (the monitor shares
        its own, so the heavy set starts from history, not cold);
        ``observe=False`` marks that sketch as externally fed so the
        maintainer does not double-count the stream (``None`` inherits
        the prior partitioner's setting, defaulting to self-observed).

        Achieved split statistics survive re-configuration (budget
        re-tunes, :meth:`with_plan` switches): ``partition_stats``
        keeps describing the whole stream, not just the tail segment.
        """
        self.flush()
        prior = self._partitioner
        self._auto_partition = auto
        if mode is None or mode == "uniform":
            self._partitioner = None
            return
        if mode != "heavy-light":
            raise ValueError(f"unknown partition mode {mode!r}")
        options = {}
        if heavy_budget is not None:
            options["budget"] = heavy_budget
        if rank_bound is not None:
            options["rank_bound"] = rank_bound
        if retune_every is not None:
            options["retune_every"] = retune_every
        if sketch is None and prior is not None:
            sketch = prior.sketch
            if observe is None:
                observe = prior.observe_stream
        self._partitioner = HeavyLightMaintainer(
            max_staleness=max_staleness, rtol=rtol, backend=self.backend,
            sketch=sketch, observe=observe if observe is not None else True,
            **options,
        )
        if prior is not None:
            self._partitioner.stats = prior.stats

    def flush(self) -> tuple[int, int, float]:
        """Apply any batched or partitioned pending updates now.

        Returns ``(batch_size, compacted_rank, dropped)`` summed over
        the active pending paths; a session with nothing pending is a
        no-op returning ``(0, 0, 0.0)``.
        """
        size, rank, dropped = 0, 0, 0.0
        if self._partitioner is not None:
            size, rank, dropped = self._partitioner.flush(self)
        if self._batcher is not None:
            b_size, b_rank, b_dropped = self._batcher.flush(self)
            size, rank, dropped = size + b_size, rank + b_rank, dropped + b_dropped
        return size, rank, dropped

    @property
    def batch_size(self) -> int:
        """The active batching width (1 = per-update application)."""
        return self._batcher.width if self._batcher is not None else 1

    @property
    def batch_stats(self):
        """Achieved :class:`~repro.runtime.batching.BatchStats` (or None)."""
        return self._batcher.stats if self._batcher is not None else None

    @property
    def partition(self) -> str:
        """The active partition mode (``"uniform"`` or ``"heavy-light"``)."""
        return "heavy-light" if self._partitioner is not None else "uniform"

    @property
    def partition_stats(self):
        """Achieved :class:`~repro.runtime.heavylight.HeavyLightStats`
        of the partitioned path (or ``None`` under uniform maintenance)."""
        return self._partitioner.stats if self._partitioner is not None else None

    # -- validation ------------------------------------------------------
    def _materialize_all(self) -> None:
        for stmt in self.program.statements:
            value = evaluate(
                stmt.expr,
                self.views.as_env(),
                dims=self.views.dims,
                counter=self.counter,
                backend=self.backend,
            )
            self.views.set(stmt.target.name, value)

    def rebuild(self) -> None:
        """Recompute every view from the current inputs, in place.

        The drift-recovery hook: maintained values are replaced by a
        fresh evaluation against ground truth (the current inputs), so
        accumulated floating-point drift resets to zero.  Batched
        pending updates flush first — they have not yet reached the
        inputs, and must not be lost to the re-evaluation.
        """
        self.flush()
        self._materialize_all()

    def with_plan(self, plan, rank: int = 1, optimize: bool = False) -> "Session":
        """A session in ``plan``'s configuration adopting this one's state.

        The online re-planning switch (:class:`ReplanMonitor`): view
        state crosses backends through
        :meth:`ViewStore.converted <repro.runtime.views.ViewStore.converted>`
        (one pass over stored entries — CSR state densifies, dense state
        re-enters the target representation policy), INCR plans
        (re)compile their triggers, and **no view is re-evaluated**.
        The update counter carries over and ``plan`` is attached as
        ``.plan``.  The old session must be discarded: converted arrays
        may share memory with it.

        Batched pending updates **flush before the switch** (the
        flush-before-switch convention): deltas must land in the state
        that crosses the backend boundary.  The batching policy carries
        over — a plan-derived width is re-read from the new plan, a
        user-forced width is kept verbatim.
        """
        self.flush()
        if getattr(plan, "nodes", 1) > 1:
            raise ValueError(
                "cannot switch into a sharded (nodes > 1) plan mid-stream; "
                "open a new session with open_session(..., nodes=N)"
            )
        backend = get_backend(plan.backend)
        if plan.strategy == "REEVAL":
            session: Session = ReevalSession(
                self.program, self.views, counter=self.counter,
                backend=backend,
            )
        elif plan.strategy == "INCR":
            session = IVMSession(
                self.program, self.views, rank=rank, optimize=optimize,
                mode=plan.mode, counter=self.counter, backend=backend,
            )
        else:
            raise ValueError(
                f"sessions support INCR or REEVAL, not {plan.strategy!r}"
            )
        session.update_count = self.update_count
        session.plan = plan
        if self._auto_batch:
            width = plan.batch_size
        elif self._batcher is not None:
            width = self._batcher.width
        else:
            width = None
        rtol = self._batcher.rtol if self._batcher is not None else DEFAULT_RTOL
        session.set_batching(width, max_staleness=self._batch_staleness,
                             rtol=rtol, auto=self._auto_batch)
        if self._batcher is not None and session._batcher is not None:
            # Compression accounting spans the whole stream, not just
            # the segment since the last switch.
            session._batcher.stats = self._batcher.stats
        # The partition policy carries over the same way: plan-derived
        # modes are re-read from the new plan, a user-forced mode is
        # kept verbatim; the warm sketch and split statistics follow.
        if self._auto_partition:
            if getattr(plan, "partition", "uniform") == "heavy-light":
                session.set_partition(
                    "heavy-light", heavy_budget=plan.heavy_budget,
                    max_staleness=self._partition_staleness(),
                    auto=True, sketch=self._partition_sketch(),
                    observe=self._partition_observe(),
                )
            else:
                session.set_partition("uniform", auto=True)
        elif self._partitioner is not None:
            prior = self._partitioner
            session.set_partition(
                "heavy-light", heavy_budget=prior.budget,
                rank_bound=prior.rank_bound, retune_every=prior.retune_every,
                max_staleness=prior.max_staleness, rtol=prior.rtol,
                sketch=prior.sketch, observe=prior.observe_stream,
            )
        if self._partitioner is not None and session._partitioner is not None:
            session._partitioner.stats = self._partitioner.stats
        # The checkpoint policy follows the live state: the delta log
        # keeps accumulating across the switch (snapshots capture the
        # new configuration), and the old session stops noting.
        if self._checkpointer is not None:
            checkpointer = self._checkpointer
            checkpointer.session = session
            checkpointer.rank = rank
            checkpointer.optimize = optimize
            session._checkpointer = checkpointer
            self._checkpointer = None
        return session

    def _partition_staleness(self) -> int | None:
        if self._partitioner is not None:
            return self._partitioner.max_staleness
        return self._batch_staleness

    def _partition_sketch(self):
        return self._partitioner.sketch if self._partitioner is not None else None

    def _partition_observe(self):
        if self._partitioner is not None:
            return self._partitioner.observe_stream
        return None

    def revalidate(self) -> float:
        """Recompute every view from the current inputs; return max drift.

        Useful for monitoring numerical error accumulated over long
        update streams.  Leaves the maintained values in place.  Acts
        as a read: batched pending updates flush first.
        """
        self.flush()
        env = {name: self.views.get(name) for name in self.program.input_names}
        worst = 0.0
        for stmt in self.program.statements:
            value = evaluate(stmt.expr, env, dims=self.views.dims,
                             backend=self.backend)
            drift = self.backend.max_abs(
                self.backend.sub(value, self.views.get(stmt.target.name))
            )
            worst = max(worst, drift)
            env[stmt.target.name] = value
        return worst


class IVMSession(Session):
    """Incrementally maintained program state (the INCR strategy).

    Adds to :class:`Session`:

    rank:
        Expected width of incoming factored updates.  Updates of any
        width are accepted in ``interpret`` mode at their true cost; in
        ``codegen`` mode the generated function is width-agnostic too
        (widths only appear as array shapes).
    optimize:
        Run the Section 6 optimizer pipeline over each trigger.
    mode:
        ``"interpret"`` or ``"codegen"`` (see module docstring).
    fused:
        In ``codegen`` mode, specialize each trigger into the fused
        in-place form (the default fast path; see module docstring).
        ``False`` keeps the generic generated code only.
    """

    strategy = "INCR"

    def __init__(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        dims: Mapping[str, int] | None = None,
        rank: int = 1,
        optimize: bool = False,
        mode: str = "interpret",
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        fused: bool = True,
    ):
        if mode not in ("interpret", "codegen"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        super().__init__(program, inputs, dims, counter, backend)

        self.triggers: dict[str, Trigger] = compile_program(program, rank=rank)
        if optimize:
            self.triggers = {
                name: optimize_trigger(trigger)
                for name, trigger in self.triggers.items()
            }
        self._compiled: dict[str, Callable] = {}
        self._fused: dict[str, Callable] = {}
        self.workspace: Workspace | None = None
        if mode == "codegen":
            self._compiled = {
                name: compile_trigger_function(trigger, backend=self.backend)
                for name, trigger in self.triggers.items()
            }
            if fused:
                self._compile_fused()

    def _compile_fused(self) -> None:
        """Specialize triggers against concrete dims into the fused form.

        Triggers the specializer cannot lower (symbolic dims it cannot
        bind, nodes without an in-place kernel) silently keep only their
        generic compiled form — the interpreter contract is never at
        risk, only the allocation profile.
        """
        dims = self._bound_dims()
        self.workspace = Workspace()
        mutated: set[str] = set()
        for name, trigger in self.triggers.items():
            try:
                fn = compile_fused_trigger(
                    trigger, dims, backend=self.backend,
                    workspace=self.workspace,
                )
            except FusedUnsupported:
                continue
            self._fused[name] = fn
            mutated.update(trigger.updated_views)
        # The fused path mutates views in place, so every view it will
        # touch must be session-owned (callers may have handed us their
        # arrays — including CSR objects ViewStore stores by
        # reference): one defensive copy per view, once, at compile
        # time.
        for name in mutated:
            arr = self.views.get(name)
            if isinstance(arr, np.ndarray):
                self.views._arrays[name] = np.array(
                    arr, dtype=np.float64, order="C"
                )
            else:
                self.views._arrays[name] = arr.copy()

    def _bound_dims(self) -> dict[str, int]:
        """User-supplied dims completed from the stored inputs' shapes."""
        dims = dict(self.views.dims)
        for sym in self.program.inputs:
            if sym.name not in self.views:
                continue
            shape = self.backend.shape(self.views.get(sym.name))
            for dim, size in zip((sym.shape.rows, sym.shape.cols), shape):
                name = getattr(dim, "name", None)
                if name is not None:
                    dims.setdefault(name, int(size))
        return dims

    # -- maintenance -----------------------------------------------------
    def _check_update_target(self, update: FactoredUpdate) -> None:
        if update.target not in self.triggers:
            raise KeyError(f"no trigger compiled for input {update.target!r}")

    def _apply_now(self, update: FactoredUpdate) -> None:
        """Maintain every view for one factored update (the INCR path)."""
        trigger = self.triggers.get(update.target)
        if trigger is None:
            raise KeyError(f"no trigger compiled for input {update.target!r}")
        if self.mode == "codegen":
            fn = self._fused.get(update.target)
            if fn is None or update.u_block.shape[1] != fn.__rank__:
                # Off-width updates (and unspecializable triggers) take
                # the generic generated path — correct at any rank.
                fn = self._compiled[update.target]
            fn(self.views._arrays, update.u_block, update.v_block,
               dims=self.views.dims)
        else:
            self._interpret(trigger, update)

    def _interpret(self, trigger: Trigger, update: FactoredUpdate) -> None:
        env = self.views.as_env()
        u_name, v_name = (p.name for p in trigger.params)
        env[u_name] = update.u_block
        env[v_name] = update.v_block
        for assign in trigger.assigns:
            env[assign.target.name] = evaluate(
                assign.expr, env, dims=self.views.dims, counter=self.counter,
                backend=self.backend,
            )
        # Updates in the canonical factored shape ``view += U V'`` apply
        # through the backend's add_outer kernel — no dense delta is
        # materialized, and sparse view state stays sparse.  Anything
        # else (e.g. optimizer-rewritten exprs) evaluates generically.
        # Either way all factors were derived above from old values, so
        # application order cannot leak new state into deltas.
        outers: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        deltas: dict[str, np.ndarray] = {}
        for upd in trigger.updates:
            operands = outer_operands(upd.expr)
            if operands is not None and all(n in env for n in operands):
                factors = (env[operands[0]], env[operands[1]])
                self._charge_outer(upd.view.name, factors)
                outers[upd.view.name] = factors
            else:
                deltas[upd.view.name] = evaluate(
                    upd.expr, env, dims=self.views.dims, counter=self.counter,
                    backend=self.backend,
                )
        for name, (u_arr, v_arr) in outers.items():
            self.views.add_outer(name, u_arr, v_arr)
        for name, delta in deltas.items():
            self.views.add_in_place(name, delta)

    def _charge_outer(
        self, name: str, factors: tuple[np.ndarray, np.ndarray]
    ) -> None:
        """Charge a factored application like the evaluated form did."""
        u_arr, v_arr = factors
        current = self.views.get(name)
        rows, cols = self.backend.shape(current)
        self.counter.record("transpose", 0)
        self.counter.record(
            "matmul",
            outer_update_flops(self.backend, current, u_arr, v_arr),
            rows * cols * 8,
        )


class ReevalSession(Session):
    """The re-evaluation baseline (REEVAL): apply the update, recompute.

    Mirrors :class:`IVMSession`'s interface so experiments can swap the
    two strategies without touching driver code.
    """

    strategy = "REEVAL"

    def _apply_now(self, update: FactoredUpdate) -> None:
        """Apply the update to its input and re-evaluate every statement.

        This is where batching pays most: a width-``m`` batch costs one
        compaction plus *one* re-evaluation instead of ``m``.
        """
        self.views.add_outer(update.target, update.u_block, update.v_block)
        self._materialize_all()


class ShardedChainSession(Session):
    """INCR maintenance on a multiprocess shared-memory shard engine.

    Views live in ``multiprocessing.shared_memory`` segments shared with
    ``nodes`` persistent workers
    (:class:`~repro.distributed.sharded.ShardedEngine`); each factored
    update runs the chain recurrence with the big per-tile dgemms fanned
    out across workers and only thin rank-k factors crossing pipes.
    Requires the dense backend and a chain-shaped program (every
    statement a product of two existing views of one square input —
    :func:`~repro.distributed.sharded.chain_steps`).

    ``session.views`` aliases the shared segments, so reads are
    zero-copy *live* state — copy what must survive further updates.
    Measured traffic accumulates in ``session.engine.comm``.

    :meth:`with_plan` honors the flush-before-switch contract for node
    count changes: pending deltas drain, view state is copied out of
    shared memory, the workers stop, and only then does the ordinary
    single-process switch run.
    """

    strategy = "INCR"
    mode = "interpret"

    def __init__(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        dims: Mapping[str, int] | None = None,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        nodes: int = 2,
        shard: str = "range",
        tile_rows: int | None = None,
        start_method: str = "spawn",
        timeout: float | None = None,
        supervise: bool = False,
        recover: str = "reeval",
    ):
        from ..distributed.partitioner import RowShardPartitioner
        from ..distributed.sharded import ShardedEngine, chain_steps
        from ..distributed.workers import DEFAULT_TIMEOUT

        if recover not in ("reeval", "fail"):
            raise ValueError(f"recover must be 'reeval' or 'fail', "
                             f"got {recover!r}")

        resolved_backend = get_backend(backend)
        if resolved_backend.name != "dense":
            raise ValueError(
                f"sharded sessions require the dense backend, "
                f"got {resolved_backend.name!r}"
            )
        if nodes < 2:
            raise ValueError(f"nodes must be >= 2 for a sharded session, "
                             f"got {nodes}")
        parsed = chain_steps(program)
        if parsed is None:
            raise ValueError(
                "nodes > 1 requires a chain-shaped program: one input, "
                "every statement a product of two existing views"
            )
        self._input_name, self._steps = parsed
        super().__init__(program, inputs, dims, counter, resolved_backend)
        seed = self.views.get_dense(self._input_name)
        if seed.ndim != 2 or seed.shape[0] != seed.shape[1]:
            raise ValueError(
                f"sharded maintenance needs a square input, "
                f"got shape {seed.shape}"
            )
        partitioner = RowShardPartitioner(seed.shape[0], nodes,
                                          strategy=shard, tile_rows=tile_rows)
        self.nodes = nodes
        self.shard = shard
        self.recover = recover
        #: One record per REEVAL fallback taken after an unrecoverable
        #: worker failure (see :meth:`_reeval_recover`).
        self.fallback_events: list[dict] = []
        self.engine = ShardedEngine(
            partitioner, start_method=start_method,
            timeout=DEFAULT_TIMEOUT if timeout is None else timeout,
            supervise=supervise,
        )
        self._sharded = False
        self._shard_views()

    @property
    def recoveries(self) -> list:
        """Supervised worker recoveries logged by the cluster."""
        return self.engine.recoveries

    def _shard_names(self) -> list[str]:
        return [self._input_name] + [target for target, _, _ in self._steps]

    def _shard_views(self) -> None:
        """Copy every maintained view into shared memory and re-point
        the store at the segment-backed arrays (zero-copy reads).

        On any failure mid-sharding (a full ``/dev/shm`` raising
        :class:`~repro.distributed.shm.SharedMemoryBudgetError`, a
        worker dying during attach) the already-sharded views are
        copied back to private arrays and the cluster is shut down
        before the error propagates — the session's state stays intact
        for a single-process fallback.
        """
        done: list[str] = []
        try:
            for name in self._shard_names():
                shared = self.engine.put(name, self.views.get_dense(name))
                self.views._arrays[name] = shared
                done.append(name)
        except Exception:
            for name in done:
                self.views._arrays[name] = np.array(self.views._arrays[name])
            self.engine.close()
            raise
        self._sharded = True

    def _unshard(self) -> None:
        """Copy state out of shared memory and stop the workers."""
        if not self._sharded:
            return
        for name in self._shard_names():
            self.views._arrays[name] = np.array(self.views._arrays[name])
        self._sharded = False
        self.engine.close()

    def _apply_now(self, update: FactoredUpdate) -> None:
        from ..distributed.sharded import sharded_refresh
        from ..distributed.workers import WorkerFailedError

        if update.target != self._input_name:
            raise KeyError(
                f"sharded sessions maintain updates to "
                f"{self._input_name!r}, got {update.target!r}"
            )
        flops = outer_update_flops(
            self.backend, self.views.get(self._input_name),
            update.u_block, update.v_block,
        )
        self.counter.record("sharded_refresh",
                            flops * len(self._shard_names()))
        progress: list = []
        try:
            sharded_refresh(self.engine, self._input_name, self._steps,
                            update.u_block, update.v_block,
                            progress=progress)
        except WorkerFailedError as error:
            if self.recover != "reeval" or not self._sharded:
                raise
            self._reeval_recover(progress, update, error)

    def _reeval_recover(self, progress: list, update: FactoredUpdate,
                        error: Exception) -> None:
        """Recover from an unrecoverable cluster failure mid-refresh.

        The refresh's ``progress`` log pins down exactly how far the
        shared-memory state got (see
        :func:`~repro.distributed.sharded.sharded_refresh`): views
        whose ``"added"`` entry landed absorbed their delta, the one
        with an unmatched ``"adding"`` may hold torn rows, later ones
        are untouched.  Recovery migrates onto a single-process
        :class:`~repro.distributed.sharded.LocalShardEngine` (same
        tiles, same kernels):

        * input not yet absorbed → nothing durable changed; the whole
          refresh reruns locally (the INCR path, bitwise-identical
          arithmetic);
        * input absorbed → every derived view is re-evaluated from the
          consistent input via tiled ``matmul`` (the REEVAL path of
          Section 2 — more expensive, erases any torn rows).

        A torn *input* has no consistent basis on either path, so that
        case re-raises — restore from a checkpoint instead.  The
        session continues single-process; re-sharding is a fresh
        ``open_session(nodes=N)``.
        """
        from ..distributed.sharded import LocalShardEngine, sharded_refresh

        added = {entry[1] for entry in progress if entry[0] == "added"}
        adding = [entry[1] for entry in progress if entry[0] == "adding"]
        torn = (adding[-1]
                if adding and adding[-1] not in added else None)
        if torn == self._input_name:
            raise RuntimeError(
                f"input {self._input_name!r} torn mid-absorption; no "
                f"consistent basis to re-evaluate from — restore from a "
                f"checkpoint"
            ) from error
        local = LocalShardEngine(self.engine.part)
        for name in self._shard_names():
            # The shm mappings survive the cluster teardown (the store
            # still references them); copy out to private arrays.
            local.put(name, np.array(self.views._arrays[name]))
        if self._input_name in added:
            mode = "reeval"
            for target, left, right in self._steps:
                local.matmul(target, left, right)
        else:
            mode = "replay"
            sharded_refresh(local, self._input_name, self._steps,
                            update.u_block, update.v_block)
        for name in self._shard_names():
            self.views._arrays[name] = local.get(name)
        old, self.engine = self.engine, local
        old.close()
        self.nodes = 1
        self.fallback_events.append({
            "mode": mode, "torn": torn, "applied": sorted(added),
            "reason": str(error), "update_count": self.update_count,
        })

    def rebuild(self) -> None:
        """Re-evaluate from current inputs, then refill the segments.

        ``_materialize_all`` replaces the store's arrays with freshly
        evaluated private ones; the shared segments must be re-seeded
        and re-pointed so workers keep seeing the maintained state.
        """
        self.flush()
        if not self._sharded:
            super().rebuild()
            return
        self._materialize_all()
        for target, _, _ in self._steps:
            fresh = self.views.get_dense(target)
            shared = self.engine.get(target)
            if fresh is not shared:
                shared[...] = fresh
                self.views._arrays[target] = shared

    def with_plan(self, plan, rank: int = 1, optimize: bool = False) -> "Session":
        """Fall back to a single-process configuration.

        Flush-before-switch for node-count changes: pending deltas
        drain into shared memory, the views are copied out, the cluster
        shuts down, then the ordinary switch builds the new session
        from the private state.
        """
        self.flush()
        self._unshard()
        return super().with_plan(plan, rank=rank, optimize=optimize)

    def close(self) -> None:
        """Copy view state out of shared memory and stop the workers."""
        self._unshard()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def open_session(
    program: Program,
    inputs: Mapping[str, np.ndarray],
    dims: Mapping[str, int] | None = None,
    plan="auto",
    backend=None,
    mode: str | None = None,
    rank: int = 1,
    refresh_count: int | None = None,
    optimize: bool = False,
    counter: counters.Counter = counters.NULL_COUNTER,
    drift=None,
    replan=None,
    batch="auto",
    max_staleness: int | None = None,
    partition="auto",
    heavy_budget: int | None = None,
    serve=None,
    nodes=1,
    shard: str = "range",
    supervise: bool = False,
    checkpoint=None,
    catalog=None,
):
    """Open a maintenance session, planning the configuration if asked.

    Parameters
    ----------
    plan:
        ``"auto"`` (default) asks :func:`repro.planner.plan_program`
        for the cheapest (strategy, backend, mode) given the inputs'
        measured shapes and densities; ``"incr"`` / ``"reeval"`` force
        the strategy but still plan the other axes; a
        :class:`~repro.planner.plan.MaintenancePlan` is used verbatim.
    backend, mode:
        Explicit overrides that win over whatever the planner chose
        (``None`` defers to the plan).
    rank:
        Expected width of incoming factored updates (planning statistic
        and trigger compilation width).
    refresh_count:
        Expected number of updates this session will absorb; amortizes
        setup cost in planning and gates codegen.  ``None`` uses the
        planner default.
    drift:
        ``None`` (no monitoring), ``True`` (defaults), or a dict of
        :class:`~repro.runtime.drift.SessionDriftMonitor` options
        (``check_every``, ``tolerance``, ``action``).  With monitoring
        the return value is the monitor wrapping the session; the
        ``rebuild`` action recomputes all views from current inputs.
    replan:
        ``None`` (static plan), ``True`` (defaults), or a dict of
        :class:`~repro.runtime.drift.ReplanMonitor` options
        (``check_every``, ``switch_margin``, ``expected_refreshes``,
        plus the drift options).  Returns the re-planning monitor
        wrapping the session: the plan grid is re-priced from live
        state every ``check_every`` updates and the session switches
        strategy/backend mid-stream when it pays.  Subsumes ``drift``
        (options given there are folded in underneath).
    batch:
        ``"auto"`` (default) honors the resolved plan's
        ``batch_size``: when it is greater than 1 the session collects
        updates in a :class:`~repro.delta.batch.BatchCollector` and
        flushes one QR+SVD-compacted refresh per batch (reads, drift
        probes and plan switches flush early; see
        :meth:`Session.set_batching`).  ``"off"``/``None``/``1``
        disables batching; an integer forces that width regardless of
        the plan (re-planning never overrides a forced width).
    max_staleness:
        Upper bound on pending batched updates (a read-lag bound below
        the planned width); ``None`` leaves the width as the only bound.
        Applies to the heavy-light path too (total pending count).
    partition:
        ``"auto"`` (default) honors the resolved plan's ``partition``
        axis: when the planner recommended ``"heavy-light"`` (it needs
        a skew-measuring :class:`~repro.planner.plan.StreamSketch` in
        ``WorkloadStats.distinct_fraction`` to do so), ``apply_update``
        routes through a
        :class:`~repro.runtime.heavylight.HeavyLightMaintainer` —
        heavy-hitter rows merge eagerly into accumulator rows, the
        light tail defers into a compacted pending block (see
        :meth:`Session.set_partition`); re-planning may re-tune the
        mode mid-stream.  ``"uniform"`` forces the split off;
        ``"heavy-light"`` forces it on regardless of the plan (never
        overridden by re-planning).  Partitioning takes precedence
        over uniform batching when both resolve on.
    heavy_budget:
        Heavy-set capacity for ``partition="heavy-light"``; ``None``
        takes the plan's recommendation or the runtime default
        (:data:`~repro.runtime.heavylight.DEFAULT_HEAVY_BUDGET`).
    serve:
        ``None`` (default) returns the single-threaded session/monitor;
        ``True`` (defaults) or a dict of
        :class:`~repro.runtime.serving.ViewServer` options
        (``max_staleness``, ``max_age``, ``views``, ``max_queue``)
        wraps it in a concurrent view server instead: one writer
        thread drains an ingress queue through ``apply_update`` (and
        runs any ``replan=``/``drift=`` monitor on that thread), while
        readers get lock-free snapshot reads of the last published
        epoch.  Note the server's ``max_staleness`` (its own key in the
        dict) is the *publication* bound, distinct from this
        function's batching ``max_staleness`` parameter.
    nodes:
        Worker-process budget for the planner's node-count axis.  An
        int ``N > 1`` prices the grid over ``(1, N)`` — the planner
        picks sharded execution only when the comm-cost model says it
        pays, so a tiny view still opens single-process; a tuple/list
        prices exactly those counts (``(4,)`` forces the 4-worker
        cell).  When the resolved plan has ``plan.nodes > 1`` the
        session is a :class:`ShardedChainSession` over a spawned
        :class:`~repro.distributed.workers.ProcessCluster` — call
        ``session.close()`` (or use it as a context manager) to copy
        state out of shared memory and stop the workers.
    shard:
        Shard strategy for sharded sessions: ``"range"`` (contiguous
        tile runs) or ``"hash"`` (round-robin tiles).  Maintenance
        results are bitwise identical either way; the axis exists for
        the skew/locality ablation.
    supervise:
        For sharded sessions: run the cluster under worker supervision
        (:class:`~repro.distributed.workers.ProcessCluster` with
        ``supervise=True``) — a killed or hung worker is detected,
        respawned, and its shard re-materialized with the in-flight
        call retried, so ``kill -9`` becomes a logged
        :class:`~repro.distributed.workers.RecoveryEvent` instead of a
        poisoned cluster.  When even supervision cannot save the
        cluster, the session falls back to single-process maintenance
        (:meth:`ShardedChainSession._reeval_recover`).  If the
        machine's shared-memory budget cannot hold the views at all
        (:class:`~repro.distributed.shm.SharedMemoryBudgetError`), the
        session opens single-process with a ``RuntimeWarning``
        regardless of this flag.
    checkpoint:
        ``None`` (off); a directory path enabling durable
        checkpointing there with default policy; or a dict of
        :class:`~repro.runtime.checkpoint.Checkpointer` options plus
        ``"directory"`` and optionally ``"restore"``: ``restore=True``
        requires a valid snapshot (raises
        :class:`~repro.runtime.checkpoint.CheckpointError` otherwise),
        ``restore="auto"`` resumes from one when present and falls
        through to a fresh planned session when not.  A restored
        session resumes on the checkpointed plan (single-process; pass
        ``nodes=`` on a fresh open to re-shard) and keeps
        checkpointing to the same directory.  With ``serve=`` the
        server's writer thread additionally cuts due snapshots at
        epoch-publish boundaries, so readers never block on a write.
        An existing :class:`~repro.runtime.checkpoint.Checkpointer`
        is re-attached as-is.
    catalog:
        A :class:`~repro.catalog.ViewCatalog` to register this program
        with instead of opening a private session: shared
        subexpressions are maintained once across every tenant on the
        catalog, and the catalog's own maintenance configuration
        (strategy/mode/backend, fixed at its construction) wins over
        this call's planning arguments.  Returns the tenant's
        :class:`~repro.catalog.CatalogSession` — or, with ``serve=``,
        a :class:`~repro.runtime.serving.ViewServer` over it whose
        snapshot captures are atomic against other tenants' writers.
        Incompatible session-shaping arguments (``nodes``, monitors,
        batching, checkpointing) are ignored on this path.

    Returns the session (or its monitor, or its view server), with the
    resolved :class:`~repro.planner.plan.MaintenancePlan` attached as
    ``.plan``.
    """
    if catalog is not None:
        tenant = catalog.open(program, inputs, dims=dims)
        if serve:
            serve_options = {} if serve is True else dict(serve)
            return tenant.serve(**serve_options)
        return tenant
    from ..distributed.shm import SharedMemoryBudgetError
    from ..planner import MaintenancePlan, WorkloadStats, plan_program
    from .checkpoint import CheckpointError, Checkpointer, restore_session
    from .drift import ReplanMonitor, SessionDriftMonitor
    from .serving import ViewServer

    ckpt_target = None
    ckpt_options: dict = {}
    ckpt_restore = False
    if checkpoint is not None:
        if isinstance(checkpoint, (Checkpointer, str, Path)):
            ckpt_target = checkpoint
        elif isinstance(checkpoint, Mapping):
            ckpt_options = dict(checkpoint)
            ckpt_target = ckpt_options.pop("directory", None)
            ckpt_restore = ckpt_options.pop("restore", False)
            if ckpt_target is None:
                raise ValueError("checkpoint dict needs a 'directory' entry")
            if ckpt_restore not in (False, True, "auto"):
                raise ValueError(
                    f"checkpoint restore must be True, False or 'auto', "
                    f"got {ckpt_restore!r}"
                )
        else:
            raise ValueError(
                f"checkpoint must be a directory, an options dict or a "
                f"Checkpointer, got {checkpoint!r}"
            )

    session: Session | None = None
    if ckpt_restore and not isinstance(ckpt_target, Checkpointer):
        try:
            session = restore_session(program, ckpt_target, counter=counter)
        except CheckpointError:
            if ckpt_restore is True:
                raise
            # restore="auto": no valid snapshot yet — plan fresh below.
            session = None

    if session is not None:
        # Resume on the checkpointed configuration: the snapshot's plan
        # wins over this call's plan/batch/partition arguments (they
        # describe a fresh open, not the state being resumed).
        resolved = getattr(session, "plan", None)
        if resolved is None:
            resolved = plan_program(
                program, inputs, stats=WorkloadStats(n=1, update_rank=rank),
                dims=dims)
            session.plan = resolved
    else:
        stats_kwargs = {"update_rank": rank}
        if refresh_count is not None:
            stats_kwargs["refresh_count"] = refresh_count
        stats = WorkloadStats(n=1, **stats_kwargs)

        if isinstance(nodes, (tuple, list)):
            node_grid = tuple(int(count) for count in nodes) or (1,)
        else:
            node_grid = (1, int(nodes)) if int(nodes) > 1 else (1,)

        if isinstance(plan, MaintenancePlan):
            resolved = plan
        elif plan in ("auto", None):
            resolved = plan_program(program, inputs, stats=stats, dims=dims,
                                    nodes=node_grid)
        elif isinstance(plan, str) and plan.upper() in ("INCR", "REEVAL"):
            resolved = plan_program(program, inputs, stats=stats, dims=dims,
                                    strategies=(plan.upper(),),
                                    nodes=node_grid)
        else:
            raise ValueError(
                f"plan must be 'auto', 'incr', 'reeval' or a MaintenancePlan, "
                f"got {plan!r}"
            )
        resolved = resolved.with_overrides(
            backend=backend and get_backend(backend).name, mode=mode)
        if resolved.strategy not in ("INCR", "REEVAL"):
            raise ValueError(
                f"sessions support INCR or REEVAL, not {resolved.strategy!r} "
                "(HYBRID exists only for the iterative maintainers)"
            )

        if resolved.nodes > 1:
            # Sharded execution runs the interpret-style tile kernels.
            resolved = resolved.with_overrides(mode="interpret")
            try:
                session = ShardedChainSession(
                    program, inputs, dims, counter=counter,
                    backend=resolved.backend, nodes=resolved.nodes,
                    shard=shard, supervise=supervise,
                )
            except SharedMemoryBudgetError as exc:
                # Out of /dev/shm: a sharded plan cannot hold its views.
                # Degrade to the single-process configuration instead of
                # failing the open — the planner's grid always prices it.
                warnings.warn(
                    f"shared-memory budget exhausted; opening the planned "
                    f"{resolved.nodes}-node session single-process instead "
                    f"({exc})",
                    RuntimeWarning, stacklevel=2,
                )
                resolved = dataclasses.replace(resolved, nodes=1)
                session = IVMSession(
                    program, inputs, dims, rank=rank, optimize=optimize,
                    mode=resolved.mode, counter=counter,
                    backend=resolved.backend,
                )
        elif resolved.strategy == "REEVAL":
            # Re-evaluation has no trigger code, so no execution mode.
            resolved = resolved.with_overrides(mode="interpret")
            session = ReevalSession(
                program, inputs, dims, counter=counter,
                backend=resolved.backend,
            )
        else:
            session = IVMSession(
                program, inputs, dims, rank=rank, optimize=optimize,
                mode=resolved.mode, counter=counter, backend=resolved.backend,
            )
        session.plan = resolved

        if batch == "auto" or batch is True:
            session.set_batching(resolved.batch_size,
                                 max_staleness=max_staleness, auto=True)
        elif batch == "off" or batch is None or batch is False:
            pass
        elif isinstance(batch, int) and not isinstance(batch, bool):
            if batch < 1:
                raise ValueError(f"batch width must be >= 1, got {batch!r}")
            if batch > 1:
                session.set_batching(batch, max_staleness=max_staleness)
        else:
            raise ValueError(
                f"batch must be 'auto', 'off', None or a width >= 1, "
                f"got {batch!r}"
            )

        if partition == "auto" or partition is True:
            if resolved.partition == "heavy-light":
                session.set_partition(
                    "heavy-light",
                    heavy_budget=heavy_budget or resolved.heavy_budget,
                    max_staleness=max_staleness, auto=True,
                )
            else:
                # Uniform for now, but plan-derived: re-planning may
                # still switch the split on when the stream turns skewed.
                session.set_partition("uniform", auto=True)
        elif (partition in ("uniform", "off") or partition is None
                or partition is False):
            session.set_partition("uniform")
        elif partition == "heavy-light":
            session.set_partition(
                "heavy-light", heavy_budget=heavy_budget,
                max_staleness=max_staleness,
            )
        else:
            raise ValueError(
                f"partition must be 'auto', 'uniform' or 'heavy-light', "
                f"got {partition!r}"
            )

    if ckpt_target is not None:
        options = dict(ckpt_options)
        if not isinstance(ckpt_target, Checkpointer):
            options.setdefault("rank", rank)
            options.setdefault("optimize", optimize)
        session.attach_checkpointer(ckpt_target, **options)

    result = session
    if replan:
        options = {} if replan is True else dict(replan)
        if drift:
            # Fold a drift= request underneath: its cadence becomes the
            # numerical probe schedule, its policy options pass through.
            drift_options = {} if drift is True else dict(drift)
            options.setdefault(
                "probe_every", drift_options.pop("check_every", 100))
            for key, value in drift_options.items():
                options.setdefault(key, value)
        options.setdefault("expected_refreshes", refresh_count)
        result = ReplanMonitor(session, **options)
        result.plan = resolved
    elif drift:
        options = {} if drift is True else dict(drift)
        result = SessionDriftMonitor(session, **options)
        result.plan = resolved
    if serve:
        # The server's writer thread becomes the session's (and any
        # monitor's) sole owner: replans and drift probes run there.
        serve_options = {} if serve is True else dict(serve)
        server = ViewServer(result, **serve_options)
        server.plan = resolved
        return server
    return result
