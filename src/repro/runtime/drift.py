"""Drift monitoring for long-lived incremental views.

Incremental maintenance compounds floating-point error: each refresh
adds a delta computed from already-slightly-stale views, so after many
updates the maintained result drifts from what re-evaluation would
produce.  The paper sidesteps this operationally (inputs are
"preconditioned appropriately for numerical stability"); a production
deployment needs a policy.  :class:`DriftMonitor` wraps any maintainer
exposing ``refresh(u, v)`` plus a drift probe, and re-validates every
``check_every`` refreshes:

* drift within ``tolerance``   -> nothing happens (the common case);
* drift beyond ``tolerance``   -> the configured action runs —
  ``"rebuild"`` (call the maintainer's rebuild hook and keep going) or
  ``"raise"`` (:class:`DriftExceededError` for caller-controlled
  recovery).

Probes are cheap relative to their period: one re-evaluation amortized
over ``check_every`` refreshes, the same trade Table 3 makes explicit
for memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np


class MaintainerWithDrift(Protocol):
    """What the monitor needs: refresh plus a drift probe."""

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None: ...

    def revalidate(self) -> float: ...


class DriftExceededError(RuntimeError):
    """Raised by the ``"raise"`` policy when drift passes tolerance."""

    def __init__(self, drift: float, tolerance: float, refreshes: int):
        super().__init__(
            f"view drift {drift:.3e} exceeded tolerance {tolerance:.3e} "
            f"after {refreshes} refreshes"
        )
        self.drift = drift
        self.tolerance = tolerance
        self.refreshes = refreshes


@dataclass
class DriftReport:
    """One probe outcome."""

    refreshes: int
    drift: float
    rebuilt: bool


class DriftMonitor:
    """Wraps a maintainer with a periodic re-validation policy.

    ``rebuild`` is a zero-argument callable returning a *fresh*
    maintainer built from current ground truth; it is required for the
    ``"rebuild"`` action.  The monitor delegates attribute access to
    the wrapped maintainer, so ``monitor.result()`` etc. keep working.
    """

    def __init__(
        self,
        maintainer: MaintainerWithDrift,
        check_every: int = 100,
        tolerance: float = 1e-6,
        action: str = "raise",
        rebuild: Callable[[], MaintainerWithDrift] | None = None,
    ):
        if check_every < 1:
            raise ValueError("check_every must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if action not in ("raise", "rebuild"):
            raise ValueError(f"unknown action {action!r}")
        if action == "rebuild" and rebuild is None:
            raise ValueError("action='rebuild' needs a rebuild callable")
        self.maintainer = maintainer
        self.check_every = check_every
        self.tolerance = tolerance
        self.action = action
        self._rebuild = rebuild
        self.refreshes = 0
        self.reports: list[DriftReport] = []

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Refresh the wrapped maintainer; probe on schedule."""
        self.maintainer.refresh(u, v)
        self.refreshes += 1
        if self.refreshes % self.check_every == 0:
            self.probe()

    def probe(self) -> DriftReport:
        """Re-validate now, applying the policy if drift is excessive."""
        drift = self.maintainer.revalidate()
        rebuilt = False
        if drift > self.tolerance:
            if self.action == "raise":
                report = DriftReport(self.refreshes, drift, False)
                self.reports.append(report)
                raise DriftExceededError(drift, self.tolerance, self.refreshes)
            self.maintainer = self._rebuild()
            rebuilt = True
        report = DriftReport(self.refreshes, drift, rebuilt)
        self.reports.append(report)
        return report

    @property
    def last_drift(self) -> float | None:
        """Drift at the most recent probe (None before the first)."""
        return self.reports[-1].drift if self.reports else None

    @property
    def rebuild_count(self) -> int:
        """How many times the policy rebuilt the maintainer."""
        return sum(1 for report in self.reports if report.rebuilt)

    def __getattr__(self, name: str):
        if name == "maintainer":
            # __init__ hasn't run (copy/pickle): avoid infinite recursion.
            raise AttributeError(name)
        return getattr(self.maintainer, name)


class SessionDriftMonitor:
    """Drift monitoring for sessions (the ``apply_update`` interface).

    The session counterpart of :class:`DriftMonitor`: wraps any object
    exposing ``apply_update(update)`` plus ``revalidate()`` (both
    session strategies do) and probes every ``check_every`` updates.
    Unlike maintainers, a session can recover *in place* — its current
    inputs are ground truth — so the default ``"rebuild"`` action calls
    the session's :meth:`~repro.runtime.session.Session.rebuild`, which
    re-evaluates every view from the current inputs; a custom
    ``rebuild`` callable overrides that.

    Attribute access falls through to the wrapped session, so
    ``monitor.output()``, ``monitor["V"]`` etc. keep working.
    """

    def __init__(
        self,
        session,
        check_every: int = 100,
        tolerance: float = 1e-6,
        action: str = "rebuild",
        rebuild: Callable[[], None] | None = None,
    ):
        if check_every < 1:
            raise ValueError("check_every must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if action not in ("raise", "rebuild"):
            raise ValueError(f"unknown action {action!r}")
        self.session = session
        self.check_every = check_every
        self.tolerance = tolerance
        self.action = action
        self._rebuild = rebuild if rebuild is not None else session.rebuild
        self.refreshes = 0
        self.reports: list[DriftReport] = []

    def apply_update(self, update) -> None:
        """Apply one update through the session; probe on schedule."""
        self.session.apply_update(update)
        self.refreshes += 1
        if self.refreshes % self.check_every == 0:
            self.probe()

    def apply_updates(self, updates) -> None:
        """Apply a sequence of updates, probing on schedule."""
        for update in updates:
            self.apply_update(update)

    def probe(self) -> DriftReport:
        """Re-validate now, applying the policy if drift is excessive."""
        drift = self.session.revalidate()
        rebuilt = False
        if drift > self.tolerance:
            if self.action == "raise":
                report = DriftReport(self.refreshes, drift, False)
                self.reports.append(report)
                raise DriftExceededError(drift, self.tolerance, self.refreshes)
            self._rebuild()
            rebuilt = True
        report = DriftReport(self.refreshes, drift, rebuilt)
        self.reports.append(report)
        return report

    @property
    def last_drift(self) -> float | None:
        """Drift at the most recent probe (None before the first)."""
        return self.reports[-1].drift if self.reports else None

    @property
    def rebuild_count(self) -> int:
        """How many times the policy rebuilt the views."""
        return sum(1 for report in self.reports if report.rebuilt)

    def __getitem__(self, name: str):
        return self.session[name]

    def __getattr__(self, name: str):
        if name == "session":
            # __init__ hasn't run (copy/pickle): avoid infinite recursion.
            raise AttributeError(name)
        return getattr(self.session, name)


@dataclass
class ReplanEvent:
    """One re-planning decision (taken or declined)."""

    refreshes: int              #: updates absorbed when the check ran
    from_label: str             #: plan the session was running
    to_label: str               #: cheapest plan at current statistics
    predicted_saving: float     #: ops saved over the remaining horizon
    switch_cost: float          #: predicted ops to convert state
    seconds_per_update: float   #: measured cost since the last check
    switched: bool              #: whether the session actually moved


class ReplanMonitor(SessionDriftMonitor):
    """Online re-planning layered on session drift monitoring.

    :func:`~repro.planner.plan_program` prices the plan grid **once**,
    from the inputs as they look at session open.  Long-lived sessions
    drift away from that snapshot — reachability-style fill-in raises
    density until CSR state costs more than dense BLAS would — so the
    opening plan quietly becomes the wrong one.  This monitor closes the
    loop: every ``check_every`` updates it re-measures the inputs'
    densities and the observed update rank *from the live session
    state*, re-prices the (strategy, backend) grid with setup treated
    as sunk (``rank_program(amortize_setup=False)``), and switches the
    session via :meth:`Session.with_plan
    <repro.runtime.session.Session.with_plan>` — a state *conversion*,
    never a rebuild — when the cheaper plan's projected savings over the
    remaining horizon exceed ``switch_margin`` times the conversion
    cost.  Numerical drift probing (inherited) runs at the same cadence.

    Parameters beyond :class:`SessionDriftMonitor`:

    probe_every:
        Cadence of the inherited *numerical* drift probe — a probe
        costs a full re-evaluation, so it runs on its own (typically
        sparser) schedule; ``check_every`` only paces re-planning,
        which needs densities, not ground truth.  ``None`` (default)
        disables numerical probing; :func:`open_session` maps a
        ``drift=`` request's ``check_every`` here.
    expected_refreshes:
        Expected total stream length; the remaining horizon prices
        projected savings.  ``None`` assumes the stream runs for at
        least as long again as it already has (the doubling heuristic —
        conservative early, increasingly confident later).
    switch_margin:
        Required ratio of projected savings to switch cost (hysteresis;
        2.0 means "the move must pay for itself twice over").
    calibration:
        Passed to :func:`~repro.planner.rank_program` (``"auto"`` loads
        the :mod:`repro.calibrate` cache).

    Measured per-update wall time is recorded on every
    :class:`ReplanEvent` (``seconds_per_update``), so drifting cost is
    visible alongside the model's predictions.

    Batching interaction: the monitor keeps a
    :class:`~repro.planner.plan.StreamSketch` of the stream it
    supervises and hands it to the planner as
    ``WorkloadStats.distinct_fraction``, so every re-planning pass
    re-prices each candidate batch width from the observed target skew
    (Table 4's knob).  Plan-derived widths
    (``open_session(batch="auto")``) are re-tuned in place between
    switches; user-forced widths are never overridden.  Pending batched
    updates always flush before a re-planning decision or switch (the
    flush-before-switch convention).
    """

    def __init__(
        self,
        session,
        check_every: int = 50,
        tolerance: float = 1e-6,
        action: str = "rebuild",
        rebuild: Callable[[], None] | None = None,
        probe_every: int | None = None,
        expected_refreshes: int | None = None,
        switch_margin: float = 2.0,
        calibration="auto",
    ):
        super().__init__(session, check_every, tolerance, action, rebuild)
        if switch_margin <= 0:
            raise ValueError("switch_margin must be positive")
        if probe_every is not None and probe_every < 1:
            raise ValueError("probe_every must be positive (or None)")
        self.probe_every = probe_every
        self._custom_rebuild = rebuild is not None
        self.expected_refreshes = (
            None if expected_refreshes is None else int(expected_refreshes)
        )
        self.switch_margin = float(switch_margin)
        self.calibration = calibration
        self.replans: list[ReplanEvent] = []
        self._window_seconds = 0.0
        self._window_updates = 0
        self._observed_rank = 1
        self._update_target: str | None = None
        from ..planner import StreamSketch

        #: Online distinct-target sketch of the observed update stream —
        #: the Zipf-awareness that re-prices each plan's batch width
        #: from what the stream actually hits (Table 4's knob).
        self.stream_sketch = StreamSketch()

    def apply_update(self, update) -> None:
        """Apply one update; probe drift and re-plan on schedule."""
        start = time.perf_counter()
        self.session.apply_update(update)
        self._window_seconds += time.perf_counter() - start
        self._window_updates += 1
        self._observed_rank = max(self._observed_rank, update.rank)
        self._update_target = update.target
        self.stream_sketch.observe(update)
        self.refreshes += 1
        if self.probe_every and self.refreshes % self.probe_every == 0:
            self.probe()
        if self.refreshes % self.check_every == 0:
            self.replan()

    def _remaining_horizon(self) -> int:
        if self.expected_refreshes is not None:
            return max(self.expected_refreshes - self.refreshes,
                       self.check_every)
        return max(self.refreshes, self.check_every)

    def _switch_cost(self, to_backend: str, to_nodes: int = 1) -> float:
        """Predicted ops to convert the session's state to ``to_backend``.

        Conversion touches what is stored now plus what the target
        representation will store (CSR -> dense materializes the full
        ``n x m`` image, not just the nonzeros), priced at each side's
        ``est_convert_passes_per_entry`` — a constant ``repro
        calibrate`` fits from timed CSR <-> dense conversions on this
        machine (the shipped class default, 2.0 passes, reproduces the
        pre-calibration fixed constant).  A same-backend switch
        (strategy only) shares the arrays outright — its cost is just
        trigger (re)compilation, charged as a few kernel calls.

        A node-count change adds one full pass over every maintained
        view: sharded state lives in shared-memory segments and must be
        copied out (or back in) when the worker fleet changes size —
        the flush-before-switch contract's data movement, priced so the
        IPC-tax fallback only fires when the stream will repay it.
        """
        from ..calibrate import calibrated

        old = calibrated(self.session.backend, self.calibration)
        new = calibrated(to_backend, self.calibration)
        views = self.session.views
        reshard = 0.0
        if to_nodes != getattr(self.session, "nodes", 1):
            for name in views.names():
                arr = views.get(name)
                rows, cols = old.shape(arr)
                reshard += old.est_entries((rows, cols), old.density(arr))
        if new.name == old.name:
            return 8.0 * new.est_call_overhead_flops + reshard
        cost = reshard
        for name in views.names():
            arr = views.get(name)
            rows, cols = old.shape(arr)
            density = old.density(arr)
            cost += (old.est_convert_passes_per_entry
                     * old.est_entries((rows, cols), density))
            cost += (new.est_convert_passes_per_entry
                     * new.est_entries((rows, cols), density))
        return cost

    def replan(self) -> ReplanEvent | None:
        """Re-price the plan grid from live state; switch if it pays.

        Returns the :class:`ReplanEvent` when the best plan differs from
        the running one (whether or not the switch was taken), ``None``
        when the current plan is still the winner.
        """
        from ..planner import WorkloadStats, rank_program

        session = self.session
        program = session.program
        # Pending batched updates must not skew the density measurement
        # (they have not reached the inputs yet) — and a switch decision
        # taken here may rebuild triggers, so land them first.
        session.flush()
        inputs = {name: session.views.get(name)
                  for name in program.input_names}
        remaining = self._remaining_horizon()
        stats = WorkloadStats(n=1, update_rank=self._observed_rank,
                              refresh_count=remaining,
                              distinct_fraction=self.stream_sketch,
                              batch_hint=session._batch_staleness)
        # Cells are ranked on the unbatched per-refresh cost even though
        # sessions batch: rank_program(price_batching=True) exists, but
        # the batched REEVAL estimate (one recompute amortized over the
        # whole batch) measures over-optimistic against the kernels, and
        # acting on it flips sessions into configurations that lose on
        # the wall clock.  The conservative form under-sells batching
        # equally across cells, which keeps the *comparison* honest.
        # Sharded sessions keep their node count on the grid so the
        # single-process fallback competes head-to-head (the monitor
        # can shrink the fleet, never grow it: switching *into* sharded
        # needs a fresh open_session).
        cur_nodes = getattr(session, "nodes", 1)
        node_grid = (1, cur_nodes) if cur_nodes > 1 else (1,)
        ranked = rank_program(
            program, inputs, stats=stats, dims=session.views.dims,
            update_input=self._update_target, calibration=self.calibration,
            amortize_setup=False, nodes=node_grid,
        )
        seconds = self._window_seconds / max(self._window_updates, 1)
        self._window_seconds = 0.0
        self._window_updates = 0

        current = next(
            (c for c in ranked
             if c.strategy == session.strategy
             and c.backend == session.backend.name
             and c.nodes == cur_nodes),
            None,
        )
        self._retune_batch(current)
        self._retune_partition(current)
        best = ranked[0]
        if current is None or (best.strategy, best.backend, best.nodes) == (
                current.strategy, current.backend, cur_nodes):
            return None

        saving = (current.predicted_time - best.predicted_time) * remaining
        cost = self._switch_cost(best.backend, to_nodes=best.nodes)
        switched = saving > self.switch_margin * cost
        event = ReplanEvent(self.refreshes, current.label, best.label,
                            saving, cost, seconds, switched)
        self.replans.append(event)
        if switched:
            self.session = session.with_plan(best, rank=self._observed_rank)
            self.plan = best
            if not self._custom_rebuild:
                # Rebind the default rebuild hook to the *new* session.
                self._rebuild = self.session.rebuild
        return event

    def _retune_batch(self, cell) -> None:
        """Re-price the session's batch width from live stream stats.

        Only plan-derived widths (``open_session(batch="auto")``) move;
        a user-forced width is a latency contract and stays put.  The
        freshly ranked ``cell`` for the *running* configuration carries
        the width the Zipf-aware estimator now recommends.

        Re-tuning moves *between* widths; it never switches an active
        batcher off.  The width-1 signal comes from the flop-linear
        refresh model, which cannot see the locality advantage of one
        rank-``r`` BLAS-3 pass over ``r`` rank-1 passes — measured,
        block propagation keeps winning at parity flops — so dropping
        a running pipeline would forfeit a real win for a modeled tie,
        and reads bound staleness either way.
        """
        session = self.session
        if cell is None or not getattr(session, "_auto_batch", False):
            return
        desired = cell.batch_size or 1
        if desired <= 1 or desired == session.batch_size:
            return
        session.set_batching(desired, max_staleness=session._batch_staleness,
                             auto=True)

    def _retune_partition(self, cell) -> None:
        """Re-tune heavy-light partitioning from live stream stats.

        Only plan-derived modes (``open_session(partition="auto")``)
        move; a user-forced mode stays put.  The freshly ranked
        ``cell`` for the running configuration carries the partition
        mode and heavy budget the skew-aware estimator
        (:func:`~repro.cost.estimate.heavy_light_unit_cost`, fed by
        this monitor's :attr:`stream_sketch`) now recommends: the
        split switches on when the observed stream turned skewed
        enough to pay, the budget follows the measured heavy mass, and
        the split switches back off when the skew evaporates.  Every
        re-configuration goes through :meth:`Session.set_partition
        <repro.runtime.session.Session.set_partition>`, which flushes
        pending state first (flush-before-switch); heavy-set
        *membership* re-tunes continuously inside the maintainer
        itself, seeded from this monitor's warm sketch.
        """
        session = self.session
        if cell is None or not getattr(session, "_auto_partition", False):
            return
        if cell.partition == "heavy-light":
            partitioner = session._partitioner
            budget = cell.heavy_budget
            if partitioner is None:
                session.set_partition(
                    "heavy-light", heavy_budget=budget,
                    max_staleness=session._batch_staleness, auto=True,
                    sketch=self.stream_sketch, observe=False,
                )
            elif budget is not None and budget != partitioner.budget:
                partitioner.retune(session, budget=budget)
        elif session._partitioner is not None:
            session.set_partition("uniform", auto=True)

    @property
    def switch_count(self) -> int:
        """How many times re-planning actually moved the session."""
        return sum(1 for event in self.replans if event.switched)


__all__ = [
    "DriftExceededError",
    "DriftMonitor",
    "DriftReport",
    "MaintainerWithDrift",
    "ReplanEvent",
    "ReplanMonitor",
    "SessionDriftMonitor",
]
