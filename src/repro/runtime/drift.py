"""Drift monitoring for long-lived incremental views.

Incremental maintenance compounds floating-point error: each refresh
adds a delta computed from already-slightly-stale views, so after many
updates the maintained result drifts from what re-evaluation would
produce.  The paper sidesteps this operationally (inputs are
"preconditioned appropriately for numerical stability"); a production
deployment needs a policy.  :class:`DriftMonitor` wraps any maintainer
exposing ``refresh(u, v)`` plus a drift probe, and re-validates every
``check_every`` refreshes:

* drift within ``tolerance``   -> nothing happens (the common case);
* drift beyond ``tolerance``   -> the configured action runs —
  ``"rebuild"`` (call the maintainer's rebuild hook and keep going) or
  ``"raise"`` (:class:`DriftExceededError` for caller-controlled
  recovery).

Probes are cheap relative to their period: one re-evaluation amortized
over ``check_every`` refreshes, the same trade Table 3 makes explicit
for memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np


class MaintainerWithDrift(Protocol):
    """What the monitor needs: refresh plus a drift probe."""

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None: ...

    def revalidate(self) -> float: ...


class DriftExceededError(RuntimeError):
    """Raised by the ``"raise"`` policy when drift passes tolerance."""

    def __init__(self, drift: float, tolerance: float, refreshes: int):
        super().__init__(
            f"view drift {drift:.3e} exceeded tolerance {tolerance:.3e} "
            f"after {refreshes} refreshes"
        )
        self.drift = drift
        self.tolerance = tolerance
        self.refreshes = refreshes


@dataclass
class DriftReport:
    """One probe outcome."""

    refreshes: int
    drift: float
    rebuilt: bool


class DriftMonitor:
    """Wraps a maintainer with a periodic re-validation policy.

    ``rebuild`` is a zero-argument callable returning a *fresh*
    maintainer built from current ground truth; it is required for the
    ``"rebuild"`` action.  The monitor delegates attribute access to
    the wrapped maintainer, so ``monitor.result()`` etc. keep working.
    """

    def __init__(
        self,
        maintainer: MaintainerWithDrift,
        check_every: int = 100,
        tolerance: float = 1e-6,
        action: str = "raise",
        rebuild: Callable[[], MaintainerWithDrift] | None = None,
    ):
        if check_every < 1:
            raise ValueError("check_every must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if action not in ("raise", "rebuild"):
            raise ValueError(f"unknown action {action!r}")
        if action == "rebuild" and rebuild is None:
            raise ValueError("action='rebuild' needs a rebuild callable")
        self.maintainer = maintainer
        self.check_every = check_every
        self.tolerance = tolerance
        self.action = action
        self._rebuild = rebuild
        self.refreshes = 0
        self.reports: list[DriftReport] = []

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Refresh the wrapped maintainer; probe on schedule."""
        self.maintainer.refresh(u, v)
        self.refreshes += 1
        if self.refreshes % self.check_every == 0:
            self.probe()

    def probe(self) -> DriftReport:
        """Re-validate now, applying the policy if drift is excessive."""
        drift = self.maintainer.revalidate()
        rebuilt = False
        if drift > self.tolerance:
            if self.action == "raise":
                report = DriftReport(self.refreshes, drift, False)
                self.reports.append(report)
                raise DriftExceededError(drift, self.tolerance, self.refreshes)
            self.maintainer = self._rebuild()
            rebuilt = True
        report = DriftReport(self.refreshes, drift, rebuilt)
        self.reports.append(report)
        return report

    @property
    def last_drift(self) -> float | None:
        """Drift at the most recent probe (None before the first)."""
        return self.reports[-1].drift if self.reports else None

    @property
    def rebuild_count(self) -> int:
        """How many times the policy rebuilt the maintainer."""
        return sum(1 for report in self.reports if report.rebuilt)

    def __getattr__(self, name: str):
        if name == "maintainer":
            # __init__ hasn't run (copy/pickle): avoid infinite recursion.
            raise AttributeError(name)
        return getattr(self.maintainer, name)


class SessionDriftMonitor:
    """Drift monitoring for sessions (the ``apply_update`` interface).

    The session counterpart of :class:`DriftMonitor`: wraps any object
    exposing ``apply_update(update)`` plus ``revalidate()`` (both
    session strategies do) and probes every ``check_every`` updates.
    Unlike maintainers, a session can recover *in place* — its current
    inputs are ground truth — so the default ``"rebuild"`` action calls
    the session's :meth:`~repro.runtime.session.Session.rebuild`, which
    re-evaluates every view from the current inputs; a custom
    ``rebuild`` callable overrides that.

    Attribute access falls through to the wrapped session, so
    ``monitor.output()``, ``monitor["V"]`` etc. keep working.
    """

    def __init__(
        self,
        session,
        check_every: int = 100,
        tolerance: float = 1e-6,
        action: str = "rebuild",
        rebuild: Callable[[], None] | None = None,
    ):
        if check_every < 1:
            raise ValueError("check_every must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if action not in ("raise", "rebuild"):
            raise ValueError(f"unknown action {action!r}")
        self.session = session
        self.check_every = check_every
        self.tolerance = tolerance
        self.action = action
        self._rebuild = rebuild if rebuild is not None else session.rebuild
        self.refreshes = 0
        self.reports: list[DriftReport] = []

    def apply_update(self, update) -> None:
        """Apply one update through the session; probe on schedule."""
        self.session.apply_update(update)
        self.refreshes += 1
        if self.refreshes % self.check_every == 0:
            self.probe()

    def apply_updates(self, updates) -> None:
        """Apply a sequence of updates, probing on schedule."""
        for update in updates:
            self.apply_update(update)

    def probe(self) -> DriftReport:
        """Re-validate now, applying the policy if drift is excessive."""
        drift = self.session.revalidate()
        rebuilt = False
        if drift > self.tolerance:
            if self.action == "raise":
                report = DriftReport(self.refreshes, drift, False)
                self.reports.append(report)
                raise DriftExceededError(drift, self.tolerance, self.refreshes)
            self._rebuild()
            rebuilt = True
        report = DriftReport(self.refreshes, drift, rebuilt)
        self.reports.append(report)
        return report

    @property
    def last_drift(self) -> float | None:
        """Drift at the most recent probe (None before the first)."""
        return self.reports[-1].drift if self.reports else None

    @property
    def rebuild_count(self) -> int:
        """How many times the policy rebuilt the views."""
        return sum(1 for report in self.reports if report.rebuilt)

    def __getitem__(self, name: str):
        return self.session[name]

    def __getattr__(self, name: str):
        if name == "session":
            # __init__ hasn't run (copy/pickle): avoid infinite recursion.
            raise AttributeError(name)
        return getattr(self.session, name)


__all__ = [
    "DriftExceededError",
    "DriftMonitor",
    "DriftReport",
    "MaintainerWithDrift",
    "SessionDriftMonitor",
]
