"""Materialized view storage.

A :class:`ViewStore` holds the numeric state of one IVM session: input
matrices and every materialized view, plus the binding of symbolic
dimension names to concrete sizes.  It is deliberately dumb — a typed
dict with copy-on-write snapshots and a memory meter — so the session
logic stays readable.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np


class ViewStore:
    """Mutable mapping ``name -> float64 ndarray`` with dimension bindings."""

    def __init__(self, dims: Mapping[str, int] | None = None):
        self._arrays: dict[str, np.ndarray] = {}
        self.dims: dict[str, int] = dict(dims or {})

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self) -> Iterator[str]:
        return iter(self._arrays)

    def names(self) -> list[str]:
        """All stored matrix names, in insertion order."""
        return list(self._arrays)

    def get(self, name: str) -> np.ndarray:
        """The stored array (not a copy; callers must not mutate)."""
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(f"no view or input named {name!r}") from None

    def set(self, name: str, value: np.ndarray) -> None:
        """Store (or replace) an array, normalizing to 2-D float64."""
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(f"view {name!r} must be 2-D, got ndim={arr.ndim}")
        self._arrays[name] = arr

    def add_in_place(self, name: str, delta: np.ndarray) -> None:
        """Apply ``view += delta`` (the trigger's update statement)."""
        current = self.get(name)
        if current.shape != delta.shape:
            raise ValueError(
                f"update shape mismatch on {name!r}: {current.shape} += {delta.shape}"
            )
        self._arrays[name] = current + delta

    def as_env(self) -> dict[str, np.ndarray]:
        """A shallow dict view usable as an executor environment."""
        return dict(self._arrays)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Deep copy of all arrays (for revalidation / rollback)."""
        return {name: arr.copy() for name, arr in self._arrays.items()}

    def restore(self, snapshot: Mapping[str, np.ndarray]) -> None:
        """Restore a previously taken snapshot (copies defensively)."""
        self._arrays = {name: np.array(arr) for name, arr in snapshot.items()}

    def total_bytes(self, names: Iterator[str] | None = None) -> int:
        """Memory footprint of the selected (default: all) arrays."""
        selected = list(names) if names is not None else list(self._arrays)
        return sum(self._arrays[name].nbytes for name in selected)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}{v.shape}" for k, v in self._arrays.items())
        return f"ViewStore({items})"
