"""Materialized view storage.

A :class:`ViewStore` holds the numeric state of one IVM session: input
matrices and every materialized view, plus the binding of symbolic
dimension names to concrete sizes.  It is deliberately dumb — a typed
dict with copy-on-write snapshots and a memory meter — so the session
logic stays readable.

Arrays are normalized through the session's execution backend, so a
sparse-backend session keeps low-density inputs in CSR form end to end
(see :mod:`repro.backends`).
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from ..backends import get_backend


class ViewStore:
    """Mutable mapping ``name -> 2-D matrix`` with dimension bindings."""

    def __init__(self, dims: Mapping[str, int] | None = None, backend=None):
        self.backend = get_backend(backend)
        self._arrays: dict[str, np.ndarray] = {}
        self.dims: dict[str, int] = dict(dims or {})

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self) -> Iterator[str]:
        return iter(self._arrays)

    def names(self) -> list[str]:
        """All stored matrix names, in insertion order."""
        return list(self._arrays)

    def get(self, name: str) -> np.ndarray:
        """The stored matrix (not a copy; callers must not mutate)."""
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(f"no view or input named {name!r}") from None

    def get_dense(self, name: str) -> np.ndarray:
        """The stored matrix materialized to a dense float64 ndarray."""
        return self.backend.materialize(self.get(name))

    def set(self, name: str, value: np.ndarray) -> None:
        """Store (or replace) a matrix, normalized to the backend's form."""
        if self.backend.is_native(value) and not isinstance(value, np.ndarray):
            self._arrays[name] = value
            return
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(f"view {name!r} must be 2-D, got ndim={arr.ndim}")
        self._arrays[name] = self.backend.asarray(arr)

    def add_in_place(self, name: str, delta: np.ndarray) -> None:
        """Apply ``view += delta`` (the trigger's update statement)."""
        current = self.get(name)
        if self.backend.shape(current) != self.backend.shape(delta):
            raise ValueError(
                f"update shape mismatch on {name!r}: "
                f"{self.backend.shape(current)} += {self.backend.shape(delta)}"
            )
        self._arrays[name] = self.backend.add(current, delta)

    def add_outer(self, name: str, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``view += u @ v.T`` without materializing the product.

        Copy-on-write: callers may hold references handed out by
        :meth:`get`, so the dense in-place kernel runs on a fresh copy.
        """
        current = self.get(name)
        rows, cols = self.backend.shape(current)
        if (
            u.shape[0] != rows
            or v.shape[0] != cols
            or u.shape[1] != v.shape[1]
        ):
            raise ValueError(
                f"update shape mismatch on {name!r}: ({rows}, {cols}) += "
                f"{u.shape} @ {v.shape}'"
            )
        if isinstance(current, np.ndarray):
            current = current.copy()
        self._arrays[name] = self.backend.add_outer(current, u, v)

    def converted(self, backend) -> "ViewStore":
        """This store's state re-normalized under another backend.

        The cross-backend hand-off online re-planning relies on: every
        stored matrix is carried over *by value* — CSR state densifies
        through :meth:`~repro.backends.base.Backend.materialize`, dense
        state re-enters the target backend's representation policy (the
        session analog of ``BlockMatrix.from_sparse`` / densify in the
        distributed layer) — so no view is re-evaluated.  Cost is one
        pass over stored entries, not a rebuild.  Arrays already native
        to the target backend are shared, not copied (the caller is
        expected to drop the old store).
        """
        be = get_backend(backend)
        store = ViewStore(self.dims, backend=be)
        for name, arr in self._arrays.items():
            if be.is_native(arr):
                store._arrays[name] = be.asarray(arr)
            else:
                store._arrays[name] = be.asarray(self.backend.materialize(arr))
        return store

    def as_env(self) -> dict[str, np.ndarray]:
        """A shallow dict view usable as an executor environment."""
        return dict(self._arrays)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Deep copy of all arrays (for revalidation / rollback)."""
        return {name: arr.copy() for name, arr in self._arrays.items()}

    def restore(self, snapshot: Mapping[str, np.ndarray]) -> None:
        """Restore a previously taken snapshot (copies defensively)."""
        self._arrays = {
            name: self.backend.asarray(arr, copy=True)
            for name, arr in snapshot.items()
        }

    def total_bytes(self, names: Iterator[str] | None = None) -> int:
        """Memory footprint of the selected (default: all) arrays."""
        selected = list(names) if names is not None else list(self._arrays)
        return sum(self.backend.nbytes(self._arrays[name]) for name in selected)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}{v.shape}" for k, v in self._arrays.items())
        return f"ViewStore({items})"
