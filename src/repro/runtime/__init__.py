"""Single-node NumPy backend: executor, views, update events, IVM sessions."""

from .batching import BatchStats, SessionBatcher
from .drift import (
    DriftExceededError,
    DriftMonitor,
    DriftReport,
    ReplanEvent,
    ReplanMonitor,
    SessionDriftMonitor,
)
from .executor import EvaluationError, evaluate, resolve_dim
from .heavylight import (
    HeavyLightMaintainer,
    HeavyLightRefresher,
    HeavyLightStats,
)
from .serving import (
    FlushOnReadServer,
    MaintainerEngine,
    ServerClosedError,
    ServerStats,
    SessionEngine,
    Snapshot,
    ViewServer,
    WriterFailedError,
    run_load,
)
from .session import (
    IVMSession,
    ReevalSession,
    Session,
    ShardedChainSession,
    open_session,
)
from .updates import (
    FactoredUpdate,
    batch_row_update,
    cell_update,
    column_update,
    row_update,
)
from .views import ViewStore
from .workspace import Workspace

__all__ = [
    "BatchStats",
    "DriftExceededError",
    "DriftMonitor",
    "DriftReport",
    "EvaluationError",
    "FactoredUpdate",
    "FlushOnReadServer",
    "HeavyLightMaintainer",
    "HeavyLightRefresher",
    "HeavyLightStats",
    "IVMSession",
    "MaintainerEngine",
    "ReevalSession",
    "ReplanEvent",
    "ReplanMonitor",
    "ServerClosedError",
    "ServerStats",
    "Session",
    "SessionBatcher",
    "SessionDriftMonitor",
    "SessionEngine",
    "ShardedChainSession",
    "Snapshot",
    "ViewServer",
    "ViewStore",
    "Workspace",
    "WriterFailedError",
    "run_load",
    "batch_row_update",
    "cell_update",
    "column_update",
    "evaluate",
    "open_session",
    "resolve_dim",
    "row_update",
]
