"""Single-node NumPy backend: executor, views, update events, IVM sessions."""

from .batching import BatchStats, SessionBatcher
from .checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    Checkpointer,
    load_checkpoint,
    restore_session,
    write_checkpoint,
)
from .drift import (
    DriftExceededError,
    DriftMonitor,
    DriftReport,
    ReplanEvent,
    ReplanMonitor,
    SessionDriftMonitor,
)
from .executor import EvaluationError, evaluate, resolve_dim
from .heavylight import (
    HeavyLightMaintainer,
    HeavyLightRefresher,
    HeavyLightStats,
)
from .serving import (
    FlushOnReadServer,
    IngressOverflowError,
    IngressTimeoutError,
    MaintainerEngine,
    OVERLOAD_POLICIES,
    ServerClosedError,
    ServerStats,
    SessionEngine,
    Snapshot,
    ViewServer,
    WriterFailedError,
    run_load,
)
from .session import (
    IVMSession,
    ReevalSession,
    Session,
    ShardedChainSession,
    open_session,
)
from .updates import (
    FactoredUpdate,
    InvalidUpdateError,
    batch_row_update,
    cell_update,
    column_update,
    row_update,
)
from .views import ViewStore
from .workspace import Workspace

__all__ = [
    "BatchStats",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointManager",
    "Checkpointer",
    "DriftExceededError",
    "DriftMonitor",
    "DriftReport",
    "EvaluationError",
    "FactoredUpdate",
    "FlushOnReadServer",
    "HeavyLightMaintainer",
    "HeavyLightRefresher",
    "HeavyLightStats",
    "IVMSession",
    "IngressOverflowError",
    "IngressTimeoutError",
    "InvalidUpdateError",
    "OVERLOAD_POLICIES",
    "MaintainerEngine",
    "ReevalSession",
    "ReplanEvent",
    "ReplanMonitor",
    "ServerClosedError",
    "ServerStats",
    "Session",
    "SessionBatcher",
    "SessionDriftMonitor",
    "SessionEngine",
    "ShardedChainSession",
    "Snapshot",
    "ViewServer",
    "ViewStore",
    "Workspace",
    "WriterFailedError",
    "run_load",
    "batch_row_update",
    "cell_update",
    "column_update",
    "evaluate",
    "load_checkpoint",
    "open_session",
    "restore_session",
    "resolve_dim",
    "row_update",
    "write_checkpoint",
]
