"""Heavy-light adaptive maintenance for skewed update streams.

Uniform batching (:mod:`repro.runtime.batching`) exploits skew only
through batch *width*: a Zipf-skewed window of ``m`` updates compacts
below rank ``m``, but every distinct target a window touches is
propagated again in the next window.  The heavy-light split —
Abo-Khamis et al., "Maintaining Queries under Updates Using Heavy-Light
Partitioning of the Input Relations" — exploits it structurally, per
*target row*:

* **Heavy hitters** (a small set chosen adaptively from
  :class:`~repro.planner.plan.StreamSketch` occupancy estimates) merge
  eagerly, in place, into preallocated dense accumulator rows: a hit on
  heavy row ``i`` with factor column ``u = a e_i`` accumulates ``a v``
  into that row's slot — ``O(cols)``, exact, zero marginal rank.  The
  heavy block stays pending across light folds and is propagated
  through the session's fused/in-place kernel path only on read,
  ``max_staleness``, or flush-before-switch — so the bulk of a skewed
  stream's mass costs amortized ``O(budget)`` refresh rank no matter
  how many hits it absorbs.
* **The light tail** defers into a low-rank pending block: indicator
  columns merge by row the same exact way (a dict of accumulator
  rows), while dense factor columns stack into a
  :class:`~repro.delta.batch.BatchCollector` and compact by QR+SVD.
  The tail folds in on read, when its pending rank grows past
  ``rank_bound``, or on flush-before-switch.  Tail repeats therefore
  compact across the whole deferral window — far longer than any
  uniform batch width — not just within one batch.

Exactness is by linearity: every trigger is exact for a factored update
against current state (the PR 5 invariant), additive updates to one
input commute, and merging ``a e_i v1' + b e_i v2'`` into
``e_i (a v1 + b v2)'`` is algebra, not approximation — so splitting a
stream into heavy and light blocks and folding them in any order yields
the state of unit-at-a-time application up to float summation order
(verified by the differential harness in ``tests/test_heavylight.py``).
All the :mod:`~repro.runtime.batching` flush policies are preserved:
reads fold everything first, a target change folds, ``max_staleness``
bounds the pending update count, and :meth:`Session.with_plan
<repro.runtime.session.Session.with_plan>` folds before any switch.

The split is priced, not hard-coded:
:func:`repro.cost.estimate.heavy_light_unit_cost` charges eager cost on
the sketch's heavy mass and deferred-fold cost on the tail, the planner
surfaces the choice as :attr:`MaintenancePlan.partition
<repro.planner.plan.MaintenancePlan.partition>`, and
:class:`~repro.runtime.drift.ReplanMonitor` re-tunes the mode and
budget mid-stream.  Heavy-set *membership* re-tunes continuously inside
the maintainer — a membership change transfers accumulator rows between
tiers in ``O(cols)`` per row, with no session refresh at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..delta.batch import DEFAULT_RTOL, BatchCollector
from .updates import FactoredUpdate

#: Default heavy-set capacity (eagerly maintained accumulator rows).
DEFAULT_HEAVY_BUDGET = 16
#: Default pending-rank bound of the light tail: the tail folds into
#: the session when its distinct merged rows (plus compacted dense
#: columns) reach this rank.
DEFAULT_RANK_BOUND = 64
#: Updates between adaptive heavy-set membership re-checks.
DEFAULT_RETUNE_EVERY = 64
#: Candidate heavy budgets the planner prices
#: (:func:`repro.planner.planner._recommend_partition`).
HEAVY_BUDGET_GRID = (4, 8, 16, 32)


@dataclass
class HeavyLightStats:
    """Achieved split/merge counters of one heavy-light maintainer."""

    #: Update events absorbed through the partitioned path.
    updates: int = 0
    #: Factor columns merged eagerly into heavy accumulator rows.
    heavy_hits: int = 0
    #: Factor columns deferred into the light pending block.
    light_hits: int = 0
    #: Session refreshes actually issued (heavy, light, or combined).
    folds: int = 0
    #: Total rank of folded heavy blocks (bounded by budget per fold).
    heavy_folded_rank: int = 0
    #: Total pending rank of folded light blocks.
    light_folded_rank: int = 0
    #: QR+SVD compactions of stacked dense (non-indicator) columns.
    compactions: int = 0
    #: Heavy-set membership changes applied by :meth:`retune`.
    retunes: int = 0
    #: Spectral mass dropped by rank_cap truncation (0.0 normally).
    dropped_mass: float = 0.0

    @property
    def amortization(self) -> float:
        """Absorbed columns per propagated rank (1.0 = nothing saved)."""
        propagated = self.heavy_folded_rank + self.light_folded_rank
        absorbed = self.heavy_hits + self.light_hits
        if propagated == 0:
            return float(absorbed) if absorbed else 1.0
        return absorbed / propagated

    def as_dict(self) -> dict:
        """Counters as a JSON-ready dict (the bench/CLI schema)."""
        return {
            "updates": self.updates,
            "heavy_hits": self.heavy_hits,
            "light_hits": self.light_hits,
            "folds": self.folds,
            "heavy_folded_rank": self.heavy_folded_rank,
            "light_folded_rank": self.light_folded_rank,
            "compactions": self.compactions,
            "retunes": self.retunes,
            "amortization": self.amortization,
            "dropped_mass": self.dropped_mass,
        }


class HeavyLightMaintainer:
    """The heavy-light state a session routes ``apply_update`` through.

    Presents the same surface as
    :class:`~repro.runtime.batching.SessionBatcher` (``absorb`` /
    ``flush`` / ``stats`` / ``target``) so sessions treat either
    interchangeably.  ``budget`` caps the heavy set, ``rank_bound`` the
    light tail's pending rank, ``retune_every`` the membership
    re-check cadence, ``max_staleness`` the total pending update count
    (a read-lag bound, like the batcher's).  ``sketch`` lets a caller —
    :class:`~repro.runtime.drift.ReplanMonitor` — share an already-warm
    occupancy sketch so the heavy set is chosen from history rather
    than cold.

    Only *indicator-like* factor columns (exactly one nonzero ``u``
    entry, i.e. row updates) merge into accumulator rows — heavy or
    light.  Dense-``u`` columns always stack into the QR+SVD collector,
    whatever rows they touch: spreading one across accumulator rows
    would be wrong, and compaction is what exploits their structure.
    """

    def __init__(
        self,
        budget: int = DEFAULT_HEAVY_BUDGET,
        rank_bound: int = DEFAULT_RANK_BOUND,
        retune_every: int = DEFAULT_RETUNE_EVERY,
        max_staleness: int | None = None,
        rtol: float = DEFAULT_RTOL,
        backend=None,
        sketch=None,
        observe: bool = True,
    ):
        from ..planner.plan import StreamSketch

        if budget < 1:
            raise ValueError("heavy budget must be >= 1")
        if rank_bound < 1:
            raise ValueError("rank_bound must be >= 1")
        if retune_every < 1:
            raise ValueError("retune_every must be >= 1")
        if max_staleness is not None and max_staleness < 1:
            raise ValueError("max_staleness must be positive (or None)")
        self.budget = int(budget)
        self.rank_bound = int(rank_bound)
        self.retune_every = int(retune_every)
        self.max_staleness = max_staleness
        self.rtol = rtol
        self.sketch = sketch if sketch is not None else StreamSketch()
        #: False when the sketch is fed externally (a ReplanMonitor
        #: observes every update it supervises): the maintainer then
        #: reads occupancy without double-counting the stream.
        self.observe_stream = bool(observe)
        #: Dense (non-indicator) light columns, QR+SVD-compacted.
        self.collector = BatchCollector(rtol=rtol, backend=backend)
        self.target: str | None = None
        self.stats = HeavyLightStats()
        self.pending_updates = 0
        self._rows_n: int | None = None
        self._cols: int | None = None
        self._slot_rows: list[int] = []
        self._heavy_slots: dict[int, int] = {}
        self._heavy_block: np.ndarray | None = None
        self._heavy_touched = np.zeros(0, dtype=bool)
        #: Light indicator merges: row -> accumulated ``v`` row.
        self._light_acc: dict[int, np.ndarray] = {}
        self._since_retune = 0

    @property
    def heavy_rows(self) -> tuple[int, ...]:
        """Current heavy-set membership (row keys, slot order)."""
        return tuple(self._slot_rows)

    @property
    def light_rank(self) -> int:
        """Pending rank of the light tail (merged rows + stacked cols)."""
        return len(self._light_acc) + self.collector.pending_width

    @property
    def _compact_trigger(self) -> int:
        """Stacked dense width at which an in-place compaction fires."""
        return max(2 * self.rank_bound, 8)

    def absorb(self, session, update) -> None:
        """Split one update for ``session``, folding per policy."""
        session._check_update_target(update)
        if self.target is not None and update.target != self.target:
            # Cross-input ordering is preserved by construction: one
            # pending generation never spans two targets.
            self.flush(session)
        self.target = update.target
        u = np.asarray(update.u_block)
        v = np.asarray(update.v_block)
        self._ensure_shape(u.shape[0], v.shape[0])
        dense_cols: list[int] = []
        for col in range(u.shape[1]):
            column = u[:, col]
            nonzeros = np.flatnonzero(column)
            if nonzeros.size == 1:
                row = int(nonzeros[0])
                if self.observe_stream:
                    self.sketch.observe_key(row)
                scaled = column[row] * v[:, col]
                slot = self._heavy_slots.get(row)
                if slot is not None:
                    # Eager heavy merge: a e_i v' lands as row_i += a v.
                    self._heavy_block[slot] += scaled
                    self._heavy_touched[slot] = True
                    self.stats.heavy_hits += 1
                else:
                    acc = self._light_acc.get(row)
                    if acc is None:
                        self._light_acc[row] = scaled
                    else:
                        acc += scaled
                    self.stats.light_hits += 1
                continue
            if column.size and self.observe_stream:
                self.sketch.observe_key(int(np.argmax(np.abs(column))))
            dense_cols.append(col)
        if dense_cols:
            self.collector.add(u[:, dense_cols], v[:, dense_cols])
            self.stats.light_hits += len(dense_cols)
        self.stats.updates += 1
        self.pending_updates += 1
        if self.collector.pending_width >= self._compact_trigger:
            self._compact_dense()
        if self.light_rank >= self.rank_bound:
            self._fold_light(session)
        if (self.max_staleness is not None
                and self.pending_updates >= self.max_staleness):
            self.flush(session)
        self._since_retune += 1
        if self._since_retune >= self.retune_every:
            self.retune()

    def retune(self, session=None, budget: int | None = None) -> bool:
        """Re-derive heavy-set membership from the sketch.

        Called on cadence from :meth:`absorb` and by
        :class:`~repro.runtime.drift.ReplanMonitor` (which may also
        move ``budget``).  A membership change *transfers* accumulated
        rows between tiers — a demoted heavy row moves into the light
        merge dict, a promoted light row moves into its new accumulator
        slot — so no session refresh happens and nothing is lost.
        ``session`` is accepted for interface symmetry but not needed.
        Returns whether membership changed.
        """
        if budget is not None:
            if budget < 1:
                raise ValueError("heavy budget must be >= 1")
            self.budget = int(budget)
        self._since_retune = 0
        desired = self.sketch.heavy_keys(self.budget)
        if set(desired) == set(self._heavy_slots):
            return False
        # Demote: pull accumulated heavy rows out before reseeding.
        demoted: dict[int, np.ndarray] = {}
        if self._heavy_block is not None:
            for row, slot in self._heavy_slots.items():
                if self._heavy_touched[slot]:
                    demoted[row] = self._heavy_block[slot].copy()
        self._seed_heavy(desired)
        for row, vec in demoted.items():
            slot = self._heavy_slots.get(row)
            if slot is not None:
                self._heavy_block[slot] = vec
                self._heavy_touched[slot] = True
            else:
                acc = self._light_acc.get(row)
                if acc is None:
                    self._light_acc[row] = vec
                else:
                    acc += vec
        # Promote: newly-heavy rows adopt their light accumulation.
        if self._heavy_block is not None:
            for row in list(self._light_acc):
                slot = self._heavy_slots.get(row)
                if slot is not None:
                    self._heavy_block[slot] += self._light_acc.pop(row)
                    self._heavy_touched[slot] = True
        self.stats.retunes += 1
        return True

    def flush(self, session) -> tuple[int, int, float]:
        """Fold everything pending into ``session`` as one refresh.

        Returns ``(pending_updates, folded_rank, dropped)`` mirroring
        :meth:`SessionBatcher.flush
        <repro.runtime.batching.SessionBatcher.flush>`; an idle
        maintainer is a no-op.  Heavy and light blocks hstack into a
        single factored update so REEVAL sessions re-materialize once,
        not twice.
        """
        heavy = self._take_heavy()
        light = self._take_light()
        pending, self.pending_updates = self.pending_updates, 0
        target, self.target = self.target, None
        # The next generation may address a differently-shaped target:
        # drop the (drained) accumulator so it reallocates lazily.
        self._rows_n = self._cols = None
        self._heavy_block = None
        self._heavy_touched = np.zeros(len(self._slot_rows), dtype=bool)
        blocks = [b for b in (heavy, light) if b is not None]
        if not blocks:
            return 0, 0, 0.0
        left = np.hstack([u for u, _, _ in blocks])
        right = np.hstack([v for _, v, _ in blocks])
        dropped = sum(d for _, _, d in blocks)
        session._apply_now(FactoredUpdate(target, left, right))
        self.stats.folds += 1
        self.stats.dropped_mass += dropped
        return pending, left.shape[1], dropped

    # -- internals ----------------------------------------------------

    def _ensure_shape(self, rows_n: int, cols: int) -> None:
        if self._rows_n is None:
            self._rows_n, self._cols = rows_n, cols
            if self._slot_rows and self._heavy_block is None:
                self._alloc_heavy()
        elif rows_n != self._rows_n or cols != self._cols:
            raise ValueError(
                f"update shape ({rows_n}, {cols}) does not match pending "
                f"generation ({self._rows_n}, {self._cols})")

    def _alloc_heavy(self) -> None:
        self._heavy_block = np.zeros((len(self._slot_rows), self._cols))
        self._heavy_touched = np.zeros(len(self._slot_rows), dtype=bool)

    def _seed_heavy(self, rows) -> None:
        self._slot_rows = [int(row) for row in rows]
        self._heavy_slots = {row: i for i, row in enumerate(self._slot_rows)}
        self._heavy_block = None
        self._heavy_touched = np.zeros(len(self._slot_rows), dtype=bool)
        if self._cols is not None and self._slot_rows:
            self._alloc_heavy()

    def _take_heavy(self):
        """Drain the heavy accumulator as ``(u, v, dropped)`` factors."""
        if self._heavy_block is None or not self._heavy_touched.any():
            return None
        slots = np.flatnonzero(self._heavy_touched)
        rows = [self._slot_rows[s] for s in slots]
        u = np.zeros((self._rows_n, slots.size))
        u[rows, np.arange(slots.size)] = 1.0
        v = np.ascontiguousarray(self._heavy_block[slots].T)
        self._heavy_block[slots] = 0.0
        self._heavy_touched[:] = False
        self.stats.heavy_folded_rank += slots.size
        return u, v, 0.0

    def _take_light(self):
        """Drain the light tail as ``(L, R, dropped)`` factors."""
        blocks = []
        if self._light_acc:
            rows = list(self._light_acc)
            u = np.zeros((self._rows_n, len(rows)))
            u[rows, np.arange(len(rows))] = 1.0
            v = np.column_stack([self._light_acc[row] for row in rows])
            self._light_acc.clear()
            blocks.append((u, v, 0.0))
        if len(self.collector):
            left, right, dropped = self.collector.compacted()
            self.collector.clear()
            if left.shape[1]:
                blocks.append((left, right, dropped))
        if not blocks:
            return None
        left = np.hstack([u for u, _, _ in blocks])
        right = np.hstack([v for _, v, _ in blocks])
        dropped = sum(d for _, _, d in blocks)
        self.stats.light_folded_rank += left.shape[1]
        return left, right, dropped

    def _compact_dense(self) -> None:
        """Squeeze the stacked dense columns in place (no session touch)."""
        left, right, dropped = self.collector.compacted()
        self.collector.clear()
        if left.shape[1]:
            self.collector.add(left, right)
        self.stats.compactions += 1
        self.stats.dropped_mass += dropped

    def _fold_light(self, session) -> None:
        light = self._take_light()
        if light is None:
            return
        left, right, dropped = light
        session._apply_now(FactoredUpdate(self.target, left, right))
        self.stats.folds += 1
        self.stats.dropped_mass += dropped


class _RefresherAdapter:
    """Session-shaped shim over a plain ``refresh(u, v)`` maintainer.

    With ``transpose`` the pending state was accumulated in transposed
    orientation (see :class:`HeavyLightRefresher`), so the folded
    factors swap back on the way out: ``P = L R'`` pending means the
    real delta is ``P' = R L'``.
    """

    __slots__ = ("maintainer", "transpose")

    def __init__(self, maintainer, transpose: bool = False):
        self.maintainer = maintainer
        self.transpose = transpose

    def _check_update_target(self, update) -> None:
        pass

    def _apply_now(self, update) -> None:
        if self.transpose:
            self.maintainer.refresh(update.v_block, update.u_block)
        else:
            self.maintainer.refresh(update.u_block, update.v_block)


class HeavyLightRefresher:
    """Heavy-light front end for any ``refresh(u, v)`` maintainer.

    The driver-level analog of
    :class:`~repro.delta.batch.BatchedRefresher`: analytics maintainers
    (pagerank, markov, OLS, ...) expose ``refresh(u, v)``, and this
    wrapper routes those updates through a
    :class:`HeavyLightMaintainer` — heavy rows merge eagerly, the tail
    defers and compacts.  Reads stay fresh: any attribute access that
    falls through to the wrapped maintainer (``result()``, ``ranks``,
    ``revalidate()``, ...) folds everything first, so a caller can
    never observe state that lags the updates it already issued.

    ``transpose=True`` keys the split on the **right** factor instead:
    drivers like :class:`~repro.analytics.pagerank.IncrementalPageRank`
    issue ``refresh(delta, e_s)`` — a dense left factor times a source
    *column* indicator — so the repeated hot targets live in ``v``, not
    ``u``.  The wrapper then accumulates the transposed pending block
    (``sum of e_s delta'``, merged by source) and swaps the factors
    back when folding, which is exact: ``(L R')' = R L'``.
    """

    def __init__(
        self,
        maintainer,
        budget: int = DEFAULT_HEAVY_BUDGET,
        rank_bound: int = DEFAULT_RANK_BOUND,
        retune_every: int = DEFAULT_RETUNE_EVERY,
        max_staleness: int | None = None,
        rtol: float = DEFAULT_RTOL,
        backend=None,
        transpose: bool = False,
    ):
        self.maintainer = maintainer
        self.transpose = bool(transpose)
        self._adapter = _RefresherAdapter(maintainer, transpose=self.transpose)
        self.splitter = HeavyLightMaintainer(
            budget=budget, rank_bound=rank_bound, retune_every=retune_every,
            max_staleness=max_staleness, rtol=rtol, backend=backend,
        )

    @property
    def stats(self) -> HeavyLightStats:
        """The wrapped maintainer's hit/fold counters."""
        return self.splitter.stats

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Split one factored update; folds fire per policy."""
        if self.transpose:
            u, v = v, u
        self.splitter.absorb(self._adapter, FactoredUpdate("input", u, v))

    def flush(self) -> tuple[int, int, float]:
        """Fold all pending heavy and light state into the maintainer."""
        return self.splitter.flush(self._adapter)

    def __getattr__(self, name: str):
        if name in ("maintainer", "splitter", "_adapter", "transpose"):
            # __init__ hasn't run (copy/pickle): avoid infinite recursion.
            raise AttributeError(name)
        # Reads must never observe pending lag: fold before delegating.
        self.flush()
        return getattr(self.maintainer, name)


__all__ = [
    "DEFAULT_HEAVY_BUDGET",
    "DEFAULT_RANK_BOUND",
    "DEFAULT_RETUNE_EVERY",
    "HEAVY_BUDGET_GRID",
    "HeavyLightMaintainer",
    "HeavyLightRefresher",
    "HeavyLightStats",
]
