"""Update events: the dynamic part of a workload.

The paper considers factored updates ``dX = U @ V'`` of small rank —
most commonly rank-1 row updates ("each update affects one row of an
input matrix", Section 7).  :class:`FactoredUpdate` carries the two
factor blocks; constructors cover the practical patterns:

* :func:`row_update` — change one row by a given vector (rank 1);
* :func:`cell_update` — change a single entry (rank 1);
* :func:`column_update` — change one column (rank 1);
* :func:`batch_row_update` — change many rows at once (rank = #rows),
  the Table 4 workload.

Malformed updates are rejected with a typed :class:`InvalidUpdateError`
— at construction for factor-width disagreement, and at the session
boundary (:meth:`Session.apply_update
<repro.runtime.session.Session.apply_update>`) for NaN/Inf entries and
shapes the target view cannot absorb — before any view or accumulator
is touched.
"""

from __future__ import annotations

import numpy as np


class InvalidUpdateError(ValueError):
    """A malformed update rejected before it could touch any state.

    Raised at the session boundary for non-finite factors (NaN/Inf —
    one such entry silently poisons every downstream view through
    ``add_outer``) and for factor shapes no view could absorb, and at
    construction for factor widths that disagree.  Subclasses
    ``ValueError`` so pre-existing callers catching that still work.
    """


class FactoredUpdate:
    """An additive factored update ``target += u_block @ v_block'``."""

    __slots__ = ("target", "u_block", "v_block")

    def __init__(self, target: str, u_block: np.ndarray, v_block: np.ndarray):
        u = np.asarray(u_block, dtype=np.float64)
        v = np.asarray(v_block, dtype=np.float64)
        if u.ndim == 1:
            u = u.reshape(-1, 1)
        if v.ndim == 1:
            v = v.reshape(-1, 1)
        if u.ndim != 2 or v.ndim != 2:
            raise InvalidUpdateError(
                f"factor blocks must be matrices, got shapes "
                f"{u.shape} and {v.shape} for {target!r}"
            )
        if u.shape[1] != v.shape[1]:
            raise InvalidUpdateError(
                f"factor widths disagree: {u.shape} vs {v.shape} for {target!r}"
            )
        self.target = target
        self.u_block = u
        self.v_block = v

    def validate_finite(self) -> None:
        """Raise :class:`InvalidUpdateError` on any NaN/Inf factor entry."""
        if not np.isfinite(self.u_block).all():
            raise InvalidUpdateError(
                f"non-finite entries in the left factor for {self.target!r}"
            )
        if not np.isfinite(self.v_block).all():
            raise InvalidUpdateError(
                f"non-finite entries in the right factor for {self.target!r}"
            )

    @property
    def rank(self) -> int:
        """Width of the factor blocks (the update's rank bound)."""
        return self.u_block.shape[1]

    def dense(self) -> np.ndarray:
        """Materialize the update as a dense matrix (tests, REEVAL path)."""
        return self.u_block @ self.v_block.T

    def __repr__(self) -> str:
        return (
            f"FactoredUpdate({self.target!r}, rank={self.rank}, "
            f"shape=({self.u_block.shape[0]} x {self.v_block.shape[0]}))"
        )


def cell_update(target: str, n_rows: int, n_cols: int, i: int, j: int,
                value: float) -> FactoredUpdate:
    """Rank-1 update adding ``value`` to entry ``(i, j)``."""
    u = np.zeros((n_rows, 1))
    v = np.zeros((n_cols, 1))
    u[i, 0] = value
    v[j, 0] = 1.0
    return FactoredUpdate(target, u, v)


def row_update(target: str, n_rows: int, row: int,
               delta_row: np.ndarray) -> FactoredUpdate:
    """Rank-1 update adding ``delta_row`` to row ``row``."""
    delta_row = np.asarray(delta_row, dtype=np.float64).reshape(-1)
    u = np.zeros((n_rows, 1))
    u[row, 0] = 1.0
    return FactoredUpdate(target, u, delta_row.reshape(-1, 1))


def column_update(target: str, n_cols: int, col: int,
                  delta_col: np.ndarray) -> FactoredUpdate:
    """Rank-1 update adding ``delta_col`` to column ``col``."""
    delta_col = np.asarray(delta_col, dtype=np.float64).reshape(-1)
    v = np.zeros((n_cols, 1))
    v[col, 0] = 1.0
    return FactoredUpdate(target, delta_col.reshape(-1, 1), v)


def batch_row_update(target: str, n_rows: int, rows: np.ndarray,
                     delta_rows: np.ndarray) -> FactoredUpdate:
    """Rank-k update changing ``k`` distinct rows at once (Table 4).

    ``rows`` holds the affected row indices; ``delta_rows`` is ``(k x
    n_cols)`` with one delta vector per affected row.  The factored form
    stacks the indicator vectors: ``U[:, t] = e_{rows[t]}``.
    """
    rows = np.asarray(rows, dtype=np.intp).reshape(-1)
    delta_rows = np.asarray(delta_rows, dtype=np.float64)
    if delta_rows.ndim != 2 or delta_rows.shape[0] != rows.shape[0]:
        raise ValueError(
            f"need one delta row per index: {rows.shape[0]} indices, "
            f"deltas {delta_rows.shape}"
        )
    if len(set(rows.tolist())) != rows.shape[0]:
        raise ValueError("batch rows must be distinct (merge duplicates first)")
    k = rows.shape[0]
    u = np.zeros((n_rows, k))
    u[rows, np.arange(k)] = 1.0
    return FactoredUpdate(target, u, delta_rows.T)
