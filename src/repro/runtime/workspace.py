"""Scratch-buffer arena for allocation-free steady-state maintenance.

LINVIEW's per-update cost argument assumes the delta program's work is
the FLOPs it performs — but a naive Python implementation re-allocates
every temporary on every trigger firing, so small-delta maintenance is
dominated by allocator churn, not arithmetic.  A :class:`Workspace`
removes that churn: it *leases* scratch buffers keyed by
``(rows, cols, dtype)`` and hands the same buffers back in the same
order on every subsequent firing, so a trigger that warmed up once
performs **zero heap allocation** afterwards (the property
``benchmarks/bench_fused_hotpath.py`` measures with ``tracemalloc``).

Usage contract:

* a *firing* (one trigger execution, one ``compute_factors`` +
  ``apply_factors`` round, ...) opens a :meth:`frame`; every
  :meth:`lease` inside the frame returns a distinct buffer;
* when the outermost frame closes, all leases are released — the *next*
  frame re-issues the same buffers in lease order.  Results computed in
  workspace buffers are therefore valid **until the next firing**, not
  forever; callers that must keep them (snapshots, cross-refresh
  factor caches) copy them out.
* frames nest: a maintainer that drives sub-maintainers sharing the
  workspace (sums own powers) opens its frame first, and the inner
  frames neither reset nor recycle until the outermost one exits.

Buffers are plain C-contiguous float64 ``ndarray``\\ s — exactly what
the dense backend's ``*_into`` kernels (``np.matmul(..., out=)``, ufunc
``out=``) accept.  Sparse state falls back to allocation where CSR
structure forbids writing in place (see
:meth:`repro.backends.sparse.SparseBackend.matmul_into`); the thin
dense factor blocks that dominate factored-delta propagation reuse
workspace buffers under every backend.

The same convention is the contract for future backends: a GPU backend
implements ``*_into`` against device buffers and a device-side
workspace gives the identical zero-allocation steady state (see
ROADMAP).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

#: Buffers are keyed by (rows, cols, dtype-name).
_Key = tuple[int, int, str]


class _ThreadArena:
    """One thread's private pools/cursors/counters (no locking needed)."""

    __slots__ = ("pools", "cursors", "depth", "allocations", "leases")

    def __init__(self):
        self.pools: dict[_Key, list[np.ndarray]] = {}
        self.cursors: dict[_Key, int] = {}
        self.depth = 0
        self.allocations = 0
        self.leases = 0


class Workspace:
    """A pool of reusable scratch buffers keyed by shape and dtype.

    **Thread safety:** pools, cursors and frame depth are *per thread*
    (a concurrent view-serving writer must never be handed a buffer
    another thread is still writing — see
    :mod:`repro.runtime.serving`), so two threads leasing the same
    shape concurrently always receive distinct buffers and each
    thread's :meth:`frame` nesting is independent.  The cost is that a
    workspace shared across threads holds one buffer set per thread
    that actually leases — the serving layer's single-writer design
    keeps that at one working set in practice.

    Statistics are exposed for tests and benchmarks: ``allocations``
    counts buffers actually created (steady state: stops growing),
    ``leases`` counts every hand-out; both aggregate across threads.
    """

    def __init__(self):
        self._local = threading.local()
        self._arenas: list[_ThreadArena] = []
        self._registry_lock = threading.Lock()

    def _arena(self) -> _ThreadArena:
        arena = getattr(self._local, "arena", None)
        if arena is None:
            arena = _ThreadArena()
            self._local.arena = arena
            with self._registry_lock:
                self._arenas.append(arena)
        return arena

    def _snapshot_arenas(self) -> list[_ThreadArena]:
        with self._registry_lock:
            return list(self._arenas)

    # -- leasing ---------------------------------------------------------
    def lease(self, rows: int, cols: int, dtype=np.float64) -> np.ndarray:
        """The next free ``(rows x cols)`` buffer of this thread's frame.

        Allocates only when the frame needs more buffers of this shape
        than any previous frame did; contents are unspecified (callers
        always overwrite via ``out=`` kernels).
        """
        arena = self._arena()
        key = (int(rows), int(cols), np.dtype(dtype).name)
        pool = arena.pools.get(key)
        if pool is None:
            pool = arena.pools[key] = []
            arena.cursors[key] = 0
        cursor = arena.cursors[key]
        arena.cursors[key] = cursor + 1
        arena.leases += 1
        if cursor >= len(pool):
            pool.append(np.empty((key[0], key[1]), dtype=dtype))
            arena.allocations += 1
        return pool[cursor]

    def lease_like(self, template: np.ndarray) -> np.ndarray:
        """A buffer shaped and typed like ``template``."""
        rows, cols = template.shape
        return self.lease(rows, cols, template.dtype)

    # -- frames ----------------------------------------------------------
    @contextmanager
    def frame(self):
        """One firing's lease scope; nested frames share the outermost.

        Leases are recycled when this thread's *outermost* frame exits,
        so buffers handed out anywhere inside stay valid until the next
        top-level firing begins.  Frames on different threads are
        independent.
        """
        arena = self._arena()
        arena.depth += 1
        try:
            yield self
        finally:
            arena.depth -= 1
            if arena.depth == 0:
                self._reset(arena)

    def begin(self) -> None:
        """Start a new top-level firing without the context manager.

        Equivalent to closing any previous implicit frame: this
        thread's leases are recycled.  No-op while an explicit
        :meth:`frame` is open (nested maintainers must not clobber
        their caller's buffers).
        """
        arena = self._arena()
        if arena.depth == 0:
            self._reset(arena)

    @staticmethod
    def _reset(arena: _ThreadArena) -> None:
        for key in arena.cursors:
            arena.cursors[key] = 0

    # -- inspection ------------------------------------------------------
    @property
    def allocations(self) -> int:
        """Buffers created, summed across every leasing thread."""
        return sum(a.allocations for a in self._snapshot_arenas())

    @property
    def leases(self) -> int:
        """Buffers handed out, summed across every leasing thread."""
        return sum(a.leases for a in self._snapshot_arenas())

    def nbytes(self) -> int:
        """Total bytes held across all pools (all threads)."""
        return sum(
            buf.nbytes
            for arena in self._snapshot_arenas()
            for pool in arena.pools.values()
            for buf in pool
        )

    def buffer_count(self) -> int:
        """Number of distinct buffers the arena owns (all threads)."""
        return sum(
            len(pool)
            for arena in self._snapshot_arenas()
            for pool in arena.pools.values()
        )

    def __repr__(self) -> str:
        return (
            f"Workspace(buffers={self.buffer_count()}, "
            f"nbytes={self.nbytes()}, allocations={self.allocations}, "
            f"leases={self.leases})"
        )


def as_workspace(workspace: "Workspace | bool | None") -> Workspace | None:
    """Normalize a ``workspace=`` argument: ``True`` builds a fresh arena."""
    if workspace is True:
        return Workspace()
    if workspace is False:
        return None
    return workspace


__all__ = ["Workspace", "as_workspace"]
