"""Numeric evaluation of expression trees over NumPy arrays.

This is the single-node backend of the reproduction (the paper's Octave
role).  :func:`evaluate` walks an expression bottom-up, binding
:class:`~repro.expr.ast.MatrixSymbol` leaves from an environment of
``name -> ndarray`` and charging FLOPs to a
:class:`~repro.cost.counters.Counter`.

Matrix products are evaluated **in the expression's association order**:
the factored-delta machinery encodes the cheap evaluation order
structurally (e.g. ``A * (u * (v' * u))`` groups to matrix-vector work),
and the executor must respect it for the paper's cost claims to show up
in the counters.  N-ary products fold left-to-right.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..cost import counters, flops
from ..expr.ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)
from ..expr.shapes import DimLike, DimSum, NamedDim


class EvaluationError(RuntimeError):
    """Raised when an expression cannot be evaluated against an environment."""


def resolve_dim(dim: DimLike, dims: Mapping[str, int]) -> int:
    """Resolve a possibly-symbolic dimension to a concrete int."""
    if isinstance(dim, bool):
        raise EvaluationError("bool is not a dimension")
    if isinstance(dim, int):
        return dim
    if isinstance(dim, NamedDim):
        try:
            return dims[dim.name]
        except KeyError:
            raise EvaluationError(f"unbound dimension {dim.name!r}") from None
    if isinstance(dim, DimSum):
        return sum(resolve_dim(a, dims) for a in dim.atoms) + dim.const
    raise EvaluationError(f"cannot resolve dimension {dim!r}")


def evaluate(
    expr: Expr,
    env: Mapping[str, np.ndarray],
    dims: Mapping[str, int] | None = None,
    counter: counters.Counter = counters.NULL_COUNTER,
) -> np.ndarray:
    """Evaluate ``expr`` over ``env``, charging work to ``counter``.

    ``dims`` binds symbolic dimension names (needed only when the
    expression contains ``eye``/``zeros`` leaves with symbolic sizes).
    Returns a 2-D float64 array; inputs are used as-is (never mutated).
    """
    dims = dims or {}

    def rec(node: Expr) -> np.ndarray:
        if isinstance(node, MatrixSymbol):
            try:
                value = env[node.name]
            except KeyError:
                raise EvaluationError(f"unbound matrix {node.name!r}") from None
            arr = np.asarray(value, dtype=np.float64)
            if arr.ndim != 2:
                raise EvaluationError(
                    f"matrix {node.name!r} must be 2-D, got ndim={arr.ndim}"
                )
            return arr
        if isinstance(node, Identity):
            n = resolve_dim(node.shape.rows, dims)
            return np.eye(n)
        if isinstance(node, ZeroMatrix):
            r = resolve_dim(node.shape.rows, dims)
            c = resolve_dim(node.shape.cols, dims)
            return np.zeros((r, c))
        if isinstance(node, Add):
            total = rec(node.children[0])
            for child in node.children[1:]:
                value = rec(child)
                counter.record("add", flops.add_flops(*total.shape))
                total = total + value
            return total
        if isinstance(node, MatMul):
            result = rec(node.children[0])
            for child in node.children[1:]:
                value = rec(child)
                n, m = result.shape
                m2, p = value.shape
                if m != m2:
                    raise EvaluationError(
                        f"runtime shape mismatch in product: {result.shape} @ {value.shape}"
                    )
                counter.record(
                    "matmul", flops.matmul_flops(n, m, p), flops.matrix_bytes(n, p)
                )
                result = result @ value
            return result
        if isinstance(node, ScalarMul):
            value = rec(node.child)
            counter.record("scalar_mul", flops.scalar_mul_flops(*value.shape))
            return node.coeff * value
        if isinstance(node, Transpose):
            value = rec(node.child)
            counter.record("transpose", 0)
            return value.T
        if isinstance(node, Inverse):
            value = rec(node.child)
            n = value.shape[0]
            counter.record("inverse", flops.inverse_flops(n), flops.matrix_bytes(n, n))
            try:
                return np.linalg.inv(value)
            except np.linalg.LinAlgError as exc:
                raise EvaluationError(f"singular matrix in inverse: {exc}") from exc
        if isinstance(node, HStack):
            blocks = [rec(b) for b in node.children]
            return np.hstack(blocks)
        if isinstance(node, VStack):
            blocks = [rec(b) for b in node.children]
            return np.vstack(blocks)
        raise EvaluationError(f"cannot evaluate node type {type(node).__name__}")

    return rec(expr)
