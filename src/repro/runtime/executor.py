"""Numeric evaluation of expression trees over execution backends.

This is the single-node evaluator of the reproduction (the paper's
Octave role).  :func:`evaluate` walks an expression bottom-up, binding
:class:`~repro.expr.ast.MatrixSymbol` leaves from an environment of
``name -> matrix`` and charging FLOPs to a
:class:`~repro.cost.counters.Counter`.  All kernels dispatch through a
:class:`~repro.backends.base.Backend` (dense NumPy by default; pass
``backend="sparse"`` to execute large low-density operands as SciPy
CSR), and the counter is charged what the chosen representation
actually performs.

Matrix products are evaluated **in the expression's association order**:
the factored-delta machinery encodes the cheap evaluation order
structurally (e.g. ``A * (u * (v' * u))`` groups to matrix-vector work),
and the executor must respect it for the paper's cost claims to show up
in the counters.  N-ary products fold left-to-right.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..backends import get_backend
from ..cost import counters
from ..expr.ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)
from ..expr.shapes import DimLike, DimSum, NamedDim


class EvaluationError(RuntimeError):
    """Raised when an expression cannot be evaluated against an environment."""


def resolve_dim(dim: DimLike, dims: Mapping[str, int]) -> int:
    """Resolve a possibly-symbolic dimension to a concrete int."""
    if isinstance(dim, bool):
        raise EvaluationError("bool is not a dimension")
    if isinstance(dim, int):
        return dim
    if isinstance(dim, NamedDim):
        try:
            return dims[dim.name]
        except KeyError:
            raise EvaluationError(f"unbound dimension {dim.name!r}") from None
    if isinstance(dim, DimSum):
        return sum(resolve_dim(a, dims) for a in dim.atoms) + dim.const
    raise EvaluationError(f"cannot resolve dimension {dim!r}")


def evaluate(
    expr: Expr,
    env: Mapping[str, np.ndarray],
    dims: Mapping[str, int] | None = None,
    counter: counters.Counter = counters.NULL_COUNTER,
    backend=None,
) -> np.ndarray:
    """Evaluate ``expr`` over ``env``, charging work to ``counter``.

    ``dims`` binds symbolic dimension names (needed only when the
    expression contains ``eye``/``zeros`` leaves with symbolic sizes).
    ``backend`` picks the execution backend (name, instance, or ``None``
    for dense).  Returns a 2-D matrix in the backend's representation
    (a float64 ``ndarray`` under the default dense backend); inputs are
    used as-is (never mutated).
    """
    dims = dims or {}
    be = get_backend(backend)

    def rec(node: Expr):
        if isinstance(node, MatrixSymbol):
            try:
                value = env[node.name]
            except KeyError:
                raise EvaluationError(f"unbound matrix {node.name!r}") from None
            if be.is_native(value):
                # Already in a form the backend executes — return it
                # as-is regardless of concrete type.  Re-normalizing a
                # native float64 ndarray through ``asarray`` would scan
                # (and, under the sparse backend's representation
                # policy, copy/convert) the full matrix on *every leaf
                # evaluation*; other dtypes still normalize below.
                if not isinstance(value, np.ndarray):
                    return value
                if value.dtype == np.float64:
                    return value
            arr = np.asarray(value, dtype=np.float64)
            if arr.ndim != 2:
                raise EvaluationError(
                    f"matrix {node.name!r} must be 2-D, got ndim={arr.ndim}"
                )
            return be.asarray(arr)
        if isinstance(node, Identity):
            n = resolve_dim(node.shape.rows, dims)
            return be.eye(n)
        if isinstance(node, ZeroMatrix):
            r = resolve_dim(node.shape.rows, dims)
            c = resolve_dim(node.shape.cols, dims)
            return be.zeros(r, c)
        if isinstance(node, Add):
            total = rec(node.children[0])
            for child in node.children[1:]:
                value = rec(child)
                counter.record("add", be.add_flops(total))
                total = be.add(total, value)
            return total
        if isinstance(node, MatMul):
            result = rec(node.children[0])
            for child in node.children[1:]:
                value = rec(child)
                n, m = be.shape(result)
                m2, p = be.shape(value)
                if m != m2:
                    raise EvaluationError(
                        f"runtime shape mismatch in product: "
                        f"{(n, m)} @ {(m2, p)}"
                    )
                counter.record("matmul", be.matmul_flops(result, value), n * p * 8)
                result = be.matmul(result, value)
            return result
        if isinstance(node, ScalarMul):
            value = rec(node.child)
            counter.record("scalar_mul", be.scale_flops(value))
            return be.scale(node.coeff, value)
        if isinstance(node, Transpose):
            value = rec(node.child)
            counter.record("transpose", 0)
            return be.transpose(value)
        if isinstance(node, Inverse):
            value = rec(node.child)
            n = be.shape(value)[0]
            counter.record("inverse", be.inverse_flops(value), n * n * 8)
            try:
                return be.inv(value)
            except np.linalg.LinAlgError as exc:
                raise EvaluationError(f"singular matrix in inverse: {exc}") from exc
        if isinstance(node, HStack):
            blocks = [rec(b) for b in node.children]
            return be.hstack(blocks)
        if isinstance(node, VStack):
            blocks = [rec(b) for b in node.children]
            return be.vstack(blocks)
        raise EvaluationError(f"cannot evaluate node type {type(node).__name__}")

    return rec(expr)
