"""Dense NumPy execution backend (the seed semantics, unchanged).

Every operation runs on 2-D float64 ``ndarray``\\ s with the classical
kernels, and the cost hooks report the standard dense counts from
:mod:`repro.cost.flops` — so a session built on :class:`DenseBackend`
is FLOP-for-FLOP identical to the pre-backend executor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cost import flops
from .base import Backend, MatrixLike

try:  # SciPy gives direct BLAS access for single-pass rank-k updates.
    from scipy.linalg import blas as _blas
except ImportError:  # pragma: no cover - scipy is a soft dependency
    _blas = None


class DenseBackend(Backend):
    """NumPy float64 kernels; the default backend."""

    name = "dense"

    # -- construction ----------------------------------------------------
    def asarray(self, value: MatrixLike, copy: bool = False) -> np.ndarray:
        arr = np.array(value, dtype=np.float64) if copy else np.asarray(
            value, dtype=np.float64
        )
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got ndim={arr.ndim}")
        return arr

    def eye(self, n: int) -> np.ndarray:
        return np.eye(n)

    def zeros(self, rows: int, cols: int) -> np.ndarray:
        return np.zeros((rows, cols))

    # -- algebra ---------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a - b

    def add_inplace(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a += b
        return a

    def add_outer(
        self, a: np.ndarray, u: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """``a += u @ v.T`` in one memory pass.

        Uses BLAS ``dgemm`` with ``beta = 1`` accumulating straight into
        ``a`` (via its transposed Fortran-order view), halving memory
        traffic against the materialize-then-add form — this is what the
        paper's generated BLAS backends do for ``A += U V'`` updates.
        Falls back to two passes when SciPy or the layout rules it out.
        """
        if (
            _blas is not None
            and isinstance(a, np.ndarray)
            and a.flags.c_contiguous
            and a.dtype == np.float64
            and u.dtype == np.float64
            and v.dtype == np.float64
        ):
            # a.T (Fortran view) = v @ u.T + a.T, computed in place.
            _blas.dgemm(1.0, v, u, beta=1.0, c=a.T, trans_b=True,
                        overwrite_c=1)
            return a
        a += u @ v.T
        return a

    def scale(self, coeff: float, a: np.ndarray) -> np.ndarray:
        return coeff * a

    # -- in-place / out-param kernels ------------------------------------
    # All dense kernels have true ``out=`` forms: one BLAS/ufunc pass
    # into a caller-owned buffer, zero result allocation.  ``out=None``
    # falls back to the allocating form so callers can share code paths.

    def matmul_into(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None
    ) -> np.ndarray:
        if out is None:
            return a @ b
        return np.matmul(a, b, out=out)

    def add_into(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None
    ) -> np.ndarray:
        if out is None:
            return a + b
        return np.add(a, b, out=out)

    def sub_into(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None
    ) -> np.ndarray:
        if out is None:
            return a - b
        return np.subtract(a, b, out=out)

    def scale_into(
        self, coeff: float, a: np.ndarray, out: np.ndarray | None
    ) -> np.ndarray:
        if out is None:
            return coeff * a
        return np.multiply(coeff, a, out=out)

    def hstack_into(
        self, blocks: Sequence[np.ndarray], out: np.ndarray | None
    ) -> np.ndarray:
        if out is None:
            return np.hstack(list(blocks))
        return np.concatenate(list(blocks), axis=1, out=out)

    def vstack_into(
        self, blocks: Sequence[np.ndarray], out: np.ndarray | None
    ) -> np.ndarray:
        if out is None:
            return np.vstack(list(blocks))
        return np.concatenate(list(blocks), axis=0, out=out)

    def transpose(self, a: np.ndarray) -> np.ndarray:
        return a.T

    def hstack(self, blocks: Sequence[np.ndarray]) -> np.ndarray:
        return np.hstack(list(blocks))

    def vstack(self, blocks: Sequence[np.ndarray]) -> np.ndarray:
        return np.vstack(list(blocks))

    def inv(self, a: np.ndarray) -> np.ndarray:
        return np.linalg.inv(a)

    def solve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.linalg.solve(a, b)

    def norm(self, a: np.ndarray) -> float:
        return float(np.linalg.norm(a))

    def max_abs(self, a: np.ndarray) -> float:
        return float(np.max(np.abs(a))) if a.size else 0.0

    # -- factored-delta kernels ------------------------------------------
    def compact(
        self, u: np.ndarray, v: np.ndarray, rtol: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rank compaction via thin QR of each factor + SVD of the core.

        ``U V' = Q_u (R_u R_v') Q_v' = (Q_u W S)(Q_v Z)'`` at
        ``O(n m^2 + m^3)`` for width-``m`` factors; see
        :mod:`repro.delta.batch` for the batching context.
        """
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if u.ndim != 2 or v.ndim != 2 or u.shape[1] != v.shape[1]:
            raise ValueError(
                f"factors must be (n x m)/(p x m), got {u.shape} and {v.shape}"
            )
        qu, ru = np.linalg.qr(u, mode="reduced")
        qv, rv = np.linalg.qr(v, mode="reduced")
        core = ru @ rv.T
        w, s, zt = np.linalg.svd(core, full_matrices=False)
        # Threshold against the *input* magnitude, not the core's own top
        # singular value — a batch that cancels to numerical zero must
        # compact to width 0, which a purely relative cutoff never does.
        scale = float(np.linalg.norm(ru) * np.linalg.norm(rv))
        if s.size and scale > 0.0:
            keep = s > rtol * scale
        else:
            keep = np.zeros(s.shape, dtype=bool)
        left = qu @ (w[:, keep] * s[keep])
        right = qv @ zt[keep].T
        return left, right

    # -- inspection ------------------------------------------------------
    def materialize(self, a: MatrixLike) -> np.ndarray:
        return np.asarray(a, dtype=np.float64)

    def is_native(self, value: MatrixLike) -> bool:
        return isinstance(value, np.ndarray) and value.ndim == 2

    def nbytes(self, a: np.ndarray) -> int:
        return int(a.nbytes)

    def density(self, a: np.ndarray) -> float:
        return 1.0

    # -- cost hooks ------------------------------------------------------
    def matmul_flops(self, a: np.ndarray, b: np.ndarray) -> int:
        n, m = a.shape
        p = b.shape[1]
        return flops.matmul_flops(n, m, p)

    def add_flops(self, a: np.ndarray) -> int:
        return flops.add_flops(*a.shape)

    def scale_flops(self, a: np.ndarray) -> int:
        return flops.scalar_mul_flops(*a.shape)

    def inverse_flops(self, a: np.ndarray) -> int:
        return flops.inverse_flops(a.shape[0])
