"""The numeric kernel interface every execution backend implements.

LINVIEW's maintenance machinery is representation-agnostic: triggers,
delta derivation and the iterative-model recurrences only need a small
algebra of matrix operations.  F-IVM (Kara et al.) makes the analogous
point for rings of aggregates; here the abstraction is over the
*physical* value domain — dense NumPy arrays today, SciPy CSR matrices
for graph-shaped inputs, and (eventually) GPU or out-of-core blocks.

A :class:`Backend` bundles

* **construction** — :meth:`asarray`, :meth:`eye`, :meth:`zeros`;
* **algebra** — :meth:`matmul`, :meth:`add`, :meth:`sub`,
  :meth:`scale`, :meth:`transpose`, :meth:`hstack`, :meth:`vstack`,
  :meth:`inv`, :meth:`solve`, :meth:`norm`;
* **update kernels** — :meth:`add_outer` (the trigger statement
  ``A += U V'``) and :meth:`compact` (rank compaction of factored
  deltas, the Table 4 batching step);
* **in-place / out-param kernels** — :meth:`matmul_into`,
  :meth:`add_into`, :meth:`sub_into`, :meth:`scale_into`,
  :meth:`hstack_into`, :meth:`vstack_into`, :meth:`add_outer_inplace`:
  the allocation-free hot path.  Each takes an ``out`` buffer (usually
  leased from a :class:`~repro.runtime.workspace.Workspace`), writes
  the result into it *when the representation allows*, and returns the
  result either way — callers must always use the returned object, so
  a backend that cannot write in place (CSR structure changes) may
  fall back to allocation without breaking the caller;
* **cost hooks** — ``*_flops`` formulas so the FLOP counters charge
  what the representation actually performs (a sparse matvec is *not*
  ``2 n^2`` work, and reporting it as such would fake the paper's
  complexity plots);
* **inspection** — :meth:`materialize`, :meth:`shape`, :meth:`nbytes`,
  :meth:`density`.

Mutating kernels (:meth:`add_inplace`, :meth:`add_outer`) return the
result and update in place only *when the representation allows it*;
callers must always use the returned object.  Factored-delta blocks
(thin ``(n x k)`` matrices) stay dense ``ndarray``\\ s under every
backend — their products are already cheap, and keeping them dense is
what makes factored updates fast on sparse state too.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

#: A backend value: a 2-D ``ndarray`` or a backend-specific matrix type.
MatrixLike = Any


class Backend(ABC):
    """Abstract numeric kernel used by the executor and maintainers."""

    #: Registry key and display name (``"dense"``, ``"sparse"``, ...).
    name: str = "abstract"

    # -- construction ----------------------------------------------------
    @abstractmethod
    def asarray(self, value: MatrixLike, copy: bool = False) -> MatrixLike:
        """Normalize ``value`` into this backend's preferred 2-D form.

        1-D input becomes a column; ``copy=True`` guarantees the result
        does not alias caller memory (maintainers that mutate state in
        place rely on this).
        """

    @abstractmethod
    def eye(self, n: int) -> MatrixLike:
        """The ``(n x n)`` identity in this backend's representation."""

    @abstractmethod
    def zeros(self, rows: int, cols: int) -> MatrixLike:
        """An all-zero ``(rows x cols)`` matrix."""

    # -- algebra ---------------------------------------------------------
    @abstractmethod
    def matmul(self, a: MatrixLike, b: MatrixLike) -> MatrixLike:
        """Matrix product ``a @ b`` (in the expression's association order)."""

    @abstractmethod
    def add(self, a: MatrixLike, b: MatrixLike) -> MatrixLike:
        """Element-wise sum."""

    @abstractmethod
    def sub(self, a: MatrixLike, b: MatrixLike) -> MatrixLike:
        """Element-wise difference."""

    @abstractmethod
    def add_inplace(self, a: MatrixLike, b: MatrixLike) -> MatrixLike:
        """``a += b`` where possible; returns the result (may be new)."""

    @abstractmethod
    def add_outer(
        self, a: MatrixLike, u: np.ndarray, v: np.ndarray
    ) -> MatrixLike:
        """The trigger update ``a + u @ v.T`` for thin factor blocks.

        Accumulates in place when the representation supports it;
        returns the result either way.
        """

    @abstractmethod
    def scale(self, coeff: float, a: MatrixLike) -> MatrixLike:
        """Scalar multiple ``coeff * a``."""

    # -- in-place / out-param kernels ------------------------------------
    # The zero-allocation hot path.  Base-class defaults simply ignore
    # ``out`` and allocate — a correct (if slow) behavior for any
    # backend — so concrete backends override only the kernels their
    # representation can actually run in place.  ``out`` may be ``None``
    # (no buffer available), and must never alias an operand.

    def matmul_into(self, a: MatrixLike, b: MatrixLike, out) -> MatrixLike:
        """``a @ b`` written into ``out`` where possible; use the result."""
        return self.matmul(a, b)

    def add_into(self, a: MatrixLike, b: MatrixLike, out) -> MatrixLike:
        """``a + b`` written into ``out`` where possible; use the result.

        ``out`` *may* alias ``a`` or ``b`` (element-wise kernels accept
        overlapping input/output), which is how ``+=`` accumulation is
        expressed: ``add_into(acc, term, acc)``.
        """
        return self.add(a, b)

    def sub_into(self, a: MatrixLike, b: MatrixLike, out) -> MatrixLike:
        """``a - b`` written into ``out`` where possible; use the result."""
        return self.sub(a, b)

    def scale_into(self, coeff: float, a: MatrixLike, out) -> MatrixLike:
        """``coeff * a`` written into ``out`` where possible."""
        return self.scale(coeff, a)

    def hstack_into(self, blocks: Sequence[MatrixLike], out) -> MatrixLike:
        """Horizontal concatenation into ``out`` where possible."""
        return self.hstack(blocks)

    def vstack_into(self, blocks: Sequence[MatrixLike], out) -> MatrixLike:
        """Vertical concatenation into ``out`` where possible."""
        return self.vstack(blocks)

    def add_outer_inplace(
        self, a: MatrixLike, u: np.ndarray, v: np.ndarray
    ) -> MatrixLike:
        """``a += u @ v.T`` mutating ``a`` where the representation allows.

        The explicit in-place contract of the fused trigger path: unlike
        :meth:`add_outer` (which shares the accumulate-when-possible
        behavior but makes no promise), callers hand over ``a`` knowing
        it may be mutated.  The result is returned either way; sparse
        backends may return a new (possibly densified) matrix.
        """
        return self.add_outer(a, u, v)

    @abstractmethod
    def transpose(self, a: MatrixLike) -> MatrixLike:
        """Transpose (no arithmetic)."""

    @abstractmethod
    def hstack(self, blocks: Sequence[MatrixLike]) -> MatrixLike:
        """Horizontal concatenation."""

    @abstractmethod
    def vstack(self, blocks: Sequence[MatrixLike]) -> MatrixLike:
        """Vertical concatenation."""

    @abstractmethod
    def inv(self, a: MatrixLike) -> MatrixLike:
        """Matrix inverse (dense result; inverses are generically dense)."""

    @abstractmethod
    def solve(self, a: MatrixLike, b: MatrixLike) -> MatrixLike:
        """Solve ``a @ x = b`` for ``x``."""

    @abstractmethod
    def norm(self, a: MatrixLike) -> float:
        """Frobenius norm."""

    @abstractmethod
    def max_abs(self, a: MatrixLike) -> float:
        """``max |a_ij|`` (drift monitoring); 0.0 for an empty matrix."""

    # -- factored-delta kernels ------------------------------------------
    @abstractmethod
    def compact(
        self, u: np.ndarray, v: np.ndarray, rtol: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Minimal-rank thin factors ``(L, R)`` with ``L R' == u v'``.

        Factors are dense thin blocks under every backend; see
        :mod:`repro.delta.batch` for the QR/SVD derivation.
        """

    # -- inspection ------------------------------------------------------
    @abstractmethod
    def materialize(self, a: MatrixLike) -> np.ndarray:
        """A dense float64 ``ndarray`` copy-or-view of ``a``."""

    @abstractmethod
    def is_native(self, value: MatrixLike) -> bool:
        """Whether ``value`` is already in a form this backend executes."""

    def shape(self, a: MatrixLike) -> tuple[int, int]:
        """Global ``(rows, cols)``."""
        return a.shape

    @abstractmethod
    def nbytes(self, a: MatrixLike) -> int:
        """Bytes of storage the representation actually holds."""

    @abstractmethod
    def density(self, a: MatrixLike) -> float:
        """Fraction of stored entries (1.0 for dense)."""

    # -- predictive cost hooks (planner) ---------------------------------
    # The ``*_flops`` hooks below charge work *performed* on concrete
    # matrices; these ``est_*`` hooks predict the same quantities from
    # shapes and densities alone, so the cost model can rank backends
    # before any state exists.  Estimates follow each backend's
    # representation policy: a backend that would store a given
    # (shape, density) densely must estimate dense costs for it.

    #: Fixed cost of one kernel invocation, in dense-FLOP equivalents.
    #: Python dispatch + allocation + library call setup costs the same
    #: whether operands are thin or square, so plans that trade a few
    #: big products for many matrix–vector-shaped calls must be charged
    #: per call as well as per flop.
    est_call_overhead_flops: float = 10_000.0

    #: Fraction of the per-call overhead a kernel still pays when it
    #: runs through the in-place / ``out=`` path (no result allocation,
    #: no allocator round-trip, warmer caches).  Ships as a conservative
    #: class constant; ``repro calibrate`` measures the machine's true
    #: in-place vs out-of-place gap and overwrites it.
    est_inplace_discount: float = 0.5

    #: Memory passes per stored entry of converting state into or out of
    #: this backend's representation (the re-planning switch cost:
    #: :meth:`ReplanMonitor._switch_cost`).  The shipped 2.0 matches the
    #: pre-calibration fixed constant; ``repro calibrate`` fits it from
    #: timed conversions.
    est_convert_passes_per_entry: float = 2.0

    #: Effective FLOPs per ``m^3`` of the small core SVD inside
    #: :meth:`compact` (the QR+SVD batch compaction of
    #: :mod:`repro.delta.batch`).  LAPACK's ``gesdd`` runs a few dozen
    #: passes over the ``m x m`` core; the shipped 22.0 matches the
    #: pre-calibration constant in :func:`repro.cost.estimate.compaction_cost`,
    #: and ``repro calibrate`` fits the machine's true value from timed
    #: compactions.
    est_compaction_factor: float = 22.0

    #: Fixed cost of one coordinator->worker IPC round-trip, in
    #: dense-FLOP equivalents (pipe send + pickle + scheduler wakeup).
    #: Shipped from pipe measurements on a development box;
    #: ``repro calibrate`` re-fits it from a timed spawn-pipe echo
    #: microbenchmark.
    est_ipc_call_flops: float = 50_000.0

    #: Dense-FLOP equivalents per byte moved over an IPC pipe
    #: (~flop_rate / pipe_bandwidth).  Also re-fitted by calibration.
    est_ipc_flops_per_byte: float = 2.0

    def est_call_overhead(self, inplace: bool = False) -> float:
        """Per-call overhead in dense-FLOP equivalents.

        ``inplace=True`` prices a call through the ``*_into`` /
        buffer-reusing path (the fused codegen mode), discounting the
        allocation/temporary share of the overhead.
        """
        if inplace:
            return self.est_call_overhead_flops * self.est_inplace_discount
        return self.est_call_overhead_flops

    def est_broadcast(self, nbytes: float, nodes: int) -> float:
        """Predicted cost (dense-FLOP equivalents) of broadcasting
        ``nbytes`` from the coordinator to each of ``nodes`` workers.

        Over pipes every worker receives its own copy, so both the
        per-message overhead and the bytes scale with the node count.
        Zero at ``nodes <= 1``: single-process execution ships nothing.
        """
        if nodes <= 1:
            return 0.0
        return nodes * (self.est_ipc_call_flops
                        + nbytes * self.est_ipc_flops_per_byte)

    def est_shuffle(self, nbytes: float, nodes: int) -> float:
        """Predicted cost of redistributing/gathering ``nbytes`` total
        across ``nodes`` workers (each byte crosses a pipe once; one
        message per worker)."""
        if nodes <= 1:
            return 0.0
        return (nodes * self.est_ipc_call_flops
                + nbytes * self.est_ipc_flops_per_byte)

    def est_stored_density(self, rows: int, cols: int, density: float) -> float:
        """Density at which this backend would *store* such a matrix.

        1.0 means dense storage (the base-class default); sparse
        backends return ``density`` for operands they would keep in a
        compressed format.
        """
        return 1.0

    def est_matmul_flops(
        self,
        a_shape: tuple[int, int],
        b_shape: tuple[int, int],
        a_density: float = 1.0,
        b_density: float = 1.0,
    ) -> float:
        """Predicted FLOPs of ``a @ b`` given shapes and densities."""
        n, m = a_shape
        p = b_shape[1]
        return float(2 * n * m * p)

    def est_add_flops(
        self, shape: tuple[int, int], density: float = 1.0
    ) -> float:
        """Predicted FLOPs of an element-wise add at ``shape``."""
        return float(shape[0] * shape[1])

    def est_add_outer_flops(
        self,
        shape: tuple[int, int],
        density: float = 1.0,
        rank: int = 1,
        u_nnz_per_col: float | None = None,
    ) -> float:
        """Predicted FLOPs of the update kernel ``a += U V'``.

        ``u_nnz_per_col`` bounds the nonzeros per column of ``U`` (row
        or edge updates carry indicator columns with a single nonzero);
        ``None`` means dense factor columns.
        """
        rows, cols = shape
        return float(2 * rows * rank * cols)

    def est_entries(
        self, shape: tuple[int, int], density: float = 1.0
    ) -> float:
        """Predicted stored entries (the space unit of Tables 2/3)."""
        rows, cols = shape
        return float(rows * cols) * self.est_stored_density(rows, cols, density)

    # -- cost hooks ------------------------------------------------------
    @abstractmethod
    def matmul_flops(self, a: MatrixLike, b: MatrixLike) -> int:
        """FLOPs the backend performs for ``a @ b``."""

    @abstractmethod
    def add_flops(self, a: MatrixLike) -> int:
        """FLOPs of an element-wise add shaped like ``a``."""

    @abstractmethod
    def scale_flops(self, a: MatrixLike) -> int:
        """FLOPs of scaling ``a``."""

    @abstractmethod
    def inverse_flops(self, a: MatrixLike) -> int:
        """FLOPs of inverting the square matrix ``a``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
