"""Sparse (SciPy CSR) execution backend with dense fallback.

Graph-shaped workloads — pagerank, reachability, markov chains — keep
``n x n`` state that is overwhelmingly sparse (a social graph at 1%
density stores 100x fewer entries than its dense image).  The dense
executor pays ``O(n^2)`` per matrix-vector product regardless;
:class:`SparseBackend` stores large low-density operands as CSR and
pays ``O(nnz)`` instead, which is exactly the regime where LINVIEW's
factored deltas shine (the deltas themselves stay *thin dense*
``(n x k)`` blocks, so factored propagation is unchanged).

Representation policy (hysteresis avoids format flip-flop):

* matrices with both dimensions ``>= min_sparse_dim`` and density
  ``<= sparsify_below`` are stored CSR;
* sparse results whose density crosses ``densify_above`` are
  materialized to dense (walk-count views in reachability fill in over
  long update streams — the backend follows them down the density
  ramp);
* thin factor blocks and small matrices are always dense ``ndarray``:
  at those shapes BLAS beats sparse kernels handily.

Cost hooks report nnz-proportional FLOPs so counters reflect the work
the kernels actually do.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

try:
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover - scipy is a soft dependency
    _sp = None

from ..cost import flops
from .base import MatrixLike
from .dense import DenseBackend


def _require_scipy() -> None:
    if _sp is None:  # pragma: no cover - exercised only without scipy
        raise RuntimeError(
            "SparseBackend requires scipy; install it or use DenseBackend"
        )


class SparseBackend(DenseBackend):
    """CSR kernels for large sparse state, dense fallback elsewhere.

    Parameters
    ----------
    min_sparse_dim:
        Matrices with either dimension below this stay dense (sparse
        formats only pay off at scale).
    sparsify_below:
        Density at or under which a large input is converted to CSR.
    densify_above:
        Density above which a sparse *result* is materialized dense.
        Must exceed ``sparsify_below`` (hysteresis).
    """

    name = "sparse"

    def __init__(
        self,
        min_sparse_dim: int = 64,
        sparsify_below: float = 0.10,
        densify_above: float = 0.35,
    ):
        _require_scipy()
        if densify_above <= sparsify_below:
            raise ValueError(
                "densify_above must exceed sparsify_below (hysteresis)"
            )
        self.min_sparse_dim = int(min_sparse_dim)
        self.sparsify_below = float(sparsify_below)
        self.densify_above = float(densify_above)

    # -- representation policy -------------------------------------------
    def _is_sparse(self, a: MatrixLike) -> bool:
        return _sp.issparse(a)

    def _worth_sparse_shape(self, rows: int, cols: int) -> bool:
        return min(rows, cols) >= self.min_sparse_dim

    def _finalize(self, a: MatrixLike) -> MatrixLike:
        """Post-op normalization: densify sparse results that filled in."""
        if not self._is_sparse(a):
            return a
        rows, cols = a.shape
        if not self._worth_sparse_shape(rows, cols):
            return np.asarray(a.todense(), dtype=np.float64)
        if self.density(a) > self.densify_above:
            return np.asarray(a.todense(), dtype=np.float64)
        if not isinstance(a, _sp.csr_array):
            a = _sp.csr_array(a)
        return a

    # -- construction ----------------------------------------------------
    def asarray(self, value: MatrixLike, copy: bool = False) -> MatrixLike:
        if self._is_sparse(value):
            if value.ndim != 2:
                raise ValueError(f"matrix must be 2-D, got ndim={value.ndim}")
            out = _sp.csr_array(value, dtype=np.float64)
            if copy:
                # csr_array(S) may share S's index/data buffers; a full
                # copy is cheap next to the aliasing bugs it prevents.
                out = out.copy()
            return self._finalize(out)
        arr = super().asarray(value, copy=copy)
        rows, cols = arr.shape
        if self._worth_sparse_shape(rows, cols):
            nnz = int(np.count_nonzero(arr))
            if nnz <= self.sparsify_below * arr.size:
                return _sp.csr_array(arr)
        return arr

    def eye(self, n: int) -> MatrixLike:
        if n >= self.min_sparse_dim:
            return _sp.eye_array(n, format="csr", dtype=np.float64)
        return np.eye(n)

    def zeros(self, rows: int, cols: int) -> MatrixLike:
        if self._worth_sparse_shape(rows, cols):
            return _sp.csr_array((rows, cols), dtype=np.float64)
        return np.zeros((rows, cols))

    # -- algebra ---------------------------------------------------------
    def matmul(self, a: MatrixLike, b: MatrixLike) -> MatrixLike:
        return self._finalize(a @ b)

    def add(self, a: MatrixLike, b: MatrixLike) -> MatrixLike:
        if self._is_sparse(a) and not self._is_sparse(b):
            # csr + dense yields dense; keep operand order np-friendly.
            return np.asarray(a.todense() + b)
        return self._finalize(a + b)

    def sub(self, a: MatrixLike, b: MatrixLike) -> MatrixLike:
        if self._is_sparse(a) and not self._is_sparse(b):
            return np.asarray(a.todense() - b)
        return self._finalize(a - b)

    def add_inplace(self, a: MatrixLike, b: MatrixLike) -> MatrixLike:
        if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
            a += b
            return a
        if isinstance(a, np.ndarray):  # dense += sparse
            a += b.todense()
            return a
        return self._finalize(a + b)

    def add_outer(
        self, a: MatrixLike, u: np.ndarray, v: np.ndarray
    ) -> MatrixLike:
        if not self._is_sparse(a):
            return super().add_outer(a, u, v)
        u = np.asarray(u, dtype=np.float64).reshape(len(u), -1)
        v = np.asarray(v, dtype=np.float64).reshape(len(v), -1)
        # Expected nnz of U V' (columnwise outer products); if the delta
        # would fill the matrix in, stop fighting it and go dense.
        u_nnz = np.count_nonzero(u, axis=0)
        v_nnz = np.count_nonzero(v, axis=0)
        est_nnz = int((u_nnz * v_nnz).sum()) + a.nnz
        if est_nnz > self.densify_above * a.shape[0] * a.shape[1]:
            dense = np.asarray(a.todense())
            return super().add_outer(dense, u, v)
        delta = _sp.csr_array(u) @ _sp.csr_array(v).T
        return self._finalize(a + delta)

    def scale(self, coeff: float, a: MatrixLike) -> MatrixLike:
        if self._is_sparse(a):
            return self._finalize(a * coeff)
        return coeff * a

    # -- in-place / out-param kernels ------------------------------------
    # CSR results generally cannot be written into caller buffers (the
    # output's nnz structure is data-dependent), so the sparse kernels
    # use ``out`` only on their all-dense legs and otherwise fall back
    # to allocation — thin dense factor blocks, which dominate factored
    # propagation, still run allocation-free.

    def matmul_into(self, a: MatrixLike, b: MatrixLike, out) -> MatrixLike:
        if (
            out is not None
            and isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
        ):
            return np.matmul(a, b, out=out)
        return self.matmul(a, b)

    def add_into(self, a: MatrixLike, b: MatrixLike, out) -> MatrixLike:
        if (
            out is not None
            and isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
        ):
            return np.add(a, b, out=out)
        return self.add(a, b)

    def sub_into(self, a: MatrixLike, b: MatrixLike, out) -> MatrixLike:
        if (
            out is not None
            and isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
        ):
            return np.subtract(a, b, out=out)
        return self.sub(a, b)

    def scale_into(self, coeff: float, a: MatrixLike, out) -> MatrixLike:
        if out is not None and isinstance(a, np.ndarray):
            return np.multiply(coeff, a, out=out)
        return self.scale(coeff, a)

    def hstack_into(self, blocks: Sequence[MatrixLike], out) -> MatrixLike:
        blocks = list(blocks)
        if out is not None and all(isinstance(b, np.ndarray) for b in blocks):
            return np.concatenate(blocks, axis=1, out=out)
        return self.hstack(blocks)

    def vstack_into(self, blocks: Sequence[MatrixLike], out) -> MatrixLike:
        blocks = list(blocks)
        if out is not None and all(isinstance(b, np.ndarray) for b in blocks):
            return np.concatenate(blocks, axis=0, out=out)
        return self.vstack(blocks)

    def add_outer_inplace(
        self, a: MatrixLike, u: np.ndarray, v: np.ndarray
    ) -> MatrixLike:
        """``a += u v'`` reusing ``a``'s CSR index arrays when they fit.

        A factored update whose nonzeros all land on ``a``'s existing
        sparsity pattern (row rewrites over already-connected vertices,
        cell bumps on existing edges) leaves the structure unchanged —
        only ``a.data`` moves.  In that case the stored matrix keeps its
        identity and its ``indptr``/``indices`` buffers; otherwise this
        falls back to :meth:`add_outer`'s merge (allocation is
        unavoidable when the structure itself grows).
        """
        if not self._is_sparse(a):
            return super().add_outer(a, u, v)
        u = np.asarray(u, dtype=np.float64).reshape(len(u), -1)
        v = np.asarray(v, dtype=np.float64).reshape(len(v), -1)
        # Same early-densify escape as add_outer: when the delta would
        # fill the matrix in, the sparse merge (and the pattern
        # comparison below) costs ~3x one dense dgemm — go dense now.
        u_nnz = np.count_nonzero(u, axis=0)
        v_nnz = np.count_nonzero(v, axis=0)
        est_nnz = int((u_nnz * v_nnz).sum()) + a.nnz
        if est_nnz > self.densify_above * a.shape[0] * a.shape[1]:
            dense = np.asarray(a.todense())
            return super().add_outer(dense, u, v)
        merged = a + _sp.csr_array(u) @ _sp.csr_array(v).T
        merged = (
            merged if isinstance(merged, _sp.csr_array)
            else _sp.csr_array(merged)
        )
        if merged.nnz == a.nnz and np.array_equal(
            merged.indptr, a.indptr
        ) and np.array_equal(merged.indices, a.indices):
            a.data[:] = merged.data
            return a
        return self._finalize(merged)

    def transpose(self, a: MatrixLike) -> MatrixLike:
        if self._is_sparse(a):
            return _sp.csr_array(a.T)
        return a.T

    def hstack(self, blocks: Sequence[MatrixLike]) -> MatrixLike:
        blocks = list(blocks)
        if any(self._is_sparse(b) for b in blocks):
            return self._finalize(_sp.hstack(blocks, format="csr"))
        return np.hstack(blocks)

    def vstack(self, blocks: Sequence[MatrixLike]) -> MatrixLike:
        blocks = list(blocks)
        if any(self._is_sparse(b) for b in blocks):
            return self._finalize(_sp.vstack(blocks, format="csr"))
        return np.vstack(blocks)

    def inv(self, a: MatrixLike) -> np.ndarray:
        # Inverses of sparse matrices are generically dense; solve dense.
        return np.linalg.inv(self.materialize(a))

    def solve(self, a: MatrixLike, b: MatrixLike) -> np.ndarray:
        if self._is_sparse(a):
            from scipy.sparse.linalg import spsolve

            x = spsolve(_sp.csc_array(a), self.materialize(b))
            return np.asarray(x, dtype=np.float64).reshape(a.shape[1], -1)
        return np.linalg.solve(a, self.materialize(b))

    def norm(self, a: MatrixLike) -> float:
        if self._is_sparse(a):
            return float(np.sqrt((a.data * a.data).sum()))
        return super().norm(a)

    def max_abs(self, a: MatrixLike) -> float:
        if self._is_sparse(a):
            return float(np.max(np.abs(a.data))) if a.nnz else 0.0
        return super().max_abs(a)

    # -- factored-delta kernels ------------------------------------------
    def compact(
        self, u: np.ndarray, v: np.ndarray, rtol: float
    ) -> tuple[np.ndarray, np.ndarray]:
        # Factors are thin: dense QR/SVD is the right kernel even here.
        return super().compact(self.materialize(u), self.materialize(v), rtol)

    # -- inspection ------------------------------------------------------
    def materialize(self, a: MatrixLike) -> np.ndarray:
        if self._is_sparse(a):
            return np.asarray(a.todense(), dtype=np.float64)
        return super().materialize(a)

    def is_native(self, value: MatrixLike) -> bool:
        return self._is_sparse(value) or super().is_native(value)

    def nbytes(self, a: MatrixLike) -> int:
        if self._is_sparse(a):
            return int(a.data.nbytes + a.indices.nbytes + a.indptr.nbytes)
        return super().nbytes(a)

    def density(self, a: MatrixLike) -> float:
        if self._is_sparse(a):
            size = a.shape[0] * a.shape[1]
            return float(a.nnz) / size if size else 0.0
        return 1.0

    # -- predictive cost hooks (planner) ---------------------------------
    #: Wall-time penalty of one sparse-kernel FLOP versus one dense BLAS
    #: FLOP (indirect indexing, no vectorized fused multiply-adds).  The
    #: planner uses it so near-threshold densities don't flap to sparse.
    est_overhead: float = 4.0

    #: Penalty of one *structure-mutating* FLOP (``add_outer``'s CSR
    #: merge/rebuild) — index arrays are reallocated and re-sorted, which
    #: costs far more per touched entry than a streaming matvec pass.
    #: Shipped equal to :attr:`est_overhead`; machine calibration
    #: (:mod:`repro.calibrate`) fits the two independently.
    est_update_overhead: float = 4.0

    #: Penalty of one sparse x sparse product FLOP.  The expected-count
    #: model ``2 nnz_a nnz_b / m`` prices multiply-adds only; real CSR
    #: spgemm also allocates, gathers and sorts the result structure,
    #: which measures at 1-2 orders of magnitude above the flop count.
    #: Shipped as a conservative lower bound; calibration fits the
    #: machine's true value.
    est_spgemm_overhead: float = 32.0

    #: CSR kernel calls pay index validation and format dispatch on top
    #: of the Python-level cost every backend has.
    est_call_overhead_flops: float = 30_000.0

    #: In-place execution saves less here than on dense state: CSR
    #: results still allocate structure, so only the dense (thin-factor)
    #: legs of a fused trigger shed their allocator traffic.
    est_inplace_discount: float = 0.85

    def est_stored_density(self, rows: int, cols: int, density: float) -> float:
        if self._worth_sparse_shape(rows, cols) and density <= self.sparsify_below:
            return float(density)
        return 1.0

    def est_matmul_flops(
        self,
        a_shape: tuple[int, int],
        b_shape: tuple[int, int],
        a_density: float = 1.0,
        b_density: float = 1.0,
    ) -> float:
        n, m = a_shape
        p = b_shape[1]
        da = self.est_stored_density(n, m, a_density)
        db = self.est_stored_density(m, p, b_density)
        a_sp, b_sp = da < 1.0, db < 1.0
        if not a_sp and not b_sp:
            return super().est_matmul_flops(a_shape, b_shape)
        nnz_a = da * n * m
        nnz_b = db * m * p
        if a_sp and b_sp:
            work = max(2.0 * nnz_a * nnz_b / max(m, 1), 2.0 * nnz_a)
            return self.est_spgemm_overhead * work
        if a_sp:
            work = 2.0 * nnz_a * p
        else:
            work = 2.0 * n * nnz_b
        return self.est_overhead * work

    def est_add_flops(
        self, shape: tuple[int, int], density: float = 1.0
    ) -> float:
        d = self.est_stored_density(*shape, density)
        if d < 1.0:
            return self.est_overhead * d * shape[0] * shape[1]
        return super().est_add_flops(shape)

    def est_add_outer_flops(
        self,
        shape: tuple[int, int],
        density: float = 1.0,
        rank: int = 1,
        u_nnz_per_col: float | None = None,
    ) -> float:
        rows, cols = shape
        d = self.est_stored_density(rows, cols, density)
        if d >= 1.0:
            return super().est_add_outer_flops(shape, density, rank, u_nnz_per_col)
        upc = rows if u_nnz_per_col is None else u_nnz_per_col
        # Sparse outer accumulation: the delta's nonzeros plus a CSR
        # structure rebuild touching the state's nonzeros.
        return self.est_update_overhead * (
            2.0 * upc * cols * rank + d * rows * cols
        )

    # -- cost hooks ------------------------------------------------------
    def matmul_flops(self, a: MatrixLike, b: MatrixLike) -> int:
        a_sp, b_sp = self._is_sparse(a), self._is_sparse(b)
        n, m = a.shape
        p = b.shape[1]
        if a_sp and b_sp:
            # Expected count for random sparsity patterns.
            return max(2 * int(a.nnz) * int(b.nnz) // max(m, 1), 2 * int(a.nnz))
        if a_sp:
            return 2 * int(a.nnz) * p
        if b_sp:
            return 2 * n * int(b.nnz)
        return flops.matmul_flops(n, m, p)

    def add_flops(self, a: MatrixLike) -> int:
        if self._is_sparse(a):
            return int(a.nnz)
        return super().add_flops(a)

    def scale_flops(self, a: MatrixLike) -> int:
        if self._is_sparse(a):
            return int(a.nnz)
        return super().scale_flops(a)

    def __repr__(self) -> str:
        return (
            f"SparseBackend(min_sparse_dim={self.min_sparse_dim}, "
            f"sparsify_below={self.sparsify_below}, "
            f"densify_above={self.densify_above})"
        )
