"""Pluggable execution backends for the evaluation spine.

The maintenance machinery (executor, triggers, iterative maintainers,
batch compaction, distributed tiles) is written against the
:class:`~repro.backends.base.Backend` kernel interface; this package
provides the dense (NumPy, default) and sparse (SciPy CSR)
implementations plus a tiny registry:

>>> from repro.backends import get_backend
>>> get_backend("dense").name
'dense'

Anywhere the API accepts a ``backend=`` argument it takes a backend
name, a :class:`Backend` instance, or ``None`` for the process default.
"""

from __future__ import annotations

from .base import Backend, MatrixLike
from .dense import DenseBackend
from .sparse import SparseBackend

#: Shared default instance — the seed's exact dense semantics.
DENSE = DenseBackend()

_FACTORIES = {
    "dense": lambda: DENSE,
    "sparse": SparseBackend,
}


def available_backends() -> list[str]:
    """Registered backend names."""
    return sorted(_FACTORIES)


def get_backend(backend: "str | Backend | None") -> Backend:
    """Resolve a backend name / instance / ``None`` to an instance.

    ``None`` resolves to the shared dense default; names go through the
    registry (``"sparse"`` constructs a fresh :class:`SparseBackend`
    with default thresholds — build one yourself for custom cutoffs).
    """
    if backend is None:
        return DENSE
    if isinstance(backend, Backend):
        return backend
    try:
        return _FACTORIES[backend]()
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {available_backends()}"
        ) from None


__all__ = [
    "DENSE",
    "Backend",
    "DenseBackend",
    "MatrixLike",
    "SparseBackend",
    "available_backends",
    "get_backend",
]
