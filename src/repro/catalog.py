"""Multi-view catalog: common-subexpression sharing across tenant sessions.

Serving many tenants means many sessions over *overlapping* programs —
``A^2`` feeding ``A^3``, OLS regressions sharing one Gram matrix.  Run
independently, N tenants pay N maintenance bills; the whole point of
factored propagation is lost the moment the same intermediate is kept
fresh N times.  A :class:`ViewCatalog` collapses that: it structurally
hashes every registered subprogram (canonicalized through the ``expr``
simplifier, so ``A + A`` and ``2*A`` collide — see
:mod:`repro.expr.structural`), keeps one **lineage DAG node** per
distinct subexpression, and maintains each node exactly once per
update through a single merged inner session.  Tenants hold
:class:`CatalogSession` handles whose view names alias DAG nodes.

Memory is cache-aside under ``memory_budget``: when the admitted
footprint exceeds the budget, frontier nodes (no admitted dependents)
are flushed first and then demoted to REEVAL-on-demand — reads
recompute them from the maintained state and are charged
:func:`repro.cost.estimate.catalog_demand_cost`; once a node's
accumulated demand charges exceed its hit-priced admission cost it is
re-admitted and pinned again.  The exactness contract
(docs/invariants.md):

* **No eviction**: every tenant read is bitwise identical to the same
  program maintained by its own independent session — same kernels,
  same order, per distinct node only once.
* **Evicted**: reads are bitwise equal to re-evaluating the node's
  expression against the maintained admitted state (exact REEVAL);
  re-admission pins that re-evaluated value and resumes incremental
  maintenance from it.

Thread-safety: one re-entrant lock serializes every mutation, so any
number of tenant writer threads (e.g. one :class:`ViewServer
<repro.runtime.serving.ViewServer>` per tenant, via
:meth:`CatalogSession.serve`) can share a catalog; readers only touch
published immutable epoch snapshots and are never blocked — not even
by eviction, which runs on writer threads under the lock.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from .backends import get_backend
from .compiler.program import Program, Statement
from .cost import counters
from .cost.estimate import (
    CATALOG_READMIT_HYSTERESIS,
    catalog_admission_cost,
    catalog_demand_cost,
)
from .expr import Expr, MatrixSymbol, matrix_symbols, structural_key, substitute_symbol
from .runtime.executor import evaluate
from .runtime.serving import SessionEngine, ViewServer
from .runtime.session import IVMSession, ReevalSession
from .runtime.updates import FactoredUpdate
from .runtime.views import ViewStore

#: Name prefix of internal DAG node symbols.  Tenant programs parsed by
#: the frontend cannot produce identifiers starting with ``_``, so node
#: names never collide with tenant view or input names.
NODE_PREFIX = "_S"


class CatalogError(ValueError):
    """Raised for invalid catalog registrations."""


class CatalogInputMismatchError(CatalogError):
    """A tenant declared a shared input inconsistently with the catalog.

    Shared base tables must agree across tenants — same shape and, when
    a later tenant supplies initial values for an input the catalog
    already maintains, bitwise-equal current contents (pass the value
    of :meth:`ViewCatalog.read` for mid-stream registration).
    """


@dataclass
class CatalogStats:
    """Work and sharing counters of one :class:`ViewCatalog`.

    ``node_refreshes`` counts admitted DAG nodes maintained per update
    (each exactly once) — the quantity the differential harness asserts
    scales with *distinct* subexpressions, not with tenant count.
    """

    tenants: int = 0
    registered_views: int = 0
    shared_hits: int = 0
    updates: int = 0
    node_refreshes: int = 0
    demand_reads: int = 0
    evictions: int = 0
    readmissions: int = 0

    def as_dict(self) -> dict:
        """Plain-dict form (for CLI/bench JSON reports)."""
        return dataclasses.asdict(self)


@dataclass
class CatalogNode:
    """One distinct subexpression in the lineage DAG.

    ``expr`` is the first-registered form over base inputs and earlier
    node symbols (the form actually maintained — never rewritten, so
    the first registrant's bitwise trajectory is preserved);
    ``resolved`` substitutes node references away down to base inputs
    and is what ``key`` digests, so later tenants spelling the same
    value through a different chain of intermediate names still collide
    here.
    """

    name: str
    symbol: MatrixSymbol
    expr: Expr
    resolved: Expr
    key: str
    deps: tuple[str, ...]
    admitted: bool = True
    tenants: int = 1
    demand_reads: int = 0
    demand_flops: float = 0.0
    evicted_at: int = 0


class ViewCatalog:
    """A shared maintenance tier over overlapping tenant programs.

    Parameters
    ----------
    memory_budget:
        Byte budget for admitted node state (``None``: everything stays
        admitted).  Over budget, frontier nodes demote to
        REEVAL-on-demand, cheapest-retention first; flush-first.
    strategy, mode, backend, rank, optimize:
        Maintenance configuration of the single inner session every
        admitted node is maintained by (``INCR``/``REEVAL``,
        ``interpret``/``codegen``, execution backend, expected update
        width, Section 6 trigger optimizer) — fixed at construction so
        every tenant shares one trajectory.
    counter:
        FLOP counter charged with all shared maintenance and on-demand
        re-evaluation work.
    """

    def __init__(
        self,
        *,
        memory_budget: int | None = None,
        strategy: str = "INCR",
        mode: str = "interpret",
        backend=None,
        rank: int = 1,
        optimize: bool = False,
        counter: counters.Counter = counters.NULL_COUNTER,
    ):
        if strategy not in ("INCR", "REEVAL"):
            raise ValueError(f"catalog strategy must be INCR or REEVAL, "
                             f"got {strategy!r}")
        if memory_budget is not None and memory_budget < 0:
            raise ValueError("memory_budget must be >= 0 bytes or None")
        self.memory_budget = memory_budget
        self.strategy = strategy
        self.mode = mode
        self.backend = get_backend(backend)
        self.rank = rank
        self.optimize = optimize
        self.counter = counter
        self.stats = CatalogStats()
        self.nodes: dict[str, CatalogNode] = {}
        self.sessions: list[CatalogSession] = []
        self._by_key: dict[str, CatalogNode] = {}
        self._order: list[str] = []
        self._input_syms: dict[str, MatrixSymbol] = {}
        self._input_state: dict[str, np.ndarray] = {}
        self._dims: dict[str, int] = {}
        self._session = None
        self._next_id = 0
        self._touched_cache: dict[str, int] = {}
        self._lock = threading.RLock()

    # -- registration ----------------------------------------------------
    def open(self, program: Program, inputs: Mapping[str, np.ndarray] | None,
             dims: Mapping[str, int] | None = None) -> "CatalogSession":
        """Register a tenant program; return its :class:`CatalogSession`.

        Each statement is keyed by the structural hash of its resolved
        canonical form: hits alias existing DAG nodes (maintained work
        is shared from this update on), misses create new nodes.  Bare
        references (``F := B``) alias without a node at all.  Inputs
        already known to the catalog may be omitted from ``inputs``;
        when supplied they must match the catalog's current state
        bitwise (:class:`CatalogInputMismatchError` otherwise).
        """
        with self._lock:
            dirty = self._absorb_inputs(program, inputs or {}, dims)
            mapping: dict[str, str] = {}
            created = 0
            for stmt in program.statements:
                expr = stmt.expr
                for view_name in list(mapping):
                    expr = substitute_symbol(
                        expr, view_name, self._symbol_for(mapping[view_name]))
                if isinstance(expr, MatrixSymbol):
                    # A bare alias: no node, no maintenance of its own.
                    mapping[stmt.target.name] = expr.name
                    node = self.nodes.get(expr.name)
                    if node is not None:
                        node.tenants += 1
                        self.stats.shared_hits += 1
                    continue
                resolved = self._resolve(expr)
                key = structural_key(resolved)
                node = self._by_key.get(key)
                if node is not None:
                    node.tenants += 1
                    self.stats.shared_hits += 1
                    if not node.admitted:
                        self._admit(node)
                        dirty = True
                else:
                    node = self._create_node(expr, resolved, key)
                    created += 1
                    dirty = True
                mapping[stmt.target.name] = node.name
            if dirty or created:
                self._rebuild()
            self._enforce_budget()
            session = CatalogSession(self, program, mapping)
            self.sessions.append(session)
            self.stats.tenants += 1
            self.stats.registered_views += len(program.statements)
            return session

    def _symbol_for(self, name: str) -> MatrixSymbol:
        node = self.nodes.get(name)
        if node is not None:
            return node.symbol
        return self._input_syms[name]

    def _absorb_inputs(self, program, inputs, dims) -> bool:
        if dims:
            for name, size in dims.items():
                known = self._dims.get(name)
                if known is not None and known != int(size):
                    raise CatalogInputMismatchError(
                        f"dimension {name!r} is {known} in the catalog, "
                        f"tenant binds {size}")
                self._dims[name] = int(size)
        dirty = False
        for sym in program.inputs:
            known = self._input_syms.get(sym.name)
            if known is not None:
                if known.shape != sym.shape:
                    raise CatalogInputMismatchError(
                        f"input {sym.name!r} declared {sym.shape}, catalog "
                        f"has {known.shape}")
                if sym.name in inputs:
                    current = self.read(sym.name)
                    offered = np.asarray(inputs[sym.name], dtype=np.float64)
                    if (current.shape != offered.shape
                            or not np.array_equal(current, offered)):
                        raise CatalogInputMismatchError(
                            f"input {sym.name!r} differs from the catalog's "
                            f"maintained state; shared base tables must "
                            f"match bitwise (register with the value of "
                            f"catalog.read({sym.name!r}))")
                continue
            if sym.name not in inputs:
                raise CatalogError(
                    f"missing initial value for new input {sym.name!r}")
            self._input_syms[sym.name] = sym
            self._input_state[sym.name] = np.array(
                inputs[sym.name], dtype=np.float64, order="C")
            dirty = True
        return dirty

    def _resolve(self, expr: Expr) -> Expr:
        for sym in matrix_symbols(expr):
            node = self.nodes.get(sym.name)
            if node is not None:
                expr = substitute_symbol(expr, sym.name, node.resolved)
        return expr

    def _create_node(self, expr: Expr, resolved: Expr, key: str) -> CatalogNode:
        deps = tuple(sorted(
            sym.name for sym in matrix_symbols(expr) if sym.name in self.nodes))
        for dep in deps:
            if not self.nodes[dep].admitted:
                self._admit(self.nodes[dep])
        name = f"{NODE_PREFIX}{self._next_id}"
        self._next_id += 1
        shape = expr.shape
        node = CatalogNode(
            name=name, symbol=MatrixSymbol(name, shape.rows, shape.cols),
            expr=expr, resolved=resolved, key=key, deps=deps,
        )
        self.nodes[name] = node
        self._by_key[key] = node
        self._order.append(name)
        return node

    def _admit(self, node: CatalogNode) -> None:
        for dep in node.deps:
            if not self.nodes[dep].admitted:
                self._admit(self.nodes[dep])
        node.admitted = True
        node.demand_reads = 0
        node.demand_flops = 0.0

    # -- maintenance -----------------------------------------------------
    def apply_update(self, update: FactoredUpdate) -> None:
        """Fan one factored update out through the lineage DAG.

        The single inner session maintains every admitted node exactly
        once; ``stats.node_refreshes`` is charged with the number of
        admitted nodes downstream of the update's target.
        """
        with self._lock:
            if update.target not in self._input_syms:
                raise KeyError(f"no catalog input named {update.target!r}")
            if self._session is None:
                update.validate_finite()
                arr = self._input_state[update.target]
                arr += update.u_block @ update.v_block.T
            else:
                self._session.apply_update(update)
            self.stats.updates += 1
            self.stats.node_refreshes += self._touched_count(update.target)

    def apply_updates(self, updates: Iterable[FactoredUpdate]) -> None:
        """Apply a sequence of factored updates, in order."""
        for update in updates:
            self.apply_update(update)

    def flush(self) -> None:
        """Land any deferred maintenance in the inner session."""
        with self._lock:
            if self._session is not None:
                self._session.flush()

    def _touched_count(self, target: str) -> int:
        count = self._touched_cache.get(target)
        if count is None:
            count = sum(
                1 for name in self._order
                if self.nodes[name].admitted and any(
                    sym.name == target
                    for sym in matrix_symbols(self.nodes[name].resolved))
            )
            self._touched_cache[target] = count
        return count

    # -- reads -----------------------------------------------------------
    def read(self, name: str) -> np.ndarray:
        """Current dense value of a catalog input or DAG node.

        Admitted nodes serve from maintained state (flushed first);
        evicted nodes re-evaluate on demand against the admitted state,
        are charged for it, and re-admit themselves once the accumulated
        charges out-price staying evicted.  Do not mutate the result.
        """
        with self._lock:
            if self._session is not None:
                self._session.flush()
            if name in self._input_syms:
                if self._session is not None:
                    return self._session.views.get_dense(name)
                return self._input_state[name]
            node = self.nodes.get(name)
            if node is None:
                raise KeyError(f"no catalog view named {name!r}")
            if node.admitted:
                return self._session.views.get_dense(name)
            value = self._demand_value(node, {})
            self._maybe_readmit(node, value)
            return value

    def _env(self) -> dict[str, np.ndarray]:
        if self._session is not None:
            return self._session.views.as_env()
        return dict(self._input_state)

    def _demand_value(self, node: CatalogNode, cache: dict) -> np.ndarray:
        if node.name in cache:
            return cache[node.name]
        env = self._env()
        for dep in node.deps:
            dep_node = self.nodes[dep]
            if dep not in env:
                env[dep] = self._demand_value(dep_node, cache)
        value = evaluate(node.expr, env, dims=self._dims,
                         counter=self.counter, backend=self.backend)
        dense = np.asarray(self.backend.materialize(value), dtype=np.float64)
        rows, cols = dense.shape
        node.demand_reads += 1
        node.demand_flops += catalog_demand_cost(rows, cols, rows)
        self.stats.demand_reads += 1
        cache[node.name] = dense
        return dense

    def _maybe_readmit(self, node: CatalogNode, value: np.ndarray) -> None:
        rows, cols = value.shape
        since = max(self.stats.updates - node.evicted_at, 0)
        per_read = since / node.demand_reads if node.demand_reads else float(since)
        threshold = CATALOG_READMIT_HYSTERESIS * catalog_admission_cost(
            rows, cols, rows, updates_per_read=per_read, rank=self.rank)
        if node.demand_flops < threshold:
            return
        self._admit(node)
        self.stats.readmissions += 1
        self._rebuild()
        # Pin the on-demand value: re-admission resumes incremental
        # maintenance from exactly the REEVAL state the caller just saw.
        self._session.views.set(node.name, value)
        self._enforce_budget(protect=frozenset({node.name}))

    # -- admission / eviction --------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes of admitted node state (the budgeted footprint)."""
        with self._lock:
            if self._session is None:
                return 0
            admitted = [n for n in self._order if self.nodes[n].admitted]
            return int(self._session.views.total_bytes(admitted))

    def _enforce_budget(self, protect: frozenset = frozenset()) -> None:
        if self.memory_budget is None or self._session is None:
            return
        # Eviction is flush-first: deferred deltas land while the node
        # is still maintained, never against a demoted one.
        self._session.flush()
        admitted = [self.nodes[n] for n in self._order if self.nodes[n].admitted]
        footprint = {
            node.name: int(self._session.views.total_bytes([node.name]))
            for node in admitted
        }
        total = sum(footprint.values())
        evicted = False
        while total > self.memory_budget:
            candidates = [
                node for node in admitted
                if node.admitted and node.name not in protect
                and not any(other.admitted and node.name in other.deps
                            for other in admitted)
            ]
            if not candidates:
                break
            victim = min(
                candidates,
                key=lambda n: self._retention_score(n, footprint[n.name]))
            victim.admitted = False
            victim.evicted_at = self.stats.updates
            victim.demand_reads = 0
            victim.demand_flops = 0.0
            self.stats.evictions += 1
            total -= footprint[victim.name]
            evicted = True
        if evicted:
            self._rebuild()

    def _retention_score(self, node: CatalogNode, nbytes: int) -> float:
        arr = self._session.views.get(node.name)
        rows, cols = self.backend.shape(arr)
        saved = catalog_demand_cost(rows, cols, rows)
        return (node.tenants + node.demand_reads) * saved / max(nbytes, 1)

    # -- the merged inner session ----------------------------------------
    def _rebuild(self) -> None:
        admitted = [name for name in self._order if self.nodes[name].admitted]
        old = self._session
        preserved: dict[str, np.ndarray] = {}
        if old is not None:
            old.flush()
            for name in old.views.names():
                preserved[name] = np.array(
                    old.views.get_dense(name), dtype=np.float64, order="C")
            for name in self._input_syms:
                if name in preserved:
                    self._input_state[name] = preserved[name]
        if not admitted:
            self._session = None
            self._touched_cache = {}
            return
        store = ViewStore(dict(self._dims), backend=self.backend)
        for name in self._input_syms:
            store.set(name, self._input_state[name])
        statements = []
        for name in admitted:
            node = self.nodes[name]
            statements.append(Statement(node.symbol, node.expr))
            if name in preserved:
                # An already-maintained node carries its trajectory over
                # bitwise; only genuinely new nodes materialize fresh.
                store.set(name, preserved[name])
            else:
                store.set(name, evaluate(
                    node.expr, store.as_env(), dims=self._dims,
                    counter=self.counter, backend=self.backend))
        program = Program(tuple(self._input_syms.values()), tuple(statements),
                          outputs=tuple(admitted))
        if self.strategy == "REEVAL":
            self._session = ReevalSession(
                program, store, counter=self.counter, backend=self.backend)
        else:
            self._session = IVMSession(
                program, store, rank=self.rank, optimize=self.optimize,
                mode=self.mode, counter=self.counter, backend=self.backend)
        self._touched_cache = {}

    # -- introspection ---------------------------------------------------
    def lineage(self) -> list[dict]:
        """The lineage DAG, one record per node (CLI/bench reporting)."""
        with self._lock:
            records = []
            for name in self._order:
                node = self.nodes[name]
                dependents = sorted(
                    other for other in self._order
                    if name in self.nodes[other].deps)
                records.append({
                    "name": name,
                    "expr": repr(Statement(node.symbol, node.expr)),
                    "key": node.key[:12],
                    "deps": list(node.deps),
                    "dependents": dependents,
                    "admitted": node.admitted,
                    "tenants": node.tenants,
                    "demand_reads": node.demand_reads,
                })
            return records

    @property
    def distinct_nodes(self) -> int:
        """Number of distinct subexpressions in the DAG."""
        return len(self.nodes)


#: ISSUE-facing alias: ``Catalog.open(...)`` reads naturally at call sites.
Catalog = ViewCatalog


class CatalogViews:
    """Read facade presenting a tenant's names over the shared DAG.

    Duck-types the slice of :class:`~repro.runtime.views.ViewStore` the
    serving layer reads (``names``/``get_dense``), resolving tenant
    view names through the session's alias mapping.
    """

    def __init__(self, session: "CatalogSession"):
        self._session = session

    def names(self) -> list[str]:
        """Every name this tenant may read: its views and its inputs."""
        return (list(self._session.mapping)
                + list(self._session.program.input_names))

    def get_dense(self, name: str) -> np.ndarray:
        """Current dense value of a tenant view or input (do not mutate)."""
        return self._session[name]


class CatalogSession:
    """One tenant's handle on a shared :class:`ViewCatalog`.

    Mirrors the :class:`~repro.runtime.session.Session` surface the
    rest of the runtime expects — ``apply_update``/``flush``/item reads
    plus ``program`` and ``views`` — so serving, benchmarks and the CLI
    treat catalog-backed tenants exactly like private sessions.  All
    mutation delegates to the catalog (and thus to the one shared inner
    session) under the catalog lock.
    """

    def __init__(self, catalog: ViewCatalog, program: Program,
                 mapping: dict[str, str]):
        self.catalog = catalog
        self.program = program
        self.mapping = dict(mapping)
        self.update_count = 0
        self.views = CatalogViews(self)
        self.plan = None

    def __getitem__(self, name: str) -> np.ndarray:
        """Current dense value of a tenant view or input (do not mutate)."""
        target = self.mapping.get(name)
        if target is None:
            if name in self.program.input_names:
                target = name
            else:
                raise KeyError(f"no view or input named {name!r}")
        return self.catalog.read(target)

    def view(self, name: str) -> np.ndarray:
        """Explicit read accessor (alias of item access)."""
        return self[name]

    def apply_update(self, update: FactoredUpdate) -> None:
        """Apply one factored update to the shared base state.

        Every tenant registered on the catalog observes it: shared base
        tables have one state, maintained once per distinct node.
        """
        self.catalog.apply_update(update)
        self.update_count += 1

    def apply_updates(self, updates: Iterable[FactoredUpdate]) -> None:
        """Apply a sequence of factored updates, in order."""
        for update in updates:
            self.apply_update(update)

    def flush(self) -> None:
        """Land any deferred shared maintenance."""
        self.catalog.flush()

    @property
    def checkpointer(self):
        """Catalog tenants have no private checkpointer."""
        return None

    def serve(self, **options) -> ViewServer:
        """Serve this tenant's views concurrently from the catalog.

        Returns a :class:`~repro.runtime.serving.ViewServer` over a
        :class:`CatalogEngine`, whose epoch captures run atomically
        under the catalog lock — concurrent tenants' writers interleave
        *between* captures, never inside one, so every published
        snapshot is an internally consistent flushed state.
        """
        server = ViewServer(CatalogEngine(self), **options)
        server.plan = self.plan
        return server


class CatalogEngine(SessionEngine):
    """Serving engine whose snapshot capture is catalog-atomic.

    The stock :class:`~repro.runtime.serving.SessionEngine` copies
    published views one at a time; with several tenants writing to one
    catalog, a foreign update could land between two copies and tear
    the snapshot across epochs.  Holding the catalog lock (and flushing
    under it) for the whole capture closes that window.
    """

    def capture(self, names: Iterable[str]) -> dict[str, np.ndarray]:
        """Fresh dense copies of ``names``, atomically vs other tenants."""
        with self.target.catalog._lock:
            self.target.flush()
            return super().capture(names)


__all__ = [
    "Catalog",
    "CatalogEngine",
    "CatalogError",
    "CatalogInputMismatchError",
    "CatalogNode",
    "CatalogSession",
    "CatalogStats",
    "CatalogViews",
    "NODE_PREFIX",
    "ViewCatalog",
]
