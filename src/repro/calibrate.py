"""Microbenchmark-driven calibration of the planner's cost constants.

The cost model (:mod:`repro.cost.estimate`, :mod:`repro.planner`) ranks
maintenance configurations through each backend's ``est_*`` hooks, whose
constant factors — per-kernel-call overhead and the sparse-kernel
per-FLOP penalty — ship as fixed class constants
(:attr:`~repro.backends.base.Backend.est_call_overhead_flops`,
:attr:`~repro.backends.sparse.SparseBackend.est_overhead`).  LINVIEW's
own evaluation shows the dense/sparse and IVM/re-eval crossover points
are machine-dependent: a laptop with slow BLAS and a server with fast
MKL put the boundary at different densities, so hard-coded constants
mis-plan exactly the workloads near the boundary.

This module closes the loop the way adaptive query processors do: it
**times the backends' core kernels** (``matmul``, ``add_outer``, sparse
matvec and CSR row slicing) at a few sizes and densities on the current
machine, **fits** per-backend throughput, call overhead, and the sparse
per-FLOP penalty from those samples, and **caches** the fit as JSON
keyed by the platform + library versions so later sessions load it for
free.  The planner (:func:`repro.planner.plan_program`, the advisor's
backend grid) auto-loads the cache; ``repro calibrate`` runs the pass
from the CLI.

Cache resolution order:

* an explicit ``path`` argument;
* ``$REPRO_CALIBRATION`` (a file path, or ``off`` to disable);
* ``~/.cache/linview-repro/calibration.json``.

A cache whose key does not match the current machine fingerprint is
treated as absent (stale-key invalidation), so upgrading NumPy/SciPy or
moving the cache between machines silently falls back to the shipped
constants until ``repro calibrate`` is re-run.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from copy import copy as _shallow_copy
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from .backends import Backend, get_backend

#: Cache schema version (bump on incompatible layout changes).
SCHEMA = 1

#: Environment variable overriding the cache path (``off`` disables).
CACHE_ENV = "REPRO_CALIBRATION"

#: Values of :data:`CACHE_ENV` that disable cache loading entirely.
_DISABLED = {"off", "none", "0", "disabled"}

#: Clamp range for fitted per-call overhead (dense-FLOP equivalents).
#: Guards against clock jitter producing absurd constants.
OVERHEAD_FLOPS_RANGE = (100.0, 1e7)

#: Clamp range for the fitted sparse streaming-kernel per-FLOP penalty.
SPARSE_OVERHEAD_RANGE = (1.0, 64.0)

#: Clamp range for the structure-mutating (``add_outer``) penalty; CSR
#: merges genuinely cost hundreds of dense FLOPs per touched entry.
SPARSE_UPDATE_OVERHEAD_RANGE = (1.0, 512.0)

#: Clamp range for the sparse x sparse product penalty — spgemm's
#: allocate/gather/sort work measures at 1-2 orders of magnitude above
#: the expected multiply-add count.
SPARSE_SPGEMM_OVERHEAD_RANGE = (1.0, 1024.0)

#: Clamp range for the in-place call-overhead discount (the fraction of
#: per-call cost an ``out=`` kernel still pays: 1.0 = no saving).
INPLACE_DISCOUNT_RANGE = (0.05, 1.0)

#: Clamp range for state-conversion passes per stored entry (the
#: re-planning switch cost constant).  CSR construction genuinely
#: costs dozens-to-hundreds of dense-FLOP equivalents per scanned
#: entry (full scan + structure build), hence the wide top.
CONVERT_PASSES_RANGE = (0.25, 256.0)

#: Clamp range for the QR+SVD compaction constant (the ``m^3`` factor
#: of :func:`repro.cost.estimate.compaction_cost`).  LAPACK's small-core
#: SVD measures tens-to-thousands of m^3 passes once dispatch overhead
#: is folded in at the widths batches actually use.
COMPACTION_FACTOR_RANGE = (2.0, 20_000.0)

#: Clamp range for the fitted per-IPC-round-trip cost (dense-FLOP
#: equivalents): a spawn-pipe message costs ~10 microseconds of
#: latency, i.e. 1e4-1e6 FLOPs on ordinary machines.
IPC_CALL_FLOPS_RANGE = (1e3, 1e7)

#: Clamp range for the fitted dense-FLOP-per-pipe-byte cost
#: (~flop_rate / pipe bandwidth; pipes move GB/s, BLAS does GFLOP/s).
IPC_FLOPS_PER_BYTE_RANGE = (0.05, 50.0)


def cache_key() -> str:
    """Fingerprint the cached constants are valid for.

    Machine + OS + Python + NumPy/SciPy versions: any of these changing
    can move kernel constant factors, so any of them changing must
    invalidate the cache.
    """
    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - exercised on the no-scipy leg
        scipy_version = "none"
    return "/".join((
        platform.machine() or "unknown",
        platform.system() or "unknown",
        platform.python_version(),
        f"numpy-{np.__version__}",
        f"scipy-{scipy_version}",
        f"schema-{SCHEMA}",
    ))


def default_cache_path() -> Path | None:
    """Where the calibration cache lives (None when disabled via env)."""
    env = os.environ.get(CACHE_ENV)
    if env is not None:
        if env.strip().lower() in _DISABLED:
            return None
        return Path(env)
    return Path.home() / ".cache" / "linview-repro" / "calibration.json"


@dataclass(frozen=True)
class KernelSample:
    """One timed kernel invocation: what ran, how long, model FLOPs."""

    kernel: str
    seconds: float
    model_flops: float


@dataclass(frozen=True)
class BackendCalibration:
    """Fitted cost constants for one backend on one machine."""

    backend: str
    #: Sustained dense-equivalent throughput (large-kernel FLOPs/s).
    flops_per_second: float
    #: Fixed cost of one kernel invocation, in dense-FLOP equivalents
    #: (replaces :attr:`Backend.est_call_overhead_flops`).
    call_overhead_flops: float
    #: Per-FLOP penalty of sparse *streaming* kernels vs dense BLAS
    #: (replaces :attr:`SparseBackend.est_overhead`); ``None`` for dense
    #: backends.
    sparse_overhead: float | None = None
    #: Per-FLOP penalty of structure-mutating sparse updates (replaces
    #: :attr:`SparseBackend.est_update_overhead`); ``None`` for dense.
    sparse_update_overhead: float | None = None
    #: Per-FLOP penalty of sparse x sparse products (replaces
    #: :attr:`SparseBackend.est_spgemm_overhead`); ``None`` for dense.
    sparse_spgemm_overhead: float | None = None
    #: Measured fraction of the call overhead an ``out=`` kernel still
    #: pays (replaces :attr:`Backend.est_inplace_discount`): the
    #: in-place vs out-of-place gap the fused codegen path banks on.
    inplace_discount: float | None = None
    #: Measured state-conversion passes per stored entry (replaces
    #: :attr:`Backend.est_convert_passes_per_entry`; prices the
    #: re-planning switch, see :class:`ReplanMonitor`).
    convert_passes_per_entry: float | None = None
    #: Measured ``m^3`` constant of the QR+SVD batch compaction
    #: (replaces :attr:`Backend.est_compaction_factor`; prices
    #: :func:`repro.cost.estimate.compaction_cost` and with it every
    #: plan's recommended batch width).
    compaction_factor: float | None = None
    #: Measured cost of one coordinator->worker pipe round trip, in
    #: dense-FLOP equivalents (replaces
    #: :attr:`Backend.est_ipc_call_flops`; prices the sharded cells of
    #: the planner grid via :meth:`Backend.est_broadcast`).
    ipc_call_flops: float | None = None
    #: Measured dense-FLOP equivalents per pipe byte (replaces
    #: :attr:`Backend.est_ipc_flops_per_byte`).
    ipc_flops_per_byte: float | None = None
    #: The raw measurements the fit came from (kept for reporting).
    samples: tuple[KernelSample, ...] = field(default=())

    def apply(self, be: Backend) -> Backend:
        """Overwrite ``be``'s estimate constants with the fitted ones.

        Mutates (and returns) ``be`` — callers who must not disturb
        shared instances should pass a copy (see :func:`calibrated`).
        """
        be.est_call_overhead_flops = float(self.call_overhead_flops)
        if self.sparse_overhead is not None and hasattr(be, "est_overhead"):
            be.est_overhead = float(self.sparse_overhead)
        if (self.sparse_update_overhead is not None
                and hasattr(be, "est_update_overhead")):
            be.est_update_overhead = float(self.sparse_update_overhead)
        if (self.sparse_spgemm_overhead is not None
                and hasattr(be, "est_spgemm_overhead")):
            be.est_spgemm_overhead = float(self.sparse_spgemm_overhead)
        if self.inplace_discount is not None:
            be.est_inplace_discount = float(self.inplace_discount)
        if self.convert_passes_per_entry is not None:
            be.est_convert_passes_per_entry = float(
                self.convert_passes_per_entry
            )
        if self.compaction_factor is not None:
            be.est_compaction_factor = float(self.compaction_factor)
        if self.ipc_call_flops is not None:
            be.est_ipc_call_flops = float(self.ipc_call_flops)
        if self.ipc_flops_per_byte is not None:
            be.est_ipc_flops_per_byte = float(self.ipc_flops_per_byte)
        return be

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "flops_per_second": self.flops_per_second,
            "call_overhead_flops": self.call_overhead_flops,
            "sparse_overhead": self.sparse_overhead,
            "sparse_update_overhead": self.sparse_update_overhead,
            "sparse_spgemm_overhead": self.sparse_spgemm_overhead,
            "inplace_discount": self.inplace_discount,
            "convert_passes_per_entry": self.convert_passes_per_entry,
            "compaction_factor": self.compaction_factor,
            "ipc_call_flops": self.ipc_call_flops,
            "ipc_flops_per_byte": self.ipc_flops_per_byte,
            "samples": [
                {"kernel": s.kernel, "seconds": s.seconds,
                 "model_flops": s.model_flops}
                for s in self.samples
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BackendCalibration":
        def _opt(name: str) -> float | None:
            value = data.get(name)
            return None if value is None else float(value)

        return cls(
            backend=str(data["backend"]),
            flops_per_second=float(data["flops_per_second"]),
            call_overhead_flops=float(data["call_overhead_flops"]),
            sparse_overhead=_opt("sparse_overhead"),
            sparse_update_overhead=_opt("sparse_update_overhead"),
            sparse_spgemm_overhead=_opt("sparse_spgemm_overhead"),
            inplace_discount=_opt("inplace_discount"),
            convert_passes_per_entry=_opt("convert_passes_per_entry"),
            compaction_factor=_opt("compaction_factor"),
            ipc_call_flops=_opt("ipc_call_flops"),
            ipc_flops_per_byte=_opt("ipc_flops_per_byte"),
            samples=tuple(
                KernelSample(str(s["kernel"]), float(s["seconds"]),
                             float(s["model_flops"]))
                for s in data.get("samples", ())
            ),
        )


@dataclass(frozen=True)
class Calibration:
    """A full calibration run: per-backend constants plus the cache key."""

    key: str
    backends: Mapping[str, BackendCalibration]

    def get(self, name: str) -> BackendCalibration | None:
        return self.backends.get(name)

    def apply(self, be: Backend) -> Backend:
        """Apply this calibration's constants to ``be`` (mutating it)."""
        entry = self.backends.get(be.name)
        return entry.apply(be) if entry is not None else be

    def as_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "key": self.key,
            "backends": {name: cal.as_dict()
                         for name, cal in sorted(self.backends.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Calibration":
        return cls(
            key=str(data["key"]),
            backends={
                name: BackendCalibration.from_dict(entry)
                for name, entry in data.get("backends", {}).items()
            },
        )

    def save(self, path: "Path | str | None" = None) -> Path:
        """Write the cache file (creating parent directories)."""
        target = Path(path) if path is not None else default_cache_path()
        if target is None:
            raise ValueError(
                f"calibration cache disabled via ${CACHE_ENV}; "
                "pass an explicit path"
            )
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return target


def load_calibration(path: "Path | str | None" = None) -> Calibration | None:
    """Load the cached calibration, or ``None`` when absent/stale/invalid.

    A cache written under a different :func:`cache_key` (other machine,
    other library versions) is *stale* and ignored — the planner then
    runs on the shipped class constants until recalibration.
    """
    target = Path(path) if path is not None else default_cache_path()
    if target is None or not target.exists():
        return None
    try:
        data = json.loads(target.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        return None
    if data.get("key") != cache_key():
        return None  # stale: fingerprint mismatch
    try:
        return Calibration.from_dict(data)
    except (KeyError, TypeError, ValueError):
        return None


# -- auto-loading for the planner -----------------------------------------

#: Memoized result of :func:`load_calibration` at the default path.
#: ``False`` = not looked up yet (distinct from "looked up, absent").
_AUTOLOADED: "Calibration | None | bool" = False


def autoload(refresh: bool = False) -> Calibration | None:
    """The default-path calibration, loaded once per process.

    ``refresh=True`` re-reads the file (tests, post-``repro calibrate``).
    """
    global _AUTOLOADED
    if refresh or _AUTOLOADED is False:
        _AUTOLOADED = load_calibration()
    return _AUTOLOADED


def calibrated(
    backend: "str | Backend | None",
    calibration: "Calibration | None | str" = "auto",
) -> Backend:
    """Resolve ``backend`` with calibrated cost constants applied.

    ``calibration="auto"`` (the planner default) uses the memoized
    default-path cache; ``None`` disables calibration; a
    :class:`Calibration` is used verbatim.  When constants apply, a
    *shallow copy* of the backend is returned so shared instances (the
    ``DENSE`` singleton, caller-provided backends) keep their class
    defaults for everyone else.
    """
    be = get_backend(backend)
    cal = autoload() if calibration == "auto" else calibration
    if cal is None or cal.get(be.name) is None:
        return be
    return cal.apply(_shallow_copy(be))


# -- measurement -----------------------------------------------------------

def _best_seconds(fn: Callable[[], object], repeats: int,
                  inner: int = 1) -> float:
    """Minimum per-call seconds over ``repeats`` timed batches.

    The minimum (not mean) estimates the cost with the least scheduler
    noise — standard microbenchmark practice; ``inner`` batches very
    short kernels so each sample is well above timer resolution.
    """
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _clamp(value: float, bounds: tuple[float, float]) -> float:
    return float(min(max(value, bounds[0]), bounds[1]))


def _fit_inplace_discount(be: Backend, rng, gap_n: int, repeats: int,
                          samples: list) -> float:
    """In-place vs out-of-place gap, measured where it actually lives.

    The generic trigger path copies the view (copy-on-write) before
    accumulating ``A += u v'``; the fused path accumulates straight
    into it.  Their ratio is the fraction of per-call cost the
    in-place path still pays — the discount the planner applies to
    codegen-mode cells.  (A bare ``matmul`` vs ``matmul(out=)``
    comparison measures ~1.0 on warmed allocators; the copy
    elimination is the real, recurring saving.)  Shared by the dense
    and sparse fits: the sparse backend's allocation-free wins live on
    its dense legs, so the protocol is identical.
    """
    gap_state = rng.standard_normal((gap_n, gap_n))
    gap_u = rng.standard_normal((gap_n, 1))
    gap_v = 0.01 * rng.standard_normal((gap_n, 1))
    apply_flops = float(2 * gap_n * gap_n)
    t_cow = _best_seconds(
        lambda: be.add_outer(gap_state.copy(), gap_u, gap_v), repeats,
        inner=16)
    t_inplace = _best_seconds(
        lambda: be.add_outer_inplace(gap_state, gap_u, gap_v), repeats,
        inner=16)
    samples.append(KernelSample(f"apply copy-on-write[{gap_n}]", t_cow,
                                apply_flops))
    samples.append(KernelSample(f"apply in-place[{gap_n}]", t_inplace,
                                apply_flops))
    return _clamp(t_inplace / max(t_cow, 1e-9), INPLACE_DISCOUNT_RANGE)


def _fit_compaction(be: Backend, rng, fps: float, repeats: int,
                    samples: list, n: int = 256,
                    width: int = 48) -> float:
    """The QR+SVD compaction's ``m^3`` constant, from a timed compact.

    :func:`repro.cost.estimate.compaction_cost` models a flush as
    ``4 (rows + cols) m^2`` (thin QRs + factor rebuild) plus
    ``factor * m^3`` (the small core SVD and everything per-width the
    quadratic terms miss).  Timing :meth:`Backend.compact` at a width
    big enough to swamp dispatch noise and subtracting the quadratic
    model at the fitted throughput leaves the cubic residual.
    """
    u = rng.standard_normal((n, width))
    v = rng.standard_normal((n, width))
    t = _best_seconds(lambda: be.compact(u, v, 1e-12), repeats, inner=4)
    quad_flops = 4.0 * (n + n) * width * width
    samples.append(KernelSample(f"compact[{n},m={width}]", t,
                                quad_flops + 22.0 * width ** 3))
    residual = max(t * fps - quad_flops, 0.0)
    return _clamp(residual / float(width) ** 3, COMPACTION_FACTOR_RANGE)


def _fit_dense(be: Backend, repeats: int, big_n: int,
               tiny_n: int) -> BackendCalibration:
    rng = np.random.default_rng(1403_6968)
    big_a = rng.standard_normal((big_n, big_n))
    big_b = rng.standard_normal((big_n, big_n))
    tiny_a = rng.standard_normal((tiny_n, tiny_n))
    tiny_b = rng.standard_normal((tiny_n, tiny_n))

    samples = []
    big_flops = float(2 * big_n ** 3)
    t_big = _best_seconds(lambda: be.matmul(big_a, big_b), repeats)
    samples.append(KernelSample(f"matmul[{big_n}x{big_n}]", t_big, big_flops))
    fps = big_flops / max(t_big, 1e-9)

    # Tiny kernels are dominated by dispatch/allocation: subtracting
    # their model FLOPs at the fitted throughput leaves the call cost.
    # (Large kernels would fold memory-bandwidth effects into the call
    # constant, so only genuinely tiny operands qualify here.)
    overhead_estimates = []
    tiny_flops = float(2 * tiny_n ** 3)
    t_tiny = _best_seconds(lambda: be.matmul(tiny_a, tiny_b), repeats,
                           inner=32)
    samples.append(KernelSample(f"matmul[{tiny_n}x{tiny_n}]", t_tiny,
                                tiny_flops))
    overhead_estimates.append(max(t_tiny - tiny_flops / fps, 0.0))

    inplace_discount = _fit_inplace_discount(be, rng, 4 * tiny_n, repeats,
                                             samples)

    # Conversion pass (re-planning switch cost): a full-copy
    # re-normalization is the dense side of any backend switch.  Sized
    # at the big-kernel order so the per-entry cost is bandwidth, not
    # call dispatch.
    conv_n = big_n
    conv_src = rng.standard_normal((conv_n, conv_n))
    t_conv = _best_seconds(lambda: be.asarray(conv_src, copy=True), repeats,
                           inner=4)
    samples.append(KernelSample(f"convert[{conv_n}x{conv_n}]", t_conv,
                                float(conv_n * conv_n)))
    convert_passes = _clamp(t_conv * fps / float(conv_n * conv_n),
                            CONVERT_PASSES_RANGE)

    outer_n = 4 * tiny_n
    state = rng.standard_normal((outer_n, outer_n))
    outer_u = rng.standard_normal((outer_n, 1))
    outer_v = 0.01 * rng.standard_normal((outer_n, 1))
    outer_flops = float(2 * outer_n * outer_n)
    # In-place accumulation: repeated calls reuse the same state buffer,
    # so the sample times the kernel, not an untimed-copy workaround.
    t_outer = _best_seconds(
        lambda: be.add_outer(state, outer_u, outer_v), repeats, inner=16)
    samples.append(KernelSample(f"add_outer[{outer_n},r=1]", t_outer,
                                outer_flops))
    overhead_estimates.append(max(t_outer - outer_flops / fps, 0.0))

    compaction = _fit_compaction(be, rng, fps, repeats, samples,
                                 n=max(big_n, 128))

    overhead_seconds = max(statistics.median(overhead_estimates), 1e-7)
    return BackendCalibration(
        backend=be.name,
        flops_per_second=fps,
        call_overhead_flops=_clamp(overhead_seconds * fps,
                                   OVERHEAD_FLOPS_RANGE),
        inplace_discount=inplace_discount,
        convert_passes_per_entry=convert_passes,
        compaction_factor=compaction,
        samples=tuple(samples),
    )


def _fit_sparse(be: Backend, dense_fps: float, repeats: int, n: int,
                densities: tuple[float, ...]) -> BackendCalibration:
    from scipy import sparse as sp

    rng = np.random.default_rng(1403_6968)
    samples = []
    stream_penalties = []  # matvec-shaped kernels -> est_overhead
    update_penalties = []  # CSR structure merges  -> est_update_overhead
    spgemm_penalties = []  # sparse x sparse       -> est_spgemm_overhead

    # Tiny CSR matvec ~= pure call cost (format dispatch + validation).
    tiny = sp.random_array((64, 64), density=0.05, random_state=rng,
                           format="csr")
    tiny_x = rng.standard_normal((64, 1))
    tiny_flops = float(2 * tiny.nnz)
    t_tiny = _best_seconds(lambda: be.matmul(tiny, tiny_x), repeats, inner=32)
    samples.append(KernelSample("sparse matmul[64,d=0.05]", t_tiny,
                                tiny_flops))
    overhead_seconds = max(t_tiny - tiny_flops / dense_fps, 1e-7)

    def penalty(seconds: float, model_flops: float) -> float:
        return (max(seconds - overhead_seconds, 1e-9) * dense_fps
                / max(model_flops, 1.0))

    for density in densities:
        a = sp.random_array((n, n), density=density, random_state=rng,
                            format="csr")
        x = rng.standard_normal((n, 4))
        flops = float(2 * a.nnz * 4)
        t = _best_seconds(lambda a=a, x=x: be.matmul(a, x), repeats)
        samples.append(KernelSample(f"sparse matmul[{n},d={density:g}]", t,
                                    flops))
        stream_penalties.append(penalty(t, flops))

        # spgemm: expected multiply-adds of a random-pattern product.
        gemm_flops = max(2.0 * a.nnz * a.nnz / n, 2.0 * a.nnz)
        t_gemm = _best_seconds(lambda a=a: be.matmul(a, a), repeats)
        samples.append(KernelSample(f"spgemm[{n},d={density:g}]", t_gemm,
                                    gemm_flops))
        spgemm_penalties.append(penalty(t_gemm, gemm_flops))

        # CSR row slicing (reported, and folded into the update penalty:
        # it is the same indices/indptr-rebuild work edge updates pay).
        rows = rng.integers(0, n, size=max(n // 8, 1))
        t_slice = _best_seconds(lambda a=a, rows=rows: a[rows], repeats)
        slice_flops = float(a.nnz) * len(rows) / n
        samples.append(KernelSample(f"csr slice[{n},d={density:g}]", t_slice,
                                    slice_flops))
        update_penalties.append(penalty(t_slice, slice_flops))

        # Factored row update against CSR state (structure merge).
        u = np.zeros((n, 1))
        u[int(rng.integers(n)), 0] = 1.0
        v = 0.01 * rng.standard_normal((n, 1))
        upd_flops = float(2 * n + a.nnz)
        t_upd = _best_seconds(lambda a=a, u=u, v=v: be.add_outer(a, u, v),
                              repeats)
        samples.append(KernelSample(f"sparse add_outer[{n},d={density:g}]",
                                    t_upd, upd_flops))
        update_penalties.append(penalty(t_upd, upd_flops))

    inplace_discount = _fit_inplace_discount(be, rng, 128, repeats, samples)

    # Conversion passes (re-planning switch cost): the CSR <-> dense
    # round trip a live backend switch performs, per dense entry.
    conv = sp.random_array((n, n), density=densities[-1], random_state=rng,
                           format="csr")
    t_materialize = _best_seconds(lambda: be.materialize(conv), repeats)
    dense_image = be.materialize(conv)
    t_sparsify = _best_seconds(lambda: be.asarray(dense_image), repeats)
    entries = float(n * n)
    samples.append(KernelSample(f"csr->dense[{n}]", t_materialize, entries))
    samples.append(KernelSample(f"dense->csr[{n}]", t_sparsify, entries))
    convert_passes = _clamp(
        0.5 * (t_materialize + t_sparsify) * dense_fps / entries,
        CONVERT_PASSES_RANGE,
    )

    compaction = _fit_compaction(be, rng, dense_fps, repeats, samples)

    return BackendCalibration(
        backend=be.name,
        flops_per_second=dense_fps,
        call_overhead_flops=_clamp(overhead_seconds * dense_fps,
                                   OVERHEAD_FLOPS_RANGE),
        sparse_overhead=_clamp(statistics.median(stream_penalties),
                               SPARSE_OVERHEAD_RANGE),
        sparse_update_overhead=_clamp(statistics.median(update_penalties),
                                      SPARSE_UPDATE_OVERHEAD_RANGE),
        sparse_spgemm_overhead=_clamp(statistics.median(spgemm_penalties),
                                      SPARSE_SPGEMM_OVERHEAD_RANGE),
        inplace_discount=inplace_discount,
        convert_passes_per_entry=convert_passes,
        compaction_factor=compaction,
        samples=tuple(samples),
    )


def _ipc_echo_child(conn) -> None:
    """Echo loop of the IPC microbenchmark (spawn target: must be a
    module-level function so the child can import it)."""
    try:
        while True:
            payload = conn.recv_bytes()
            if len(payload) <= 1:
                break
            conn.send_bytes(payload)
    except (EOFError, OSError):
        pass
    finally:
        conn.close()


def _fit_ipc(repeats: int) -> tuple[float, float]:
    """Measured ``(seconds per one-way message, seconds per byte)`` over
    a spawned-worker pipe — the transport the sharded engine uses.

    Two payload sizes separate fixed latency from bandwidth: the small
    round trip is nearly pure per-message cost, the large one adds
    ``2 * nbytes`` of copying.
    """
    import multiprocessing as mp

    ctx = mp.get_context("spawn")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_ipc_echo_child, args=(child,), daemon=True)
    proc.start()
    child.close()
    small = b"x" * 1024
    big = b"x" * (1 << 20)

    def roundtrip(payload: bytes) -> None:
        parent.send_bytes(payload)
        parent.recv_bytes()

    try:
        roundtrip(small)  # spawn warm-up: first message pays import cost
        t_small = _best_seconds(lambda: roundtrip(small), repeats, inner=32)
        t_big = _best_seconds(lambda: roundtrip(big), repeats, inner=4)
        per_call = t_small / 2.0
        per_byte = max(t_big - t_small, 1e-9) / (2.0 * (len(big) - len(small)))
        return per_call, per_byte
    finally:
        try:
            parent.send_bytes(b"q")
        except (BrokenPipeError, OSError):
            pass
        parent.close()
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - hung child safety net
            proc.terminate()


def run_calibration(
    backends=None,
    repeats: int = 5,
    quick: bool = False,
) -> Calibration:
    """Time the backends' core kernels and fit their cost constants.

    ``quick=True`` shrinks the microbenchmark sizes (CI smoke / tests);
    the fit is noisier but the machinery is identical.  Backends that
    cannot be constructed (sparse without SciPy) are skipped.  The IPC
    microbenchmark (one spawned echo worker) runs once and its fit is
    attached to every backend's calibration.
    """
    names = list(backends) if backends is not None else ["dense", "sparse"]
    big_n, tiny_n = (96, 8) if quick else (256, 8)
    sparse_n = 256 if quick else 1024
    densities = (0.02,) if quick else (0.005, 0.05)

    fitted: dict[str, BackendCalibration] = {}
    dense_fps = None
    for name in names:
        try:
            be = get_backend(name)
        except (ValueError, RuntimeError):
            continue  # unavailable on this machine (e.g. no scipy)
        if name == "sparse":
            if dense_fps is None:
                dense_fps = _fit_dense(get_backend("dense"), repeats,
                                       big_n, tiny_n).flops_per_second
            fitted[name] = _fit_sparse(be, dense_fps, repeats, sparse_n,
                                       densities)
        else:
            cal = _fit_dense(be, repeats, big_n, tiny_n)
            fitted[name] = cal
            if name == "dense":
                dense_fps = cal.flops_per_second

    if fitted:
        if dense_fps is None:
            dense_fps = next(iter(fitted.values())).flops_per_second
        try:
            ipc_call_s, ipc_byte_s = _fit_ipc(repeats)
        except (OSError, RuntimeError):  # pragma: no cover - no mp support
            ipc_call_s = ipc_byte_s = None
        if ipc_call_s is not None:
            for name, cal in list(fitted.items()):
                fps = cal.flops_per_second
                fitted[name] = replace(
                    cal,
                    ipc_call_flops=_clamp(ipc_call_s * fps,
                                          IPC_CALL_FLOPS_RANGE),
                    ipc_flops_per_byte=_clamp(ipc_byte_s * fps,
                                              IPC_FLOPS_PER_BYTE_RANGE),
                    samples=cal.samples + (
                        KernelSample("ipc roundtrip[1KB]", ipc_call_s * 2.0,
                                     0.0),
                        KernelSample("ipc roundtrip[1MB]",
                                     ipc_call_s * 2.0 + ipc_byte_s * 2.0
                                     * float(1 << 20), 0.0),
                    ),
                )
    return Calibration(key=cache_key(), backends=fitted)


__all__ = [
    "CACHE_ENV",
    "BackendCalibration",
    "Calibration",
    "KernelSample",
    "autoload",
    "cache_key",
    "calibrated",
    "default_cache_path",
    "load_calibration",
    "run_calibration",
]
