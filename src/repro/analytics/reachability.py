"""Bounded-hop graph reachability via maintained power sums (Section 5.2).

The paper lists "answering graph reachability queries where k
represents the maximum path length" among the matrix-powers
applications.  With adjacency matrix ``A`` (``A[i, j] = 1`` iff edge
``j -> i``), the walk-counting matrix

    W_k = I + A + A^2 + ... + A^{k-1}

has ``W_k[i, j] > 0`` iff ``j`` reaches ``i`` in fewer than ``k`` hops —
exactly the sums-of-powers view ``S_k`` of Section 5.2.3, maintained
incrementally here under edge insertions and deletions (each a rank-1
update ``dA = ±e_dst e_src'``).

Entries count walks, which grow combinatorially: with float64 views the
counts are exact as long as they stay below ``2^53`` (safe for the
small ``k`` regimes the paper argues for; reachability itself only
needs "> 0", with a tolerance guarding accumulated IVM drift).
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from ..iterative.models import Model, is_power_of_two
from ..iterative.strategies import make_sums

#: Walk counts below this are treated as zero (IVM rounding drift).
COUNT_ATOL = 1e-6


def reference_reachable_pairs(adjacency: np.ndarray, k: int) -> np.ndarray:
    """Boolean matrix of pairs connected by a path of ``< k`` hops."""
    a = np.asarray(adjacency, dtype=np.float64)
    n = a.shape[0]
    reach = np.eye(n, dtype=bool)
    frontier = np.eye(n)
    for _ in range(k - 1):
        frontier = np.minimum(a @ frontier, 1.0)
        reach |= frontier > 0.5
    return reach


class ReachabilityIndex:
    """Incrementally maintained ``k``-hop reachability oracle.

    ``reachable(src, dst)`` answers in O(1) against the maintained
    ``W_k`` view; :meth:`add_edge` / :meth:`remove_edge` repair the view
    in ``O(n^2 k)`` (INCR) instead of re-running the whole power sum.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        k: int = 8,
        model: Model | None = None,
        strategy: str = "INCR",
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        self.adjacency = np.array(adjacency, dtype=np.float64)
        n = self.adjacency.shape[0]
        if self.adjacency.shape != (n, n):
            raise ValueError(f"adjacency must be square, got {self.adjacency.shape}")
        if k < 2:
            raise ValueError("k must be at least 2 (S_2 = I + A)")
        self.n = n
        self.k = k
        if model is None:
            model = (Model.exponential() if is_power_of_two(k)
                     else Model.linear())
        self.model = model
        self._maintainer = make_sums(
            strategy, self.adjacency, k, self.model, counter, backend=backend
        )

    def _edge_factors(self, src: int, dst: int, sign: float):
        if not (0 <= src < self.n and 0 <= dst < self.n):
            raise IndexError(f"edge ({src}, {dst}) outside 0..{self.n - 1}")
        u = np.zeros((self.n, 1))
        v = np.zeros((self.n, 1))
        u[dst, 0] = sign
        v[src, 0] = 1.0
        return u, v

    def add_edge(self, src: int, dst: int) -> None:
        """Insert ``src -> dst`` and repair the reachability view."""
        if self.adjacency[dst, src] != 0.0:
            raise ValueError(f"edge ({src}, {dst}) already present")
        u, v = self._edge_factors(src, dst, 1.0)
        self.adjacency[dst, src] = 1.0
        self._maintainer.refresh(u, v)

    def remove_edge(self, src: int, dst: int) -> None:
        """Delete ``src -> dst`` and repair the reachability view."""
        if self.adjacency[dst, src] == 0.0:
            raise ValueError(f"edge ({src}, {dst}) not present")
        u, v = self._edge_factors(src, dst, -1.0)
        self.adjacency[dst, src] = 0.0
        self._maintainer.refresh(u, v)

    def walk_counts(self) -> np.ndarray:
        """The maintained ``W_k`` matrix (walks of length ``< k``), dense.

        Under a sparse backend the maintained view may be CSR; this
        accessor materializes the full matrix — point queries below
        index the native representation instead.
        """
        return self._maintainer.ops.backend.materialize(self._maintainer.result())

    def reachable(self, src: int, dst: int) -> bool:
        """Whether ``dst`` is reachable from ``src`` in ``< k`` hops.

        Indexes the maintained view natively (CSR or dense) — no
        materialization, so the query stays cheap at any scale.
        """
        return bool(self._maintainer.result()[dst, src] > COUNT_ATOL)

    def reachable_set(self, src: int) -> list[int]:
        """All vertices reachable from ``src`` in ``< k`` hops (sorted)."""
        counts = self._maintainer.result()
        if isinstance(counts, np.ndarray):
            column = counts[:, src]
        else:
            # One O(n) column of the CSR view, not the full n^2 matrix.
            column = np.asarray(counts[:, [src]].todense()).ravel()
        return [int(i) for i in np.nonzero(column > COUNT_ATOL)[0]]

    def reachable_pairs(self) -> np.ndarray:
        """Boolean reachability matrix (``[dst, src]`` orientation).

        Inherently ``O(n^2)`` output; materializes under any backend.
        """
        return self.walk_counts() > COUNT_ATOL


__all__ = ["COUNT_ATOL", "ReachabilityIndex", "reference_reachable_pairs"]
