"""Ordinary least squares with incremental maintenance (Section 5.1).

The estimator ``beta* = inv(X'X) X'Y`` is maintained as four views::

    Z    = X'X            (n x n)
    W    = inv(Z)         (n x n)
    C    = X'Y            (n x p)
    beta = W C            (n x p)

For a rank-1 update ``X += u v'`` (Example 4.2/4.3):

* ``dZ = [v | X'u + v (u'u)] @ [X'u | v]'`` — two outer products;
* ``dW`` via Sherman–Morrison applied per outer product (the paper's
  Example 4.3) or one rank-2 Woodbury step — both ``O(n^2)``;
* ``dC = v (u'Y)'`` — one outer product;
* ``dbeta = dW C + W dC + dW dC`` evaluated in matrix–vector order.

Total incremental cost ``O(n^2 + mn + np + mp)`` versus re-evaluation's
``O(n^gamma + mn^2 + mnp)`` — the Fig. 3e experiment.
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from ..cost.ops import Ops
from ..delta.batch import BatchedRefresher
from ..delta.inverse import SingularUpdateError, sherman_morrison_delta


class ReevalOLS:
    """Re-evaluation baseline: rebuild the whole model per update."""

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        self.ops = Ops(counter, backend)
        self.x = np.array(x, dtype=np.float64)
        self.y = np.array(y, dtype=np.float64)
        if self.y.ndim == 1:
            self.y = self.y.reshape(-1, 1)
        self._recompute()

    def _recompute(self) -> None:
        ops = self.ops
        self.z = ops.mm(self.x.T, self.x)
        self.w = ops.inv(self.z)
        self.c = ops.mm(self.x.T, self.y)
        self.beta = ops.mm(self.w, self.c)

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``X += u v'`` and recompute Z, W, C and beta."""
        u = u.reshape(-1, 1)
        v = v.reshape(-1, 1)
        self.x = self.ops.add(self.x, self.ops.mm(u, v.T))
        self._recompute()

    def memory_bytes(self) -> int:
        """Footprint of the model state."""
        return sum(m.nbytes for m in (self.x, self.y, self.z, self.w,
                                      self.c, self.beta))


class IncrementalOLS:
    """Incrementally maintained OLS (the INCR strategy of Fig. 3e).

    ``method`` selects the inverse-maintenance primitive:
    ``"sherman-morrison"`` (default; per-outer-product, Example 4.3) or
    ``"woodbury"`` (one rank-2 step).  Both raise
    :class:`~repro.delta.inverse.SingularUpdateError` when an update
    makes ``X'X`` singular, in which case callers should rebuild.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        method: str = "sherman-morrison",
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        if method not in ("sherman-morrison", "woodbury"):
            raise ValueError(f"unknown method {method!r}")
        self.method = method
        self.ops = Ops(counter, backend)
        self.x = np.array(x, dtype=np.float64)
        self.y = np.array(y, dtype=np.float64)
        if self.y.ndim == 1:
            self.y = self.y.reshape(-1, 1)
        ops = Ops()  # initial build not charged to refreshes
        self.z = ops.mm(self.x.T, self.x)
        self.w = np.linalg.inv(self.z)
        self.c = ops.mm(self.x.T, self.y)
        self.beta = ops.mm(self.w, self.c)

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain Z, W, C, beta for ``X += u v'`` in ``O(n^2 + mn)``."""
        ops = self.ops
        u = u.reshape(-1, 1)
        v = v.reshape(-1, 1)

        # dZ = p1 q1' + p2 q2'   (Example 4.2, factored form of Sec. 5.1)
        xtu = ops.mm(self.x.T, u)                       # X'u       O(mn)
        utu = float((u.T @ u)[0, 0])
        self.ops.counter.record("matmul", 2 * u.shape[0])
        p1, q1 = v, xtu
        p2 = ops.add(xtu, ops.scale(utu, v))            # X'u + v(u'u)
        q2 = v

        # dW via Sherman-Morrison per outer product or one Woodbury step.
        if self.method == "sherman-morrison":
            r1, s1 = sherman_morrison_delta(self.w, p1, q1)
            self._charge_sm()
            w_mid = self.w + r1 @ s1.T
            self.ops.counter.record("add", self.w.size)
            r2, s2 = sherman_morrison_delta(w_mid, p2, q2)
            self._charge_sm()
            r_block = ops.hstack([r1, r2])
            s_block = ops.hstack([s1, s2])
        else:
            from ..delta.inverse import woodbury_delta

            p_block = ops.hstack([p1, p2])
            q_block = ops.hstack([q1, q2])
            r_block, s_block = woodbury_delta(self.w, p_block, q_block)
            n = self.w.shape[0]
            self.ops.counter.record("matmul", 2 * (2 * n * n * 2 + 2 * n * 2 * 2))

        # dC = v (u'Y)'  — rank 1.
        uty = ops.mm(u.T, self.y)                       # (1 x p)
        dc = ops.mm(v, uty)

        # dbeta = dW C + W dC + dW dC, evaluated matrix-vector first.
        dbeta = ops.mm(r_block, ops.mm(s_block.T, self.c))
        dbeta = ops.add(dbeta, ops.mm(self.w, dc))
        dbeta = ops.add(dbeta, ops.mm(r_block, ops.mm(s_block.T, dc)))

        # Apply all deltas (derived purely from old state).
        self.x = ops.add(self.x, ops.mm(u, v.T))
        self.z = ops.add(self.z, ops.add(ops.mm(p1, q1.T), ops.mm(p2, q2.T)))
        self.w = ops.add(self.w, ops.mm(r_block, s_block.T))
        self.c = ops.add(self.c, dc)
        self.beta = ops.add(self.beta, dbeta)

    def _charge_sm(self) -> None:
        """FLOPs of one Sherman–Morrison step: two n^2 products."""
        n = self.w.shape[0]
        self.ops.counter.record("matmul", 4 * n * n)

    def revalidate(self) -> float:
        """Max drift of any maintained view vs from-scratch recomputation."""
        z = self.x.T @ self.x
        w = np.linalg.inv(z)
        c = self.x.T @ self.y
        beta = w @ c
        return max(
            float(np.max(np.abs(self.z - z))),
            float(np.max(np.abs(self.w - w))),
            float(np.max(np.abs(self.c - c))),
            float(np.max(np.abs(self.beta - beta))),
        )

    def memory_bytes(self) -> int:
        """Footprint of the model state."""
        return sum(m.nbytes for m in (self.x, self.y, self.z, self.w,
                                      self.c, self.beta))


class QRIncrementalOLS:
    """OLS maintained through a QR factorization (Section 4.2 hook).

    The Sherman–Morrison route of :class:`IncrementalOLS` squares the
    condition number by working with ``inv(X'X)``; this variant keeps
    ``X = Q R`` current instead (:mod:`repro.delta.qr`, ``O(m^2 + mn)``
    per rank-1 update) and answers ``beta`` by one triangular solve —
    the numerically robust choice for nearly collinear designs, at the
    cost of the ``(m x m)`` orthogonal factor.

    The same trigger interface as the other maintainers:
    ``refresh(u, v)`` absorbs ``X += u v'``.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray):
        from ..delta.qr import QRView

        self.y = np.array(y, dtype=np.float64)
        if self.y.ndim == 1:
            self.y = self.y.reshape(-1, 1)
        self._qr = QRView(np.asarray(x, dtype=np.float64))

    @property
    def x(self) -> np.ndarray:
        """The current (updated) design matrix, reconstructed."""
        return self._qr.matrix()

    @property
    def beta(self) -> np.ndarray:
        """The least-squares estimate against the current design."""
        return self._qr.solve_ls(self.y)

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain the factorization for ``X += u v'``."""
        self._qr.refresh(u, v)

    def revalidate(self) -> float:
        """Max drift of beta vs a from-scratch least-squares solve."""
        exact, *_ = np.linalg.lstsq(self.x, self.y, rcond=None)
        return float(np.max(np.abs(self.beta - exact)))

    def memory_bytes(self) -> int:
        """Footprint of the factorization state."""
        return self._qr.q.nbytes + self._qr.r.nbytes + self.y.nbytes


def make_ols(
    x: np.ndarray,
    y: np.ndarray,
    strategy="auto",
    counter: counters.Counter = counters.NULL_COUNTER,
    backend=None,
    batch: int | None = None,
    **kwargs,
):
    """OLS maintainer for a strategy name, plan, or ``"auto"``.

    ``"auto"`` routes through :func:`repro.planner.plan_ols` (the
    Section 5.1 INCR-vs-REEVAL comparison); extra ``kwargs`` (e.g.
    ``method=``) are forwarded to :class:`IncrementalOLS`.

    ``batch`` wraps the maintainer in a
    :class:`~repro.delta.batch.BatchedRefresher`: design-row updates
    queue and flush per ``batch`` as QR+SVD-compacted refreshes.  The
    OLS deltas (Sherman–Morrison) are strictly rank-1, so the compacted
    factors replay column by column — a skewed batch of ``m`` updates
    still collapses to ``r <= m`` refreshes.  Reads (``.beta`` etc.)
    flush first.
    """
    x = np.asarray(x, dtype=np.float64)
    m, n = x.shape
    y_arr = np.asarray(y, dtype=np.float64)
    p = 1 if y_arr.ndim == 1 else y_arr.shape[1]
    if strategy == "auto":
        from ..planner import plan_ols

        strategy = plan_ols(m, n, p)
    name = strategy if isinstance(strategy, str) else strategy.strategy
    if name == "INCR":
        maintainer = IncrementalOLS(x, y, counter=counter, backend=backend,
                                    **kwargs)
    elif name == "REEVAL":
        maintainer = ReevalOLS(x, y, counter=counter, backend=backend)
    else:
        raise ValueError(f"OLS has no {name!r} strategy")
    maintainer.plan = None if isinstance(strategy, str) else strategy
    if batch is not None and batch > 1:
        return BatchedRefresher(maintainer, batch, backend=backend,
                                columnwise=True)
    return maintainer


__all__ = [
    "IncrementalOLS",
    "QRIncrementalOLS",
    "ReevalOLS",
    "SingularUpdateError",
    "make_ols",
]
