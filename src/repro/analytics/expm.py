"""Incremental truncated matrix exponentials (a Section 5.2 application).

The paper lists "solving systems of linear differential equations using
matrix exponentials" among the matrix-powers applications.  The
truncated Taylor series

    expm_k(A) = sum_{i=0}^{k} A^i / i!

is a *weighted* sum of the power views ``P_i = A^i`` the linear-model
incremental maintainer already materializes (Appendix A), so the
exponential view is repaired per update by combining the factored power
deltas with the Taylor coefficients:

    d expm_k = sum_{i=1}^{k} (1/i!) U_i V_i'

— all matrix–vector shaped, never a dense ``n x n`` product.  The same
machinery accepts arbitrary fixed coefficients, which also covers e.g.
truncated Neumann series ``(I - A)^{-1} ≈ sum A^i`` (the honest name
for that use is :func:`neumann_coefficients`).

For the ODE ``x'(t) = A x(t)``, ``x(t) = expm(A t) x0`` is exposed via
:meth:`IncrementalExpm.propagate`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..cost import counters
from ..delta.batch import BatchedRefresher
from ..iterative.models import Model
from ..iterative.powers import IncrementalPowers


def taylor_coefficients(k: int, t: float = 1.0) -> list[float]:
    """Coefficients ``t^i / i!`` for ``i = 0..k``."""
    return [t ** i / math.factorial(i) for i in range(k + 1)]


def neumann_coefficients(k: int) -> list[float]:
    """All-ones coefficients: the truncated Neumann series for ``inv(I-A)``."""
    return [1.0] * (k + 1)


def reference_weighted_powers(a: np.ndarray, coeffs: Sequence[float]) -> np.ndarray:
    """Ground truth ``sum_i coeffs[i] A^i`` by dense evaluation."""
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    acc = coeffs[0] * np.eye(n)
    power = np.eye(n)
    for c in coeffs[1:]:
        power = power @ a
        acc = acc + c * power
    return acc


class _RefreshTarget:
    """Adapter exposing a maintainer's raw apply step to BatchedRefresher."""

    __slots__ = ("_owner",)

    def __init__(self, owner: "WeightedPowerSum"):
        self._owner = owner

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        self._owner._refresh_now(u, v)


class WeightedPowerSum:
    """Maintained ``W = sum_{i=0}^{k} c_i A^i`` under rank-1 updates to A.

    Builds on the linear-model :class:`IncrementalPowers` (which
    materializes every ``P_1..P_k`` and yields factored deltas per
    update) and folds the weights into the view repair.  Cost per
    update is ``O(n^2 k^2)`` — Table 2's linear-model INCR column —
    versus ``O(n^gamma k)`` re-evaluation.

    ``batch`` queues incoming updates and flushes one QR+SVD-compacted
    rank-``r`` refresh per ``batch`` updates (Table 4: repeated hits on
    the same rows compact far below the batch size); reads
    (:meth:`result`, :meth:`revalidate`, :attr:`a`) flush first.
    """

    def __init__(
        self,
        a: np.ndarray,
        coeffs: Sequence[float],
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        batch: int | None = None,
    ):
        if len(coeffs) < 2:
            raise ValueError("need coefficients for at least I and A")
        from ..backends import get_backend

        self.coeffs = [float(c) for c in coeffs]
        self.k = len(coeffs) - 1
        self.backend = get_backend(backend)
        a = np.asarray(a, dtype=np.float64)
        self._powers = IncrementalPowers(a, self.k, Model.linear(), counter,
                                         backend=self.backend)
        self._view = self.backend.asarray(
            reference_weighted_powers(a, self.coeffs)
        )
        self.batch = batch if batch is not None and batch > 1 else None
        # The shared batching front end over this object's own apply
        # step — same collector/width/flush machinery as the other
        # analytics drivers, not a private reimplementation.
        self._refresher = (
            BatchedRefresher(_RefreshTarget(self), self.batch,
                             backend=self.backend)
            if self.batch else None
        )

    @property
    def a(self) -> np.ndarray:
        """The current (updated) input matrix, densely."""
        self.flush()
        return self.backend.materialize(self._powers.a)

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Absorb ``A += u v'`` into the weighted-sum view.

        Accepts rank-1 vectors or ``(n x k)`` factor blocks.  With
        batching enabled the update queues and applies on the next
        flush (width reached, or any read).
        """
        if self._refresher is not None:
            self._refresher.refresh(u, v)
            return
        self._refresh_now(u, v)

    def flush(self) -> None:
        """Apply all queued updates as one compacted refresh now."""
        if self._refresher is not None:
            self._refresher.flush()

    def _refresh_now(self, u: np.ndarray, v: np.ndarray) -> None:
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if u.ndim == 1:
            u = u.reshape(-1, 1)
        if v.ndim == 1:
            v = v.reshape(-1, 1)
        factors = self._powers.compute_factors(u, v)
        for i, (left, right) in factors.items():
            c = self.coeffs[i]
            if c != 0.0:
                self._view = self.backend.add_outer(self._view, c * left, right)
        self._powers.apply_factors(factors)

    def result(self) -> np.ndarray:
        """The current weighted power sum, densely."""
        self.flush()
        return self.backend.materialize(self._view)

    def revalidate(self) -> float:
        """Max drift of the maintained view vs dense recomputation."""
        exact = reference_weighted_powers(self.a, self.coeffs)
        return float(np.max(np.abs(self.result() - exact)))

    def memory_bytes(self) -> int:
        """Footprint: the power views plus the combined view."""
        return self._powers.memory_bytes() + self.backend.nbytes(self._view)


class IncrementalExpm(WeightedPowerSum):
    """Maintained truncated matrix exponential ``expm_k(A t)``.

    ``order`` is the Taylor truncation ``k``; accuracy vs
    ``scipy.linalg.expm`` depends on ``||A t||`` as usual for
    un-scaled Taylor evaluation — keep ``||A t|| <~ 1`` or raise the
    order (this mirrors what the paper's fixed-iteration regime does
    for convergent iterations, Section 3.1).
    """

    def __init__(
        self,
        a: np.ndarray,
        order: int = 12,
        t: float = 1.0,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        batch: int | None = None,
    ):
        self.t = float(t)
        self.order = order
        super().__init__(a, taylor_coefficients(order, t), counter,
                         backend=backend, batch=batch)

    def propagate(self, x0: np.ndarray) -> np.ndarray:
        """Solution ``x(t) = expm(A t) x0`` of ``x' = A x`` (one matvec)."""
        x0 = np.asarray(x0, dtype=np.float64).reshape(-1, 1)
        return self.result() @ x0


__all__ = [
    "IncrementalExpm",
    "WeightedPowerSum",
    "neumann_coefficients",
    "reference_weighted_powers",
    "taylor_coefficients",
]
