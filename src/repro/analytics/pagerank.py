"""Incremental PageRank over evolving graphs (Sections 5.3 and 7).

The power-method iteration

    r_{i+1} = d M r_i + (1 - d)/N * 1

is exactly the general form ``T_{i+1} = A T_i + B`` with ``A = d M``
(``M`` the column-stochastic transition matrix, dangling columns spread
uniformly) and ``B = (1-d)/N * 1`` — the paper's motivating instance of
``p = 1`` iterate maintenance.

Structural graph changes are low-rank: adding or removing an edge at
source ``s`` replaces column ``s`` of ``M``, which is the rank-1 update
``dM = (new_col - old_col) e_s'``.  :meth:`IncrementalPageRank.add_edge`
and :meth:`IncrementalPageRank.remove_edge` derive the factors and push
them through the chosen strategy.
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from ..delta.batch import BatchedRefresher
from ..iterative.models import Model
from ..iterative.strategies import make_general


def transition_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Column-stochastic transition matrix from a 0/1 adjacency matrix.

    ``adjacency[i, j] = 1`` encodes an edge ``j -> i`` (column = source).
    Dangling columns (no out-edges) become uniform ``1/N``.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    out_degree = adjacency.sum(axis=0)
    m = np.empty_like(adjacency)
    for j in range(n):
        if out_degree[j] == 0:
            m[:, j] = 1.0 / n
        else:
            m[:, j] = adjacency[:, j] / out_degree[j]
    return m


def reference_pagerank(
    adjacency: np.ndarray, damping: float = 0.85, iterations: int = 64
) -> np.ndarray:
    """Plain power-method PageRank for ground-truth comparisons."""
    n = adjacency.shape[0]
    m = transition_matrix(adjacency)
    r = np.full((n, 1), 1.0 / n)
    teleport = np.full((n, 1), (1.0 - damping) / n)
    for _ in range(iterations):
        r = damping * (m @ r) + teleport
    return r


class IncrementalPageRank:
    """PageRank maintained under edge insertions/deletions.

    ``k`` fixes the number of power iterations (Section 3.1: fixed
    iteration counts make incremental and re-evaluated results
    comparable).  ``strategy`` is ``REEVAL``, ``INCR``, ``HYBRID`` (the
    paper's recommendation for ``p = 1``), ``"auto"`` to let the
    planner pick strategy, model and backend from the graph's measured
    density, or a :class:`~repro.planner.plan.MaintenancePlan`.

    ``backend`` selects the execution backend: real web graphs are
    sparse, and ``backend="sparse"`` stores the transition matrix as
    CSR so each maintained power iteration costs ``O(nnz)`` instead of
    ``O(n^2)`` (see :mod:`repro.backends`).  Note the dangling-column
    fill-in: a node with no out-edges produces a dense uniform column,
    so graphs with many dangling nodes densify the operator.

    ``batch`` enables Table 4 update batching: edge changes queue in a
    :class:`~repro.delta.batch.BatchCollector` and every ``batch``
    changes flush as one QR+SVD-compacted refresh (bursty crawls hit
    the same hot columns repeatedly, so the compacted rank is far below
    the batch size).  Reads (:attr:`ranks`, :meth:`top`,
    :meth:`revalidate`) flush first, so results never lag the edits.

    ``partition="heavy-light"`` routes edge changes through a
    :class:`~repro.runtime.heavylight.HeavyLightRefresher` instead
    (mutually exclusive with ``batch``): changes to the same hot source
    node merge eagerly into one accumulated transition-delta column —
    zero marginal refresh rank, however bursty the crawl — while
    changes to cold sources defer into a bounded pending block.  The
    split is keyed on the *source column* (pagerank's update is
    ``delta e_s'``: the indicator is the right factor), with at most
    ``heavy_budget`` sources maintained eagerly.  The same
    read-freshness contract holds: any read folds pending state first.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        k: int = 16,
        damping: float = 0.85,
        model: Model | None = None,
        strategy="HYBRID",
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        batch: int | None = None,
        partition: str | None = None,
        heavy_budget: int | None = None,
    ):
        self.adjacency = np.array(adjacency, dtype=np.float64)
        self.n = self.adjacency.shape[0]
        self.damping = float(damping)
        self.k = k
        m = transition_matrix(self.adjacency)
        a = self.damping * m
        b = np.full((self.n, 1), (1.0 - self.damping) / self.n)
        r0 = np.full((self.n, 1), 1.0 / self.n)
        from ..planner import WorkloadStats, plan_general, resolve_driver_strategy

        strategy, model, self.plan = resolve_driver_strategy(
            strategy, model, Model.linear(),
            lambda: plan_general(WorkloadStats.from_matrix(a, p=1, k=k)),
        )
        self._general = make_general(strategy, a, b, r0, k, model, counter,
                                     backend=backend)
        if partition not in (None, "uniform", "heavy-light"):
            raise ValueError(f"unknown partition {partition!r}")
        if partition == "heavy-light":
            if batch is not None and batch > 1:
                raise ValueError(
                    "batch and partition='heavy-light' are mutually "
                    "exclusive: the heavy-light refresher already defers "
                    "and compacts the light tail")
            from ..runtime.heavylight import HeavyLightRefresher

            options = {} if heavy_budget is None else {"budget": heavy_budget}
            self._general = HeavyLightRefresher(self._general, backend=backend,
                                                transpose=True, **options)
        elif batch is not None and batch > 1:
            self._general = BatchedRefresher(self._general, batch,
                                             backend=backend)
        self.strategy = strategy if isinstance(strategy, str) else strategy.strategy

    @property
    def ranks(self) -> np.ndarray:
        """The maintained rank vector after ``k`` iterations (column).

        Folds/flushes any deferred (batched or heavy-light) edits
        first; the returned vector is live maintained storage — copy
        it to keep a snapshot that survives further edits.
        """
        return self._general.result()

    def serve(self, max_staleness: int | None = 32, max_age: float | None = None,
              max_queue: int = 0):
        """Serve rank snapshots concurrently (CQRS over this driver).

        Returns a :class:`~repro.runtime.serving.ViewServer` whose
        writer thread owns this driver: route every mutation through it
        (``server.call(pr.add_edge, 2, 3)``, or ``server.submit`` with
        raw transition-delta factors) and read ``server.read("ranks")``
        from any number of threads — reads serve the last published
        epoch, lock-free, never lagging more than ``max_staleness``
        edits (see :mod:`repro.runtime.serving`).  Do not touch the
        driver directly while the server is open.
        """
        from ..runtime.serving import MaintainerEngine, ViewServer

        engine = MaintainerEngine(
            self, views={"ranks": lambda: self.ranks},
            refresh=self._general.refresh,
        )
        return ViewServer(engine, max_staleness=max_staleness,
                          max_age=max_age, max_queue=max_queue)

    def top(self, count: int = 10) -> list[tuple[int, float]]:
        """The ``count`` highest-ranked nodes as ``(node, score)`` pairs."""
        flat = self.ranks.reshape(-1)
        order = np.argsort(-flat)[:count]
        return [(int(i), float(flat[i])) for i in order]

    def _column(self, adjacency_col: np.ndarray) -> np.ndarray:
        """Transition column for one adjacency column (dangling-aware)."""
        total = adjacency_col.sum()
        if total == 0:
            return np.full((self.n, 1), 1.0 / self.n)
        return (adjacency_col / total).reshape(-1, 1)

    def _apply_column_change(self, source: int,
                             new_adj_col: np.ndarray) -> None:
        old_col = self._column(self.adjacency[:, source])
        new_col = self._column(new_adj_col)
        delta = self.damping * (new_col - old_col)
        e_s = np.zeros((self.n, 1))
        e_s[source, 0] = 1.0
        self.adjacency[:, source] = new_adj_col
        self._general.refresh(delta, e_s)

    def add_edge(self, source: int, target: int) -> None:
        """Insert edge ``source -> target`` (no-op if already present)."""
        if self.adjacency[target, source] != 0:
            return
        new_col = self.adjacency[:, source].copy()
        new_col[target] = 1.0
        self._apply_column_change(source, new_col)

    def remove_edge(self, source: int, target: int) -> None:
        """Delete edge ``source -> target`` (no-op if absent)."""
        if self.adjacency[target, source] == 0:
            return
        new_col = self.adjacency[:, source].copy()
        new_col[target] = 0.0
        self._apply_column_change(source, new_col)

    def revalidate(self) -> float:
        """Max drift vs a from-scratch ``k``-iteration recomputation."""
        m = transition_matrix(self.adjacency)
        r = np.full((self.n, 1), 1.0 / self.n)
        teleport = np.full((self.n, 1), (1.0 - self.damping) / self.n)
        for _ in range(self.k):
            r = self.damping * (m @ r) + teleport
        return float(np.max(np.abs(r - self.ranks)))
