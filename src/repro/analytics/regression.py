"""Linear regression via batch gradient descent (Section 7, Fig. 3h).

The paper's LR experiment runs ``Theta_{i+1} = Theta_i - eta X'(X Theta_i
- Y)`` and adapts it to the general iterative form with

    A = I - eta X'X          B = eta X'Y

so every general-form strategy (REEVAL / INCR / HYBRID) and iterative
model applies unchanged.  Two update styles are supported:

* :meth:`GradientDescentLR.refresh_a` — rank-1 updates straight to
  ``A`` (what Fig. 3h measures);
* :meth:`GradientDescentLR.refresh_x` — rank-1 updates to the *data*
  ``X``, which induce a rank-2 update to ``A`` and a rank-1 update to
  ``B`` (derived exactly like the OLS deltas of Section 5.1).
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from ..iterative.models import Model
from ..iterative.strategies import make_general


class GradientDescentLR:
    """Fixed-step batch gradient descent, incrementally maintained.

    Parameters mirror the paper's experiment: ``X (m x n)``, ``Y (m x
    p)``, ``k`` gradient steps from ``theta0`` with learning rate
    ``eta``, evaluated under ``model`` with ``strategy`` (``REEVAL``,
    ``INCR``, ``HYBRID``, ``"auto"`` to ask the planner, or a
    :class:`~repro.planner.plan.MaintenancePlan`).  ``backend`` selects
    the execution backend for the maintained views.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        k: int,
        eta: float = 0.1,
        theta0: np.ndarray | None = None,
        model: Model | None = None,
        strategy="INCR",
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        self.x = np.array(x, dtype=np.float64)
        self.y = np.array(y, dtype=np.float64)
        if self.y.ndim == 1:
            self.y = self.y.reshape(-1, 1)
        self.eta = float(eta)
        m, n = self.x.shape
        p = self.y.shape[1]
        if theta0 is None:
            theta0 = np.zeros((n, p))
        a = np.eye(n) - self.eta * (self.x.T @ self.x)
        b = self.eta * (self.x.T @ self.y)
        from ..planner import WorkloadStats, plan_general, resolve_driver_strategy

        strategy, model, self.plan = resolve_driver_strategy(
            strategy, model, Model.linear(),
            lambda: plan_general(WorkloadStats.from_matrix(a, p=p, k=k)),
        )
        self._general = make_general(strategy, a, b, theta0, k, model, counter,
                                     backend=backend)
        self.strategy = strategy if isinstance(strategy, str) else strategy.strategy

    @property
    def theta(self) -> np.ndarray:
        """The maintained parameter estimate after ``k`` steps."""
        return self._general.result()

    @property
    def a(self) -> np.ndarray:
        """The maintained iteration matrix ``I - eta X'X``."""
        return self._general.a

    def refresh_a(self, u: np.ndarray, v: np.ndarray) -> None:
        """Rank-1 update directly to ``A`` (the Fig. 3h workload)."""
        self._general.refresh(u, v)

    def refresh_x(self, u: np.ndarray, v: np.ndarray) -> None:
        """Data update ``X += u v'``: rank-2 on ``A``, rank-1 on ``B``.

        With ``dZ = v (u'X) + (X'u + v u'u) v'`` as in Section 5.1::

            dA = -eta dZ            (rank 2)
            dB =  eta v (u'Y)       (rank 1)
        """
        u = u.reshape(-1, 1)
        v = v.reshape(-1, 1)
        xtu = self.x.T @ u
        utu = float((u.T @ u)[0, 0])
        # dA = [-eta v | -eta (X'u + utu v)] @ [X'u | v]'
        left = np.hstack([-self.eta * v, -self.eta * (xtu + utu * v)])
        right = np.hstack([xtu, v])
        self._general.refresh(left, right)
        if self._general.b is not None:
            self._general.refresh_b(self.eta * v, self.y.T @ u)
        self.x = self.x + u @ v.T

    def loss(self) -> float:
        """Current residual ``||X theta - Y||_F^2 / (2m)``."""
        residual = self.x @ self.theta - self.y
        return float(np.sum(residual * residual)) / (2 * self.x.shape[0])

    def memory_bytes(self) -> int:
        """Footprint of the maintained state."""
        return self._general.memory_bytes() + self.x.nbytes + self.y.nbytes


def reference_gradient_descent(
    x: np.ndarray, y: np.ndarray, k: int, eta: float,
    theta0: np.ndarray | None = None
) -> np.ndarray:
    """Plain-loop gradient descent for ground-truth comparisons."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim == 1:
        y = y.reshape(-1, 1)
    theta = (
        np.zeros((x.shape[1], y.shape[1])) if theta0 is None
        else np.array(theta0, dtype=np.float64)
    )
    for _ in range(k):
        theta = theta - eta * (x.T @ (x @ theta - y))
    return theta
