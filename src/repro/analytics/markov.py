"""Incremental k-step Markov chain analysis (a Section 5.2 application).

The paper motivates matrix powers with "computing the stochastic matrix
of a Markov chain after k steps".  Two maintained views cover the two
standard questions about a chain with column-stochastic transition
matrix ``P``:

* :class:`KStepTransitionMatrix` — the full ``k``-step matrix ``P^k``
  (matrix powers, Section 5.2);
* :class:`KStepDistribution` — the distribution ``pi_k = P^k pi_0`` for
  one start distribution (the general form with ``B = 0`` and
  ``p = 1``, Section 5.3 — where the paper's analysis says HYBRID
  evaluation wins).

Transition-probability changes are naturally low rank: re-estimating
the outgoing probabilities of one state ``j`` replaces column ``j``,
the rank-1 update ``dP = (new_col - old_col) e_j'``.
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from ..delta.batch import BatchedRefresher
from ..iterative.models import Model
from ..iterative.strategies import make_general, make_powers

#: Tolerance for the column-stochasticity check.
STOCHASTIC_ATOL = 1e-9


def check_column_stochastic(p: np.ndarray, atol: float = STOCHASTIC_ATOL) -> None:
    """Raise ``ValueError`` unless ``p`` is square column-stochastic."""
    p = np.asarray(p)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise ValueError(f"transition matrix must be square, got {p.shape}")
    if np.any(p < -atol):
        raise ValueError("transition probabilities must be non-negative")
    sums = p.sum(axis=0)
    if not np.allclose(sums, 1.0, atol=atol):
        worst = int(np.argmax(np.abs(sums - 1.0)))
        raise ValueError(
            f"column {worst} sums to {sums[worst]:.6f}, expected 1.0"
        )


def reference_k_step(p: np.ndarray, k: int) -> np.ndarray:
    """Ground truth ``P^k`` by repeated dense multiplication."""
    return np.linalg.matrix_power(np.asarray(p, dtype=np.float64), k)


def random_walk_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Column-stochastic simple-random-walk matrix of a digraph.

    ``adjacency[i, j] = 1`` encodes ``j -> i``; states without
    out-edges self-loop (stay put), keeping the matrix stochastic.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    p = np.array(adjacency)
    for j in range(n):
        total = p[:, j].sum()
        if total == 0:
            p[j, j] = 1.0
        else:
            p[:, j] /= total
    return p


class _ColumnPerturbMixin:
    """Shared column-replacement plumbing for the Markov maintainers."""

    p: np.ndarray

    def perturb_column(self, j: int, new_column: np.ndarray) -> None:
        """Replace the outgoing distribution of state ``j``.

        Derives the rank-1 factors ``u = new_col - old_col``,
        ``v = e_j`` and pushes them through the maintained views.
        """
        new_column = np.asarray(new_column, dtype=np.float64).reshape(-1)
        n = self.p.shape[0]
        if new_column.shape[0] != n:
            raise ValueError(f"column length {new_column.shape[0]} != {n}")
        if abs(float(new_column.sum()) - 1.0) > STOCHASTIC_ATOL:
            raise ValueError("replacement column must sum to 1")
        if np.any(new_column < -STOCHASTIC_ATOL):
            raise ValueError("replacement column must be non-negative")
        u = (new_column - self.p[:, j]).reshape(-1, 1)
        v = np.zeros((n, 1))
        v[j, 0] = 1.0
        self.p = self.p + u @ v.T
        self._refresh(u, v)

    def _refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        raise NotImplementedError

    def serve(self, max_staleness: int | None = 32,
              max_age: float | None = None, max_queue: int = 0):
        """Serve ``result()`` snapshots concurrently (CQRS over this chain).

        Returns a :class:`~repro.runtime.serving.ViewServer` whose
        writer thread owns this maintainer: route mutations through it
        (``server.call(chain.perturb_column, j, col)``) and read
        ``server.read("result")`` from any number of threads — reads
        serve the last published epoch, lock-free, never lagging more
        than ``max_staleness`` edits (see
        :mod:`repro.runtime.serving`).  Do not touch the maintainer
        directly while the server is open.
        """
        from ..runtime.serving import MaintainerEngine, ViewServer

        engine = MaintainerEngine(
            self, views={"result": lambda: self.result()},
            refresh=self._refresh,
        )
        return ViewServer(engine, max_staleness=max_staleness,
                          max_age=max_age, max_queue=max_queue)


class KStepTransitionMatrix(_ColumnPerturbMixin):
    """Maintained ``P^k`` of an evolving Markov chain.

    ``strategy`` is ``REEVAL``, ``INCR``, ``"auto"`` (ask the planner,
    which also picks the model and backend from the chain's measured
    density) or a :class:`~repro.planner.plan.MaintenancePlan`;
    ``model`` defaults to the exponential model (the Table 2 winner for
    powers).  ``backend`` selects the execution backend — sparse chains
    (random walks on large graphs) keep ``P^k`` views in CSR.
    ``batch`` queues column perturbations and flushes one QR+SVD-
    compacted refresh per ``batch`` changes (re-estimating the same hot
    states repeatedly compacts far below the batch size); reads flush
    first.
    """

    def __init__(
        self,
        p: np.ndarray,
        k: int = 16,
        model: Model | None = None,
        strategy="INCR",
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        batch: int | None = None,
    ):
        check_column_stochastic(p)
        self.p = np.array(p, dtype=np.float64)
        self.k = k
        from ..planner import WorkloadStats, plan_powers, resolve_driver_strategy

        strategy, model, self.plan = resolve_driver_strategy(
            strategy, model, Model.exponential(),
            lambda: plan_powers(WorkloadStats.from_matrix(self.p, k=k)),
        )
        self._maintainer = make_powers(strategy, self.p, k, model, counter,
                                       backend=backend)
        if batch is not None and batch > 1:
            self._maintainer = BatchedRefresher(self._maintainer, batch,
                                                backend=backend)
        self.model = self._maintainer.model

    def _refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        self._maintainer.refresh(u, v)

    def result(self) -> np.ndarray:
        """The current ``k``-step transition matrix.

        Flushes any batched pending edits first; the returned array is
        live maintained storage — copy it to keep a snapshot.
        """
        return self._maintainer.result()

    def step_distribution(self, pi0: np.ndarray) -> np.ndarray:
        """``pi_k`` for an arbitrary start distribution (one matvec)."""
        pi0 = np.asarray(pi0, dtype=np.float64).reshape(-1, 1)
        return self.result() @ pi0

    def hitting_probability(self, target: int, pi0: np.ndarray) -> float:
        """Probability mass on ``target`` after exactly ``k`` steps."""
        return float(self.step_distribution(pi0)[target, 0])


class KStepDistribution(_ColumnPerturbMixin):
    """Maintained ``pi_k = P^k pi_0`` for one start distribution.

    The ``p = 1`` instance of the general form — per Section 5.3 the
    HYBRID strategy (dense ``n x 1`` deltas, factored power views) has
    the lowest cost, and is the default here.
    """

    def __init__(
        self,
        p: np.ndarray,
        pi0: np.ndarray,
        k: int = 16,
        model: Model | None = None,
        strategy="HYBRID",
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        batch: int | None = None,
    ):
        check_column_stochastic(p)
        self.p = np.array(p, dtype=np.float64)
        pi0 = np.asarray(pi0, dtype=np.float64).reshape(-1, 1)
        if abs(float(pi0.sum()) - 1.0) > STOCHASTIC_ATOL:
            raise ValueError("start distribution must sum to 1")
        self.k = k
        from ..planner import WorkloadStats, plan_general, resolve_driver_strategy

        strategy, model, self.plan = resolve_driver_strategy(
            strategy, model, Model.linear(),
            lambda: plan_general(
                WorkloadStats.from_matrix(self.p, p=1, k=k, has_b=False)
            ),
        )
        self._maintainer = make_general(
            strategy, self.p, None, pi0, k, model, counter, backend=backend
        )
        if batch is not None and batch > 1:
            self._maintainer = BatchedRefresher(self._maintainer, batch,
                                                backend=backend)
        self.model = self._maintainer.model

    def _refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        self._maintainer.refresh(u, v)

    def result(self) -> np.ndarray:
        """The current ``k``-step distribution (an ``n x 1`` vector).

        Flushes any batched pending edits first; the returned vector is
        live maintained storage — copy it to keep a snapshot.
        """
        return self._maintainer.result()

    def total_variation_from(self, other: np.ndarray) -> float:
        """Total-variation distance of the maintained ``pi_k`` from ``other``."""
        other = np.asarray(other, dtype=np.float64).reshape(-1, 1)
        return 0.5 * float(np.abs(self.result() - other).sum())


__all__ = [
    "KStepDistribution",
    "KStepTransitionMatrix",
    "check_column_stochastic",
    "random_walk_matrix",
    "reference_k_step",
]
