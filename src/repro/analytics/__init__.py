"""End-user analytics built on the reproduction's public API (Section 5)."""

from .expm import (
    IncrementalExpm,
    WeightedPowerSum,
    neumann_coefficients,
    reference_weighted_powers,
    taylor_coefficients,
)
from .markov import (
    KStepDistribution,
    KStepTransitionMatrix,
    check_column_stochastic,
    random_walk_matrix,
    reference_k_step,
)
from .ols import IncrementalOLS, QRIncrementalOLS, ReevalOLS, make_ols
from .power_iteration import (
    IncrementalPowerIteration,
    reference_dominant_eigenpair,
)
from .reachability import ReachabilityIndex, reference_reachable_pairs
from .pagerank import IncrementalPageRank, reference_pagerank, transition_matrix
from .regression import GradientDescentLR, reference_gradient_descent

__all__ = [
    "GradientDescentLR",
    "IncrementalExpm",
    "IncrementalOLS",
    "IncrementalPageRank",
    "IncrementalPowerIteration",
    "QRIncrementalOLS",
    "KStepDistribution",
    "KStepTransitionMatrix",
    "ReachabilityIndex",
    "WeightedPowerSum",
    "check_column_stochastic",
    "make_ols",
    "neumann_coefficients",
    "random_walk_matrix",
    "ReevalOLS",
    "reference_dominant_eigenpair",
    "reference_gradient_descent",
    "reference_k_step",
    "reference_pagerank",
    "reference_reachable_pairs",
    "reference_weighted_powers",
    "taylor_coefficients",
    "transition_matrix",
]
