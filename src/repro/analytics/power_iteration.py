"""Incremental power iteration for dominant eigenpairs (Section 5.3).

The paper names "the power iteration method for eigenvalue computation"
as an instance of the general form ``T_{i+1} = A T_i`` — the extreme
``p = 1`` case where its analysis (Section 5.3.2, Fig. 3g) shows HYBRID
evaluation is the cheapest maintenance strategy: dense ``n x 1`` iterate
deltas, factored power views.

A fixed iteration count ``k`` (Section 3.1) keeps incremental and
re-evaluated results comparable.  The iterate is deliberately left
*unnormalized* — normalization is a per-query cosmetic —, so the
maintained view is exactly ``x_k = A^k x_0`` and the eigenvalue
estimate is the Rayleigh quotient of the current iterate.
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from ..iterative.models import Model
from ..iterative.strategies import make_general


def reference_dominant_eigenpair(a: np.ndarray) -> tuple[float, np.ndarray]:
    """Ground-truth dominant eigenpair via ``numpy.linalg.eig``.

    Returns ``(eigenvalue, unit eigenvector)`` for the eigenvalue of
    largest magnitude, with a sign convention (largest-magnitude entry
    positive) so directions are comparable.
    """
    values, vectors = np.linalg.eig(np.asarray(a, dtype=np.float64))
    top = int(np.argmax(np.abs(values)))
    vec = np.real(vectors[:, top])
    val = float(np.real(values[top]))
    pivot = int(np.argmax(np.abs(vec)))
    if vec[pivot] < 0:
        vec = -vec
    return val, vec / np.linalg.norm(vec)


class IncrementalPowerIteration:
    """Maintained power iteration ``x_k = A^k x_0`` under rank-1 updates.

    ``strategy`` is ``REEVAL``, ``INCR``, ``HYBRID`` (default, per the
    paper's p = 1 analysis), ``"auto"`` (ask the planner, which also
    picks the model and backend from the operator's measured density)
    or a :class:`~repro.planner.plan.MaintenancePlan`.  ``backend``
    selects the execution backend for the maintained views.  ``x0``
    defaults to the normalized all-ones vector; pick one with a
    component along the dominant eigenvector, as for any power method.
    """

    def __init__(
        self,
        a: np.ndarray,
        k: int = 32,
        x0: np.ndarray | None = None,
        model: Model | None = None,
        strategy="HYBRID",
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        a = np.array(a, dtype=np.float64)
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError(f"matrix must be square, got {a.shape}")
        if x0 is None:
            x0 = np.full((n, 1), 1.0 / np.sqrt(n))
        x0 = np.asarray(x0, dtype=np.float64).reshape(-1, 1)
        self.a = a
        self.k = k
        from ..planner import WorkloadStats, plan_general, resolve_driver_strategy

        strategy, model, self.plan = resolve_driver_strategy(
            strategy, model, Model.linear(),
            lambda: plan_general(
                WorkloadStats.from_matrix(a, p=1, k=k, has_b=False)
            ),
        )
        self._maintainer = make_general(
            strategy, a, None, x0, k, model, counter, backend=backend
        )
        self.model = self._maintainer.model

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Absorb ``A += u v'`` into the maintained iterate."""
        u = np.asarray(u, dtype=np.float64).reshape(-1, 1)
        v = np.asarray(v, dtype=np.float64).reshape(-1, 1)
        self.a = self.a + u @ v.T
        self._maintainer.refresh(u, v)

    def iterate(self) -> np.ndarray:
        """The raw maintained iterate ``x_k`` (unnormalized)."""
        return self._maintainer.result()

    def eigenvector(self) -> np.ndarray:
        """Unit-norm dominant-eigenvector estimate (sign-normalized)."""
        x = self.iterate().reshape(-1)
        norm = float(np.linalg.norm(x))
        if norm == 0.0:
            raise ArithmeticError("iterate collapsed to zero; re-seed x0")
        x = x / norm
        pivot = int(np.argmax(np.abs(x)))
        return x if x[pivot] >= 0 else -x

    def eigenvalue(self) -> float:
        """Rayleigh-quotient eigenvalue estimate at the current iterate."""
        x = self.eigenvector()
        return float(x @ self.a @ x)

    def residual(self) -> float:
        """``||A x - lambda x||`` of the current estimate (quality gauge)."""
        x = self.eigenvector()
        return float(np.linalg.norm(self.a @ x - self.eigenvalue() * x))


__all__ = ["IncrementalPowerIteration", "reference_dominant_eigenpair"]
