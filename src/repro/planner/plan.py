"""Maintenance plans and workload statistics (the planner's vocabulary).

A :class:`MaintenancePlan` names one point in the full configuration
space LINVIEW exposes after the backend refactor:

* **strategy** — REEVAL / INCR / HYBRID (Section 5);
* **model** / **s** — the iterative model: linear, exponential or
  skip-``s`` (Section 3.2);
* **backend** — the execution backend (``repro.backends``);
* **mode** — trigger execution: ``"interpret"`` (AST executor) or
  ``"codegen"`` (generated Python, sessions only).

A :class:`WorkloadStats` carries the input statistics the cost model
ranks on: problem dimensions, input nnz density, update rank, and the
expected number of refreshes (which amortizes one-time view building —
the lever that makes high-update-rate workloads prefer incremental
configurations with expensive setup).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cost.advisor import DEFAULT_REFRESHES
from ..iterative.models import Model

#: Strategy names (shared with the advisor and iterative layer).
REEVAL = "REEVAL"
INCR = "INCR"
HYBRID = "HYBRID"


@dataclass(frozen=True)
class MaintenancePlan:
    """One maintenance configuration across every decision axis.

    ``predicted_time`` is the planner's amortized per-refresh operation
    count (ranking unit, not wall-clock); ``predicted_space`` the
    predicted stored entries.  Both are ``nan`` for hand-built plans.
    """

    strategy: str
    model: str = "linear"
    s: int | None = None
    backend: str = "dense"
    mode: str = "interpret"
    predicted_time: float = float("nan")
    predicted_space: float = float("nan")
    #: Recommended update-batch width: collect this many rank-1 updates
    #: in a :class:`~repro.delta.batch.BatchCollector` and flush one
    #: compacted refresh.  ``None`` when batching was not planned (or
    #: does not pay); 1 means "apply per update".
    batch_size: int | None = None
    #: Worker-process count: 1 runs single-process; N > 1 shards block
    #: rows over N shared-memory workers
    #: (:class:`~repro.distributed.sharded.ShardedEngine`), priced with
    #: the comm-cost term (:func:`repro.cost.estimate.sharded_refresh_cost`).
    nodes: int = 1
    #: Update-target partitioning: ``"uniform"`` treats every target the
    #: same (per-update or width-batched maintenance), ``"heavy-light"``
    #: splits targets into a small heavy-hitter set merged eagerly into
    #: dense accumulator rows and a light tail deferred into a compacted
    #: low-rank pending block (:mod:`repro.runtime.heavylight`).  Priced
    #: by :func:`repro.cost.estimate.heavy_light_unit_cost` from
    #: sketch-derived skew; stays ``"uniform"`` when the stream shows no
    #: exploitable skew.
    partition: str = "uniform"
    #: Heavy-set budget for ``partition="heavy-light"``: at most this
    #: many targets are maintained eagerly.  ``None`` when partitioning
    #: is uniform (or left to the runtime default).
    heavy_budget: int | None = None

    def __post_init__(self):
        if self.strategy not in (REEVAL, INCR, HYBRID):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.mode not in ("interpret", "codegen"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.partition not in ("uniform", "heavy-light"):
            raise ValueError(f"unknown partition {self.partition!r}")
        if self.heavy_budget is not None and self.heavy_budget < 1:
            raise ValueError(
                f"heavy_budget must be >= 1, got {self.heavy_budget}")

    @property
    def label(self) -> str:
        """Paper-style label with the backend/mode axes appended."""
        model = {"linear": "LIN", "exponential": "EXP"}.get(self.model)
        if model is None:
            model = f"SKIP-{self.s}"
        label = f"{self.strategy}-{model}@{self.backend}/{self.mode}"
        if self.nodes > 1:
            label += f"/x{self.nodes}"
        if self.partition == "heavy-light":
            label += f"/hl{self.heavy_budget or ''}"
        return label

    def iterative_model(self) -> Model:
        """The plan's model as an :class:`~repro.iterative.models.Model`."""
        if self.model == "linear":
            return Model.linear()
        if self.model == "exponential":
            return Model.exponential()
        if self.model == "skip":
            if self.s is None:
                raise ValueError("skip plan has no skip size")
            return Model.skip(self.s)
        raise ValueError(f"unknown model {self.model!r}")

    def with_overrides(
        self,
        backend: str | None = None,
        mode: str | None = None,
        strategy: str | None = None,
        nodes: int | None = None,
        partition: str | None = None,
        heavy_budget: int | None = None,
    ) -> "MaintenancePlan":
        """A copy with user-forced axes replacing the planned ones."""
        changes = {}
        if backend is not None:
            changes["backend"] = backend
        if mode is not None:
            changes["mode"] = mode
        if strategy is not None:
            changes["strategy"] = strategy
        if nodes is not None:
            changes["nodes"] = nodes
        if partition is not None:
            changes["partition"] = partition
        if heavy_budget is not None:
            changes["heavy_budget"] = heavy_budget
        return replace(self, **changes) if changes else self

    def as_dict(self) -> dict:
        """JSON-friendly form (CLI output)."""
        return {
            "label": self.label,
            "strategy": self.strategy,
            "model": self.model,
            "s": self.s,
            "backend": self.backend,
            "mode": self.mode,
            "predicted_time": self.predicted_time,
            "predicted_space": self.predicted_space,
            "batch_size": self.batch_size,
            "nodes": self.nodes,
            "partition": self.partition,
            "heavy_budget": self.heavy_budget,
        }


@dataclass(frozen=True)
class WorkloadStats:
    """Input statistics the planner ranks configurations on."""

    n: int                                   #: operator order (A is n x n)
    p: int = 1                               #: iterate width (general form)
    k: int = 1                               #: iteration count / chain depth
    density: float = 1.0                     #: input nnz density in [0, 1]
    update_rank: int = 1                     #: width of incoming updates
    refresh_count: int = DEFAULT_REFRESHES   #: expected updates to amortize
    gamma: float = 3.0                       #: matmul exponent (dense closed
    #: forms only; the density-aware grid prices the classical kernels
    #: the backends actually run)
    memory_budget: float | None = None       #: max stored entries, if any
    has_b: bool = True                       #: general form carries a B term
    #: Largest update-batch width the application tolerates (a latency
    #: bound: updates queued in a BatchCollector are invisible to reads
    #: until flushed).  ``None`` leaves the planner its default grid;
    #: the chosen width lands on ``MaintenancePlan.batch_size``.
    batch_hint: int | None = None
    #: How much of a stacked batch survives QR+SVD compaction (Table 4:
    #: a Zipf-skewed batch touching few distinct rows compacts far
    #: below its size).  ``None`` = the conservative no-compression
    #: default (1.0); a float is used as a constant for every width; a
    #: :class:`StreamSketch` (anything with a ``fraction(width)``
    #: method) prices each candidate width from the observed stream.
    distinct_fraction: "float | StreamSketch | None" = None

    @staticmethod
    def measure_density(*matrices) -> float:
        """Size-weighted nnz density of the given matrices."""
        nnz = 0
        size = 0
        for m in matrices:
            if m is None:
                continue
            try:  # scipy sparse
                nnz += int(m.nnz)
            except AttributeError:
                nnz += int(np.count_nonzero(m))
            size += int(m.shape[0]) * int(m.shape[1])
        return float(nnz) / size if size else 1.0

    @classmethod
    def from_matrix(cls, a, **kwargs) -> "WorkloadStats":
        """Stats for an operator matrix, measuring ``n`` and ``density``."""
        kwargs.setdefault("density", cls.measure_density(a))
        return cls(n=int(a.shape[0]), **kwargs)


class StreamSketch:
    """Online distinct-target sketch of an update stream (Zipf-aware).

    The Table 4 knob is how many *distinct* targets a batch of updates
    hits: a Zipf-skewed stream of 1000 row updates touching 10 rows
    compacts to a rank-10 refresh.  This sketch tracks per-target hit
    frequencies from the live stream (one bounded counter per observed
    target key) and answers the planner's question directly:
    :meth:`fraction` estimates the expected distinct share of a
    width-``m`` batch under the observed frequencies,

        E[distinct] / m  =  sum_i (1 - (1 - p_i)^m) / m

    — the occupancy formula for ``m`` draws from the empirical
    distribution.  :class:`~repro.runtime.drift.ReplanMonitor` feeds a
    sketch from the stream it supervises and hands it to the planner
    through :attr:`WorkloadStats.distinct_fraction`, so re-planning
    re-prices every candidate batch width from what the stream actually
    does instead of the conservative no-compression default.

    Target keys are derived per factor column (the dominant row of the
    ``u`` column — exact for row/cell updates, a stable proxy for dense
    factors).  At most ``capacity`` keys are tracked; hits beyond that
    are assumed distinct (conservative: overflow never inflates the
    compression estimate).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._counts: dict[int, int] = {}
        self.total = 0
        self.overflow = 0

    def observe_key(self, key: int) -> None:
        """Record one hit on an abstract target key."""
        count = self._counts.get(key)
        if count is not None:
            self._counts[key] = count + 1
        elif len(self._counts) < self.capacity:
            self._counts[key] = 1
        else:
            self.overflow += 1
        self.total += 1

    def observe(self, update) -> None:
        """Record a :class:`~repro.runtime.updates.FactoredUpdate`.

        One key per factor column: the dominant row of the column (the
        updated row for indicator columns).
        """
        u = np.asarray(update.u_block)
        for col in range(u.shape[1]):
            column = u[:, col]
            if column.size:
                self.observe_key(int(np.argmax(np.abs(column))))

    def distinct_targets(self) -> int:
        """Distinct target keys observed so far (tracked + overflow)."""
        return len(self._counts) + self.overflow

    def fraction(self, width: int) -> float:
        """Expected distinct fraction of a ``width``-update batch.

        1.0 before any observation (the conservative no-compression
        default) and for width 1; never below ``1/width`` (a batch hits
        at least one target).
        """
        m = max(int(width), 1)
        if m <= 1 or self.total == 0:
            return 1.0
        total = float(self.total)
        expected = sum(
            1.0 - (1.0 - count / total) ** m
            for count in self._counts.values()
        )
        # Untracked (overflow) mass: assume every draw is distinct.
        expected += (self.overflow / total) * m
        return float(min(1.0, max(expected / m, 1.0 / m)))

    def _heavy_threshold(self, budget: int, factor: float) -> float:
        """Minimum hit count for a key to qualify as a heavy hitter.

        A key is heavy when its observed share clears both
        ``1/(2*budget)`` (it matters relative to the eager capacity) and
        ``factor`` times the uniform share over the distinct targets
        seen (it is genuinely hotter than a flat stream — on a uniform
        stream no key clears this, so the heavy set collapses to empty).
        The share bar is capped at 0.5 so a degenerate one- or
        two-target stream still qualifies, and a key needs at least two
        hits (one hit is not a hitter).
        """
        distinct = max(self.distinct_targets(), 1)
        share = min(max(1.0 / (2.0 * budget), factor / distinct), 0.5)
        return max(share * self.total, 2.0)

    def heavy_keys(self, budget: int, factor: float = 4.0) -> list[int]:
        """The top-``budget`` target keys qualifying as heavy hitters.

        Sorted by descending hit count; empty before any observation and
        on uniform streams (see :meth:`_heavy_threshold`).  Feeds both
        the planner's heavy-light pricing and the
        :class:`~repro.runtime.heavylight.HeavyLightMaintainer`'s
        adaptive heavy-set membership.
        """
        if self.total == 0 or budget < 1:
            return []
        threshold = self._heavy_threshold(int(budget), factor)
        qualified = sorted(
            ((count, key) for key, count in self._counts.items()
             if count >= threshold),
            reverse=True,
        )
        return [key for _, key in qualified[:int(budget)]]

    def heavy_share(self, budget: int, factor: float = 4.0) -> float:
        """Observed hit-mass fraction of the heavy set for ``budget``.

        0.0 on empty/uniform streams (no heavy set), approaching 1.0
        when a few targets dominate — the planner charges eager cost on
        this mass and deferred-fold cost on the remainder.
        """
        if self.total == 0:
            return 0.0
        keys = self.heavy_keys(budget, factor)
        if not keys:
            return 0.0
        mass = sum(self._counts[key] for key in keys)
        return float(mass) / float(self.total)

    def light_fraction(self, budget: int, width: int,
                       factor: float = 4.0) -> float:
        """Expected distinct fraction of ``width`` *light-tail* draws.

        Same occupancy estimate as :meth:`fraction`, but conditioned on
        the stream with the heavy set (for ``budget``) removed — the
        distribution the deferred pending block actually sees.  Repeats
        in the tail compact across the (long) deferral window, so this
        is the planner's light-rank growth rate.  1.0 when the tail is
        empty or nothing has been observed.
        """
        m = max(int(width), 1)
        if m <= 1 or self.total == 0:
            return 1.0
        heavy = set(self.heavy_keys(budget, factor))
        light_counts = [count for key, count in self._counts.items()
                        if key not in heavy]
        light_total = float(sum(light_counts) + self.overflow)
        if light_total <= 0:
            return 1.0
        expected = sum(
            1.0 - (1.0 - count / light_total) ** m for count in light_counts
        )
        # Untracked (overflow) mass: assume every draw is distinct.
        expected += (self.overflow / light_total) * m
        return float(min(1.0, max(expected / m, 1.0 / m)))

    def __repr__(self) -> str:
        return (
            f"StreamSketch(total={self.total}, "
            f"distinct={self.distinct_targets()})"
        )


def resolve_distinct_fraction(distinct, width: int) -> float:
    """Resolve a :attr:`WorkloadStats.distinct_fraction` for one width.

    ``None`` is the conservative no-compression default (1.0); a float
    applies to every width; anything with a ``fraction(width)`` method
    (a :class:`StreamSketch`) is asked per width.  The result is
    clamped into ``[1/width, 1]``.
    """
    m = max(int(width), 1)
    if distinct is None:
        return 1.0
    if hasattr(distinct, "fraction"):
        value = float(distinct.fraction(m))
    else:
        value = float(distinct)
    return float(min(1.0, max(value, 1.0 / m)))


def resolve_driver_strategy(strategy, model, default_model, auto_plan):
    """Shared resolution of the analytics drivers' ``strategy`` argument.

    ``strategy`` may be a strategy name, ``"auto"`` (call ``auto_plan``
    to get a :class:`MaintenancePlan`), or a plan.  Returns
    ``(strategy_or_plan, model, plan_or_none)`` ready for the iterative
    factories: names get ``default_model`` when no model was given,
    plans keep ``model=None`` so the factory takes theirs.
    """
    if strategy == "auto":
        strategy = auto_plan()
    if isinstance(strategy, str):
        return strategy, model or default_model, None
    return strategy, model, strategy


__all__ = [
    "HYBRID",
    "INCR",
    "MaintenancePlan",
    "REEVAL",
    "StreamSketch",
    "WorkloadStats",
    "resolve_distinct_fraction",
    "resolve_driver_strategy",
]
