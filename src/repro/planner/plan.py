"""Maintenance plans and workload statistics (the planner's vocabulary).

A :class:`MaintenancePlan` names one point in the full configuration
space LINVIEW exposes after the backend refactor:

* **strategy** — REEVAL / INCR / HYBRID (Section 5);
* **model** / **s** — the iterative model: linear, exponential or
  skip-``s`` (Section 3.2);
* **backend** — the execution backend (``repro.backends``);
* **mode** — trigger execution: ``"interpret"`` (AST executor) or
  ``"codegen"`` (generated Python, sessions only).

A :class:`WorkloadStats` carries the input statistics the cost model
ranks on: problem dimensions, input nnz density, update rank, and the
expected number of refreshes (which amortizes one-time view building —
the lever that makes high-update-rate workloads prefer incremental
configurations with expensive setup).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cost.advisor import DEFAULT_REFRESHES
from ..iterative.models import Model

#: Strategy names (shared with the advisor and iterative layer).
REEVAL = "REEVAL"
INCR = "INCR"
HYBRID = "HYBRID"


@dataclass(frozen=True)
class MaintenancePlan:
    """One maintenance configuration across every decision axis.

    ``predicted_time`` is the planner's amortized per-refresh operation
    count (ranking unit, not wall-clock); ``predicted_space`` the
    predicted stored entries.  Both are ``nan`` for hand-built plans.
    """

    strategy: str
    model: str = "linear"
    s: int | None = None
    backend: str = "dense"
    mode: str = "interpret"
    predicted_time: float = float("nan")
    predicted_space: float = float("nan")
    #: Recommended update-batch width: collect this many rank-1 updates
    #: in a :class:`~repro.delta.batch.BatchCollector` and flush one
    #: compacted refresh.  ``None`` when batching was not planned (or
    #: does not pay); 1 means "apply per update".
    batch_size: int | None = None

    def __post_init__(self):
        if self.strategy not in (REEVAL, INCR, HYBRID):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.mode not in ("interpret", "codegen"):
            raise ValueError(f"unknown mode {self.mode!r}")

    @property
    def label(self) -> str:
        """Paper-style label with the backend/mode axes appended."""
        model = {"linear": "LIN", "exponential": "EXP"}.get(self.model)
        if model is None:
            model = f"SKIP-{self.s}"
        return f"{self.strategy}-{model}@{self.backend}/{self.mode}"

    def iterative_model(self) -> Model:
        """The plan's model as an :class:`~repro.iterative.models.Model`."""
        if self.model == "linear":
            return Model.linear()
        if self.model == "exponential":
            return Model.exponential()
        if self.model == "skip":
            if self.s is None:
                raise ValueError("skip plan has no skip size")
            return Model.skip(self.s)
        raise ValueError(f"unknown model {self.model!r}")

    def with_overrides(
        self,
        backend: str | None = None,
        mode: str | None = None,
        strategy: str | None = None,
    ) -> "MaintenancePlan":
        """A copy with user-forced axes replacing the planned ones."""
        changes = {}
        if backend is not None:
            changes["backend"] = backend
        if mode is not None:
            changes["mode"] = mode
        if strategy is not None:
            changes["strategy"] = strategy
        return replace(self, **changes) if changes else self

    def as_dict(self) -> dict:
        """JSON-friendly form (CLI output)."""
        return {
            "label": self.label,
            "strategy": self.strategy,
            "model": self.model,
            "s": self.s,
            "backend": self.backend,
            "mode": self.mode,
            "predicted_time": self.predicted_time,
            "predicted_space": self.predicted_space,
            "batch_size": self.batch_size,
        }


@dataclass(frozen=True)
class WorkloadStats:
    """Input statistics the planner ranks configurations on."""

    n: int                                   #: operator order (A is n x n)
    p: int = 1                               #: iterate width (general form)
    k: int = 1                               #: iteration count / chain depth
    density: float = 1.0                     #: input nnz density in [0, 1]
    update_rank: int = 1                     #: width of incoming updates
    refresh_count: int = DEFAULT_REFRESHES   #: expected updates to amortize
    gamma: float = 3.0                       #: matmul exponent (dense closed
    #: forms only; the density-aware grid prices the classical kernels
    #: the backends actually run)
    memory_budget: float | None = None       #: max stored entries, if any
    has_b: bool = True                       #: general form carries a B term
    #: Largest update-batch width the application tolerates (a latency
    #: bound: updates queued in a BatchCollector are invisible to reads
    #: until flushed).  ``None`` leaves the planner its default grid;
    #: the chosen width lands on ``MaintenancePlan.batch_size``.
    batch_hint: int | None = None

    @staticmethod
    def measure_density(*matrices) -> float:
        """Size-weighted nnz density of the given matrices."""
        nnz = 0
        size = 0
        for m in matrices:
            if m is None:
                continue
            try:  # scipy sparse
                nnz += int(m.nnz)
            except AttributeError:
                nnz += int(np.count_nonzero(m))
            size += int(m.shape[0]) * int(m.shape[1])
        return float(nnz) / size if size else 1.0

    @classmethod
    def from_matrix(cls, a, **kwargs) -> "WorkloadStats":
        """Stats for an operator matrix, measuring ``n`` and ``density``."""
        kwargs.setdefault("density", cls.measure_density(a))
        return cls(n=int(a.shape[0]), **kwargs)


def resolve_driver_strategy(strategy, model, default_model, auto_plan):
    """Shared resolution of the analytics drivers' ``strategy`` argument.

    ``strategy`` may be a strategy name, ``"auto"`` (call ``auto_plan``
    to get a :class:`MaintenancePlan`), or a plan.  Returns
    ``(strategy_or_plan, model, plan_or_none)`` ready for the iterative
    factories: names get ``default_model`` when no model was given,
    plans keep ``model=None`` so the factory takes theirs.
    """
    if strategy == "auto":
        strategy = auto_plan()
    if isinstance(strategy, str):
        return strategy, model or default_model, None
    return strategy, model, strategy


__all__ = [
    "HYBRID",
    "INCR",
    "MaintenancePlan",
    "REEVAL",
    "WorkloadStats",
    "resolve_driver_strategy",
]
