"""Cost estimation for compiled linear-algebra programs (sessions).

Sessions maintain arbitrary programs (not just the iterative closed
forms of Table 2), so the planner prices them by walking each
statement's expression tree with ``(shape, density)`` annotations and
charging every node through the backend's ``est_*`` cost hooks:

* **REEVAL** — the per-refresh cost of re-evaluating every statement
  (what :class:`~repro.runtime.session.ReevalSession` does);
* **INCR** — the cost of propagating *factored* deltas through the
  compiled triggers: every product against a big operand becomes a
  thin matrix–vector-shaped pass, with delta widths growing along the
  statement dependency chain exactly as trigger compilation stacks
  them (``d(AB) = dA B + A dB + dA dB`` doubles the width).

Densities of derived views follow the expected-overlap heuristic
``density(AB) ~ min(1, d_a d_b m)`` for inner dimension ``m`` — the
same convention as :mod:`repro.cost.estimate`; inverses are dense.

Every arithmetic node evaluated and every factored delta pass is also
charged one ``est_call_overhead_flops`` — the same per-call accounting
:mod:`repro.cost.estimate` applies to the iterative models.  Factored
INCR trades a few big products for many thin passes, so omitting call
cost would (a) recommend INCR at scales where dispatch overhead eats
the win and (b) price two backends identically whenever fill-in pushes
their stored densities to 1.0, leaving online re-planning blind to the
backends' different kernel overheads.
"""

from __future__ import annotations

from ..compiler.program import Program
from ..cost.estimate import CostEstimate
from ..expr.ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)
from ..runtime.executor import resolve_dim


def infer_dims(program: Program, inputs) -> dict[str, int]:
    """Bind the program's symbolic dimensions from concrete input arrays."""
    dims: dict[str, int] = {}
    for sym in program.inputs:
        value = inputs.get(sym.name)
        if value is None:
            continue
        for dim, size in zip((sym.shape.rows, sym.shape.cols), value.shape):
            name = getattr(dim, "name", None)
            if name is None:
                continue
            if dims.setdefault(name, int(size)) != int(size):
                raise ValueError(
                    f"dimension {name!r} bound to both {dims[name]} and {size}"
                )
    return dims


class _Annotation:
    """(rows, cols, density, delta_width) of one expression node."""

    __slots__ = ("rows", "cols", "density", "width")

    def __init__(self, rows: int, cols: int, density: float, width: int):
        self.rows = rows
        self.cols = cols
        self.density = density
        self.width = width


def _product_density(da: float, db: float, inner: int) -> float:
    return float(min(1.0, da * db * max(inner, 1)))


def program_cost(
    be,
    strategy: str,
    program: Program,
    dims: dict[str, int],
    input_density: dict[str, float],
    rank: int = 1,
    update_input: str | None = None,
    inplace: bool = False,
) -> CostEstimate:
    """Predicted per-refresh cost of maintaining ``program`` under ``be``.

    ``input_density`` maps input names to nnz densities; unlisted names
    are assumed dense.  ``update_input`` names the input the update
    stream targets (default: the program's first input).

    ``inplace=True`` prices the factored refresh through the fused
    in-place path (``mode="codegen"`` sessions): every delta-pass call
    is charged ``est_call_overhead(inplace=True)`` — its discounted,
    allocation-free form.  Full evaluation (REEVAL, and INCR setup) is
    always priced out-of-place: it runs through the allocating
    evaluator regardless of mode.
    """
    if strategy not in ("REEVAL", "INCR"):
        raise ValueError(f"sessions support REEVAL or INCR, got {strategy!r}")
    update_input = update_input or program.input_names[0]
    delta_call = be.est_call_overhead(inplace)

    ann: dict[str, _Annotation] = {}
    for sym in program.inputs:
        rows = resolve_dim(sym.shape.rows, dims)
        cols = resolve_dim(sym.shape.cols, dims)
        width = rank if sym.name == update_input else 0
        ann[sym.name] = _Annotation(
            rows, cols, float(input_density.get(sym.name, 1.0)), width
        )

    # Delta factor columns inherit the updated input's column sparsity
    # (a row update's indicator column stays 1-sparse; one hop through a
    # sparse operand spreads it to ~n*d nonzeros).
    upd = ann[update_input]
    u_nnz = max(1.0, upd.rows * upd.density)

    eval_cost = 0.0   # full evaluation of the current statement
    delta_cost = 0.0  # factored propagation through the same statement

    def walk(node: Expr) -> _Annotation:
        nonlocal eval_cost, delta_cost
        if isinstance(node, MatrixSymbol):
            return ann[node.name]
        if isinstance(node, Identity):
            n = resolve_dim(node.shape.rows, dims)
            return _Annotation(n, n, 1.0 / max(n, 1), 0)
        if isinstance(node, ZeroMatrix):
            r = resolve_dim(node.shape.rows, dims)
            c = resolve_dim(node.shape.cols, dims)
            return _Annotation(r, c, 0.0, 0)
        if isinstance(node, Add):
            parts = [walk(child) for child in node.children]
            first = parts[0]
            density = min(1.0, sum(part.density for part in parts))
            eval_cost += (len(parts) - 1) * (
                be.est_add_flops((first.rows, first.cols), density)
                + be.est_call_overhead_flops
            )
            width = sum(part.width for part in parts)
            if width:
                delta_cost += delta_call  # factor hstack
            return _Annotation(first.rows, first.cols, density, width)
        if isinstance(node, MatMul):
            left = walk(node.children[0])
            for child in node.children[1:]:
                right = walk(child)
                eval_cost += be.est_matmul_flops(
                    (left.rows, left.cols), (right.rows, right.cols),
                    left.density, right.density,
                ) + be.est_call_overhead_flops
                # Factored propagation: dA B (thin right-pass), A dB
                # (thin left-pass), dA dB (thin-thin core) — one kernel
                # call each.
                if left.width:
                    delta_cost += be.est_matmul_flops(
                        (right.cols, right.rows), (right.rows, left.width),
                        right.density,
                    ) + delta_call
                if right.width:
                    delta_cost += be.est_matmul_flops(
                        (left.rows, left.cols), (left.cols, right.width),
                        left.density,
                    ) + delta_call
                if left.width and right.width:
                    delta_cost += (4.0 * left.rows * left.width * right.width
                                   + delta_call)
                left = _Annotation(
                    left.rows, right.cols,
                    _product_density(left.density, right.density, left.cols),
                    left.width + right.width,
                )
            return left
        if isinstance(node, ScalarMul):
            child = walk(node.child)
            eval_cost += be.est_add_flops(
                (child.rows, child.cols), child.density
            ) + be.est_call_overhead_flops
            if child.width:
                delta_cost += (2.0 * child.rows * child.width
                               + delta_call)
            return child
        if isinstance(node, Transpose):
            child = walk(node.child)
            return _Annotation(child.cols, child.rows, child.density,
                               child.width)
        if isinstance(node, Inverse):
            child = walk(node.child)
            n = child.rows
            eval_cost += 2.0 * n ** 3 + be.est_call_overhead_flops
            # Incremental inverse maintenance is Sherman–Morrison per
            # delta column: O(n^2) each.
            if child.width:
                delta_cost += (4.0 * n * n * child.width
                               + delta_call)
            return _Annotation(n, n, 1.0, child.width)
        if isinstance(node, (HStack, VStack)):
            parts = [walk(child) for child in node.children]
            if isinstance(node, HStack):
                rows = parts[0].rows
                cols = sum(part.cols for part in parts)
            else:
                rows = sum(part.rows for part in parts)
                cols = parts[0].cols
            return _Annotation(rows, cols,
                               max(part.density for part in parts),
                               sum(part.width for part in parts))
        raise TypeError(f"cannot estimate cost of {type(node).__name__}")

    space = sum(
        be.est_entries((a.rows, a.cols), a.density) for a in ann.values()
    )
    for stmt in program.statements:
        result = walk(stmt.expr)
        if result.width:
            # Applying the statement's factored delta to the view.
            delta_cost += be.est_add_outer_flops(
                (result.rows, result.cols), result.density,
                result.width, u_nnz,
            ) + delta_call
        ann[stmt.target.name] = result
        space += be.est_entries((result.rows, result.cols), result.density)

    apply_flops = be.est_add_outer_flops(
        (upd.rows, upd.cols), upd.density, rank, 1.0
    )
    if strategy == "REEVAL":
        return CostEstimate(
            eval_cost,
            apply_flops + be.est_call_overhead_flops + eval_cost,
            space,
        )
    return CostEstimate(
        eval_cost, apply_flops + delta_call + delta_cost, space
    )


__all__ = ["infer_dims", "program_cost"]
