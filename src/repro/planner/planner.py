"""Cost-driven maintenance planning: pick the cheapest admissible plan.

The Section 5 analysis answers "which strategy and iterative model
should I run?" for the dense closed forms; after the backend refactor
the real decision space also has a physical axis (dense vs sparse
state) and an execution axis (interpreted vs generated triggers).
:func:`plan_powers`, :func:`plan_general` and :func:`plan_program` rank
the full grid with the nnz-aware cost model
(:mod:`repro.cost.estimate`, :mod:`repro.planner.programcost`) and
return the winner as a :class:`~repro.planner.plan.MaintenancePlan` —
what F-IVM does for rings of aggregates, done here for LINVIEW's
strategy x model x backend x mode space.

Setup costs are amortized over ``stats.refresh_count``, so short-lived
workloads plan toward plain re-evaluation while long-lived streams
accept expensive view building for cheap refreshes.
"""

from __future__ import annotations

from typing import Mapping

from ..backends import available_backends
from ..calibrate import calibrated
from ..compiler.program import Program
from ..cost.advisor import recommend_general, recommend_powers
from ..cost.estimate import (
    batch_unit_cost,
    heavy_light_unit_cost,
    sharded_refresh_cost,
)
from ..runtime.executor import resolve_dim
from .plan import (
    INCR,
    REEVAL,
    MaintenancePlan,
    WorkloadStats,
    resolve_distinct_fraction,
)
from .programcost import infer_dims, program_cost

#: Refresh count at or above which sessions compile triggers to Python
#: source once (``mode="codegen"``) instead of interpreting the AST per
#: update — the compile cost amortizes quickly, but one-shot sessions
#: shouldn't pay it.
CODEGEN_MIN_REFRESHES = 32

#: Candidate update-batch widths the planner grids over (capped or
#: extended by ``WorkloadStats.batch_hint``).
BATCH_GRID = (1, 2, 4, 8, 16, 32)


def _mode_for(stats: WorkloadStats) -> str:
    return "codegen" if stats.refresh_count >= CODEGEN_MIN_REFRESHES else "interpret"


def _batch_widths(batch_hint: int | None) -> tuple[int, ...]:
    if batch_hint is None:
        return BATCH_GRID
    cap = max(int(batch_hint), 1)
    widths = [w for w in BATCH_GRID if w <= cap]
    if cap not in widths:
        widths.append(cap)
    return tuple(widths)


def _refresh_cost_memo(
    be,
    strategy: str,
    program: Program,
    dims,
    densities,
    rank: int,
    update_input: str | None,
    inplace: bool,
    base_refresh: float | None = None,
):
    """A memoized ``update_rank -> per-refresh flops`` closure.

    Shared by the batch-width and partition recommenders so each
    (strategy, backend) cell walks the program tree once per distinct
    rank, not once per candidate.  ``base_refresh`` seeds the memo with
    the caller's already-computed rank-``rank`` cost.
    """
    memo: dict[int, float] = {}
    if base_refresh is not None:
        memo[rank] = float(base_refresh)

    def refresh_cost(r: int) -> float:
        if r not in memo:
            memo[r] = program_cost(
                be, strategy, program, dims, densities,
                rank=r, update_input=update_input, inplace=inplace,
            ).refresh
        return memo[r]

    return refresh_cost


def _recommend_batch(
    be,
    rows: int,
    cols: int,
    rank: int,
    batch_hint: int | None,
    refresh_cost,
    distinct=None,
) -> tuple[int, float]:
    """Cheapest per-update batch width for this (strategy, backend) cell.

    Prices :meth:`BatchCollector.flush`'s QR+SVD compaction against the
    per-unit-width propagation it saves (Table 4): a width-``m`` batch
    pays one compaction plus one rank-``m·rank`` refresh instead of
    ``m`` rank-``rank`` refreshes — amortizing both per-call overhead
    and, for REEVAL, the whole re-evaluation.

    ``refresh_cost`` is a :func:`_refresh_cost_memo` closure.
    ``distinct`` is the workload's
    :attr:`~repro.planner.plan.WorkloadStats.distinct_fraction`: how
    much of a stacked batch survives compaction — ``None`` keeps the
    conservative no-compression default, a
    :class:`~repro.planner.plan.StreamSketch` prices each width from
    the observed stream's target skew (the Zipf knob of Table 4).

    Returns ``(width, per_update_cost)`` — the winning width and its
    predicted per-*update* cost (equal to the plain refresh cost when
    width 1 wins).
    """

    def unit_cost(m: int) -> float:
        return batch_unit_cost(
            be, refresh_cost, rows, cols, m, rank=rank,
            distinct_fraction=resolve_distinct_fraction(distinct, m * rank),
        )

    best = min(_batch_widths(batch_hint), key=unit_cost)
    return int(best), unit_cost(best)


def _recommend_partition(
    be,
    rows: int,
    cols: int,
    rank: int,
    refresh_cost,
    distinct,
    uniform_unit: float,
) -> tuple[str, int | None, float]:
    """Cheapest partition mode for this (strategy, backend) cell.

    Grids the heavy-set budgets of
    :data:`~repro.runtime.heavylight.HEAVY_BUDGET_GRID` through
    :func:`~repro.cost.estimate.heavy_light_unit_cost`, charging eager
    cost on the sketch's observed heavy mass and deferred-fold cost on
    the tail, against ``uniform_unit`` — the best uniform-batching
    per-update cost from :func:`_recommend_batch`.  ``heavy-light`` is
    recommended only when a budget prices strictly below uniform;
    without a skew-measuring sketch (a plain float or ``None``
    ``distinct_fraction``) — or when the sketch sees a uniform stream
    and its heavy set collapses to empty — the recommendation stays
    ``uniform``.

    Returns ``(partition, heavy_budget, per_update_cost)``.
    """
    if distinct is None or not hasattr(distinct, "heavy_share"):
        return "uniform", None, float(uniform_unit)
    from ..runtime.heavylight import DEFAULT_RANK_BOUND, HEAVY_BUDGET_GRID

    best: tuple[str, int | None, float] = ("uniform", None, float(uniform_unit))
    for budget in HEAVY_BUDGET_GRID:
        share = float(distinct.heavy_share(budget))
        if share <= 0.0:
            continue
        unit = heavy_light_unit_cost(
            be, refresh_cost, rows, cols, budget, rank=rank,
            heavy_share=share,
            light_fraction=distinct.light_fraction(budget, DEFAULT_RANK_BOUND),
            rank_bound=DEFAULT_RANK_BOUND,
        )
        if unit < best[2]:
            best = ("heavy-light", int(budget), unit)
    return best


def plan_powers(stats: WorkloadStats) -> MaintenancePlan:
    """Cheapest plan for maintaining ``A^k`` (Section 5.2 workloads)."""
    best = recommend_powers(
        stats.n, stats.k,
        gamma=stats.gamma,
        memory_budget=stats.memory_budget,
        density=stats.density,
        rank=stats.update_rank,
        refreshes=stats.refresh_count,
    )[0]
    return MaintenancePlan(
        best.strategy, best.model, best.s, best.backend, "interpret",
        best.time, best.space,
    )


def plan_general(stats: WorkloadStats) -> MaintenancePlan:
    """Cheapest plan for ``T_{i+1} = A T_i + B`` (Section 5.3 workloads)."""
    best = recommend_general(
        stats.n, stats.p, stats.k,
        gamma=stats.gamma,
        memory_budget=stats.memory_budget,
        density=stats.density,
        rank=stats.update_rank,
        refreshes=stats.refresh_count,
        has_b=stats.has_b,
    )[0]
    return MaintenancePlan(
        best.strategy, best.model, best.s, best.backend, "interpret",
        best.time, best.space,
    )


def rank_program(
    program: Program,
    inputs: Mapping | None = None,
    stats: WorkloadStats | None = None,
    dims: Mapping[str, int] | None = None,
    update_input: str | None = None,
    backends=None,
    strategies=(REEVAL, INCR),
    calibration="auto",
    amortize_setup: bool = True,
    price_batching: bool = False,
    nodes=(1,),
) -> list[MaintenancePlan]:
    """Every admissible session plan, cheapest first.

    The grid is (strategy in {INCR, REEVAL}) x backend x node-count;
    ``nodes`` lists the worker counts to price (``(1,)`` keeps the
    single-process grid).  Sharded cells (``N > 1``) exist only for
    dense INCR over chain-shaped programs — the form the shared-memory
    engine executes — and are priced with the Amdahl + IPC comm term
    (:func:`repro.cost.estimate.sharded_refresh_cost`), so tiny views
    lose to single-process on the IPC tax while large dense chains win.
    ``inputs``
    (initial values) supply the dimension bindings and measured
    densities; ``stats`` supplies the update rank and expected refresh
    count.  ``calibration`` feeds machine-measured cost constants into
    the backends' ``est_*`` hooks (``"auto"`` loads the
    :mod:`repro.calibrate` cache, ``None`` keeps the class constants, a
    :class:`~repro.calibrate.Calibration` is used verbatim).

    With ``amortize_setup=False`` each candidate's ``predicted_time`` is
    the bare per-refresh cost — what an *already-built* session would
    pay.  Online re-planning ranks on this form: mid-stream the views
    exist, so setup is sunk and only refresh cost (plus the explicit
    switch cost) matters.

    With ``price_batching=True`` each cell's refresh is priced at its
    recommended batch width's per-*update* cost instead of the plain
    per-refresh cost.  Sessions honor ``batch_size`` by default, so a
    monitor comparing live configurations must compare what the cells
    will actually run — otherwise it switches away from a cell whose
    batched form is the real winner (CSR-merge amortization being the
    canonical case).  The default ``False`` keeps opening-plan
    rankings on the conservative unbatched form.
    """
    inputs = dict(inputs or {})
    resolved_dims = dict(dims or {})
    for name, size in infer_dims(program, inputs).items():
        resolved_dims.setdefault(name, size)

    densities = {
        name: WorkloadStats.measure_density(inputs[name])
        for name in program.input_names
        if inputs.get(name) is not None
    }
    rank = stats.update_rank if stats is not None else 1
    refreshes = stats.refresh_count if stats is not None else (
        WorkloadStats(n=1).refresh_count
    )
    mode_stats = stats or WorkloadStats(n=1, refresh_count=refreshes)

    if backends is None:
        backends = [b for b in ("dense", "sparse") if b in available_backends()]

    batch_hint = stats.batch_hint if stats is not None else None
    distinct = stats.distinct_fraction if stats is not None else None

    node_counts = sorted({max(int(count), 1) for count in nodes}) or [1]
    shardable = None
    if any(count > 1 for count in node_counts):
        from ..distributed.sharded import chain_steps

        shardable = chain_steps(program)
    target = update_input or program.input_names[0]
    target_n = resolve_dim(program.input(target).shape.rows, resolved_dims)
    target_cols = resolve_dim(program.input(target).shape.cols, resolved_dims)

    candidates = []
    for backend_name in backends:
        try:
            be = calibrated(backend_name, calibration)
        except (ValueError, RuntimeError):
            continue
        for strategy in strategies:
            mode = _mode_for(mode_stats) if strategy == INCR else "interpret"
            # Codegen sessions run the fused in-place fast path, so
            # those cells are priced with the allocation discount.
            inplace = strategy == INCR and mode == "codegen"
            cost = program_cost(
                be, strategy, program, resolved_dims, densities,
                rank=rank, update_input=update_input, inplace=inplace,
            )
            refresh_fn = _refresh_cost_memo(
                be, strategy, program, resolved_dims, densities,
                rank, update_input, inplace, base_refresh=cost.refresh,
            )
            batch, batched_unit = _recommend_batch(
                be, target_n, target_cols, rank, batch_hint, refresh_fn,
                distinct=distinct,
            )
            partition, heavy_budget, hl_unit = _recommend_partition(
                be, target_n, target_cols, rank, refresh_fn, distinct,
                batched_unit,
            )
            unit = hl_unit if partition == "heavy-light" else batched_unit
            refresh = unit if price_batching else cost.refresh
            predicted = ((cost.setup + refreshes * refresh)
                         / max(refreshes, 1)
                         if amortize_setup else refresh)
            candidates.append(MaintenancePlan(
                strategy, "linear", None, be.name, mode,
                predicted, cost.space, batch_size=batch,
                partition=partition, heavy_budget=heavy_budget,
            ))
            for count in node_counts:
                # Sharded cells: dense INCR over chain programs only
                # (what the shared-memory engine can execute), priced
                # on the *unbatched* interpret path the engine runs.
                if (count <= 1 or strategy != INCR
                        or be.name != "dense" or shardable is None):
                    continue
                sharded = sharded_refresh_cost(
                    be, cost.refresh, target_n, len(program.statements),
                    rank, count,
                )
                predicted_sharded = (
                    (cost.setup + refreshes * sharded) / max(refreshes, 1)
                    if amortize_setup else sharded
                )
                candidates.append(MaintenancePlan(
                    strategy, "linear", None, be.name, "interpret",
                    predicted_sharded, cost.space, batch_size=batch,
                    nodes=count,
                ))
    if not candidates:
        raise RuntimeError("no execution backend available to plan over")
    return sorted(candidates,
                  key=lambda c: (c.predicted_time, c.predicted_space,
                                 c.backend != "dense", c.nodes))


def plan_program(
    program: Program,
    inputs: Mapping | None = None,
    stats: WorkloadStats | None = None,
    dims: Mapping[str, int] | None = None,
    update_input: str | None = None,
    backends=None,
    strategies=(REEVAL, INCR),
    calibration="auto",
    nodes=(1,),
) -> MaintenancePlan:
    """Cheapest plan for maintaining a compiled program in a session.

    Sessions have no iterative-model axis, so the grid is (strategy in
    {INCR, REEVAL}) x backend, with the execution mode chosen from the
    expected refresh count.  ``inputs`` (initial values) supply the
    dimension bindings and measured densities; ``stats`` supplies the
    update rank and expected refresh count (its other fields are not
    consulted here — densities always come from the inputs).  See
    :func:`rank_program` for the ``calibration`` axis and the full
    ranked grid.
    """
    return rank_program(
        program, inputs, stats=stats, dims=dims, update_input=update_input,
        backends=backends, strategies=strategies, calibration=calibration,
        nodes=nodes,
    )[0]


def plan_ols(m: int, n: int, p: int = 1, gamma: float = 3.0) -> MaintenancePlan:
    """Cheapest plan for streaming OLS (Section 5.1).

    OLS state (``X'X``, its inverse, ``beta``) is generically dense, so
    the decision is the Section 5.1 INCR-vs-REEVAL comparison on the
    dense closed forms; the backend axis stays dense.
    """
    from ..cost import complexity as cx

    incr = cx.ols_incr_time(m, n, p)
    reeval = cx.ols_reeval_time(m, n, p, gamma)
    if incr <= reeval:
        return MaintenancePlan(INCR, "linear", None, "dense", "interpret",
                               incr, float(n * n * 2 + n * p + m * (n + p)))
    return MaintenancePlan(REEVAL, "linear", None, "dense", "interpret",
                           reeval, float(n * n * 2 + n * p + m * (n + p)))


__all__ = [
    "CODEGEN_MIN_REFRESHES",
    "plan_general",
    "plan_ols",
    "plan_powers",
    "plan_program",
    "rank_program",
]
