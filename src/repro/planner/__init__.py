"""Cost-driven maintenance planner (strategy x model x backend x mode).

The public surface:

>>> from repro.planner import WorkloadStats, plan_general
>>> plan_general(WorkloadStats(n=2000, p=1, k=16, density=0.01)).backend
'sparse'

:class:`MaintenancePlan` is accepted wherever the API takes a
``strategy`` — the session factory
(:func:`repro.runtime.session.open_session`), the iterative strategy
factories (:mod:`repro.iterative.strategies`), and the analytics
drivers — so one planning decision configures the whole stack.
"""

from .plan import (
    HYBRID,
    INCR,
    REEVAL,
    MaintenancePlan,
    StreamSketch,
    WorkloadStats,
    resolve_distinct_fraction,
    resolve_driver_strategy,
)
from .planner import (
    CODEGEN_MIN_REFRESHES,
    plan_general,
    plan_ols,
    plan_powers,
    plan_program,
    rank_program,
)
from .programcost import infer_dims, program_cost

__all__ = [
    "CODEGEN_MIN_REFRESHES",
    "HYBRID",
    "INCR",
    "MaintenancePlan",
    "REEVAL",
    "StreamSketch",
    "WorkloadStats",
    "infer_dims",
    "resolve_distinct_fraction",
    "plan_general",
    "plan_ols",
    "plan_powers",
    "plan_program",
    "program_cost",
    "rank_program",
    "resolve_driver_strategy",
]
