"""Shared benchmark harness (timing protocol + paper-style reporting)."""

from .harness import Series, compare_strategies, time_refresh, time_refresh_trimmed
from .reporting import (
    format_seconds,
    paper_vs_measured,
    render_comparison_table,
    render_series,
)

__all__ = [
    "Series",
    "compare_strategies",
    "format_seconds",
    "paper_vs_measured",
    "render_comparison_table",
    "render_series",
    "time_refresh",
    "time_refresh_trimmed",
]
