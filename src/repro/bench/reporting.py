"""Paper-style result rendering for the benchmark harness.

Each experiment prints (a) the measured series in the same layout the
paper's figure/table uses and (b) a paper-vs-measured speedup line, so
``pytest benchmarks/ --benchmark-only`` output doubles as the
EXPERIMENTS.md evidence.
"""

from __future__ import annotations

from .harness import Series


def format_seconds(seconds: float) -> str:
    """Human-scaled time: us / ms / s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.3f}s "


def render_series(series: Series, baseline: str | None = None) -> str:
    """One row per label, with speedups against a baseline label."""
    lines = [f"== {series.title} =="]
    base = series.value(baseline) if baseline else None
    for label, value in zip(series.labels, series.values):
        speed = ""
        if base is not None and label != baseline and value > 0:
            speed = f"   ({base / value:5.1f}x vs {baseline})"
        lines.append(f"  {label:<18} {format_seconds(value)}{speed}")
    return "\n".join(lines)


def render_comparison_table(
    title: str,
    columns: list[str],
    rows: dict[str, list[float]],
    formatter=format_seconds,
) -> str:
    """A labelled rows x columns table (Tables 3 and 4 layout)."""
    width = max(len(c) for c in columns) + 2
    header = " " * 16 + "".join(f"{c:>{width}}" for c in columns)
    lines = [f"== {title} ==", header]
    for label, values in rows.items():
        cells = "".join(f"{formatter(v):>{width}}" for v in values)
        lines.append(f"{label:<16}{cells}")
    return "\n".join(lines)


def paper_vs_measured(
    experiment: str, paper_note: str, measured: float, unit: str = "x"
) -> str:
    """One-line provenance record tying a measurement to the paper claim."""
    return (
        f"[{experiment}] paper: {paper_note} | measured: {measured:.1f}{unit} "
        f"(shape comparison at repro scale; see EXPERIMENTS.md)"
    )
