"""Benchmark harness: refresh-time measurement and series runners.

The paper's figures report the *average view refresh time over a
continuous stream of updates*.  :func:`time_refresh` reproduces that
protocol: warm the maintainer with one update, then time ``repeats``
further updates and average.  :func:`compare_strategies` runs a family
of maintainers over the same update stream and returns a
:class:`Series` of label -> seconds, which the reporting module renders
in the figures' layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np


@dataclass
class Series:
    """A labelled series of measurements (one figure curve / bar group)."""

    title: str
    labels: list[str] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, label: str, value: float) -> None:
        """Append one measurement."""
        self.labels.append(label)
        self.values.append(value)

    def value(self, label: str) -> float:
        """Look up a measurement by label."""
        return self.values[self.labels.index(label)]

    def speedup(self, base_label: str, other_label: str) -> float:
        """Ratio ``base / other`` (how much faster ``other`` is)."""
        return self.value(base_label) / self.value(other_label)


def time_refresh(
    maintainer,
    updates: Sequence[tuple[np.ndarray, np.ndarray]],
    warmup: int = 1,
) -> float:
    """Average seconds per ``refresh(u, v)`` over an update stream.

    The first ``warmup`` updates are applied untimed (cache warming, lazy
    materialization); the rest are individually timed and averaged.
    """
    updates = list(updates)
    if len(updates) <= warmup:
        raise ValueError("need more updates than warmup steps")
    for u, v in updates[:warmup]:
        maintainer.refresh(u, v)
    start = time.perf_counter()
    for u, v in updates[warmup:]:
        maintainer.refresh(u, v)
    elapsed = time.perf_counter() - start
    return elapsed / (len(updates) - warmup)


def time_refresh_trimmed(
    maintainer,
    updates: Sequence[tuple[np.ndarray, np.ndarray]],
    warmup: int = 1,
    trim: int = 2,
) -> float:
    """Trimmed-mean seconds per ``refresh(u, v)``.

    Like :func:`time_refresh` but each refresh is timed individually and
    the ``trim`` fastest and slowest samples are discarded before
    averaging.  Shape assertions in the figure reports (e.g. "the
    speedup grows with n") compare ratios of small timings, where a
    single scheduler hiccup in a 4-sample mean can flip the ordering;
    the trimmed mean makes those comparisons stable at laptop scale.
    """
    updates = list(updates)
    if len(updates) - warmup <= 2 * trim:
        raise ValueError("need more than warmup + 2*trim updates")
    for u, v in updates[:warmup]:
        maintainer.refresh(u, v)
    samples: list[float] = []
    for u, v in updates[warmup:]:
        start = time.perf_counter()
        maintainer.refresh(u, v)
        samples.append(time.perf_counter() - start)
    samples.sort()
    kept = samples[trim:len(samples) - trim]
    return sum(kept) / len(kept)


def compare_strategies(
    title: str,
    factories: dict[str, Callable[[], object]],
    updates_factory: Callable[[], Iterable[tuple[np.ndarray, np.ndarray]]],
    warmup: int = 1,
) -> Series:
    """Time several maintainers over identical update streams.

    ``factories`` maps labels to zero-argument constructors (fresh state
    per strategy); ``updates_factory`` must yield the *same* stream each
    call (seeded), so all strategies see identical updates.
    """
    series = Series(title)
    for label, factory in factories.items():
        maintainer = factory()
        updates = list(updates_factory())
        series.add(label, time_refresh(maintainer, updates, warmup))
    return series
