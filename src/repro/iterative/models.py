"""Iterative models of computation (Section 3.2).

A :class:`Model` decides *which* iterations are materialized on the way
to iteration ``k``:

* **linear** — every step: ``1, 2, 3, ..., k``;
* **exponential** — doubling: ``1, 2, 4, ..., k``;
* **skip-s** — exponential up to ``s``, then every ``s``-th step:
  ``1, 2, 4, ..., s, 2s, 3s, ..., k``.

Skip-1 coincides with the linear model and skip-k with the exponential
model, which the tests assert.  Following the paper's presentation we
require ``k``, ``s`` and ``k/s`` to be the usual powers-of-two/integers
so all three schedules land exactly on ``k``.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ..."""
    return value >= 1 and (value & (value - 1)) == 0


class Model:
    """An iterative model: ``linear``, ``exponential`` or ``skip-s``."""

    LINEAR = "linear"
    EXPONENTIAL = "exponential"
    SKIP = "skip"

    def __init__(self, kind: str, s: int | None = None):
        if kind not in (self.LINEAR, self.EXPONENTIAL, self.SKIP):
            raise ValueError(f"unknown model kind {kind!r}")
        if kind == self.SKIP:
            if s is None or s < 1:
                raise ValueError("skip model needs a skip size s >= 1")
            if not is_power_of_two(s):
                raise ValueError(f"skip size must be a power of two, got {s}")
        elif s is not None:
            raise ValueError(f"{kind} model takes no skip size")
        self.kind = kind
        self.s = s

    # -- constructors ------------------------------------------------------
    @staticmethod
    def linear() -> "Model":
        """Every iteration step (the paper's LIN)."""
        return Model(Model.LINEAR)

    @staticmethod
    def exponential() -> "Model":
        """Exponentiation by squaring (the paper's EXP)."""
        return Model(Model.EXPONENTIAL)

    @staticmethod
    def skip(s: int) -> "Model":
        """Exponential to ``s`` then every ``s``-th step (SKIP-s)."""
        return Model(Model.SKIP, s)

    # -- behaviour -----------------------------------------------------------
    @property
    def name(self) -> str:
        """Paper-style label: ``LIN``, ``EXP`` or ``SKIP-s``."""
        if self.kind == self.LINEAR:
            return "LIN"
        if self.kind == self.EXPONENTIAL:
            return "EXP"
        return f"SKIP-{self.s}"

    def validate_k(self, k: int) -> None:
        """Check that iteration count ``k`` fits this model's schedule."""
        if k < 1:
            raise ValueError(f"iteration count must be >= 1, got {k}")
        if self.kind == self.EXPONENTIAL and not is_power_of_two(k):
            raise ValueError(f"exponential model needs k a power of two, got {k}")
        if self.kind == self.SKIP:
            assert self.s is not None
            if k < self.s:
                raise ValueError(f"skip-{self.s} needs k >= s, got k={k}")
            if k % self.s != 0:
                raise ValueError(f"skip-{self.s} needs s | k, got k={k}")

    def schedule(self, k: int) -> list[int]:
        """The materialized iteration indices, in evaluation order."""
        self.validate_k(k)
        if self.kind == self.LINEAR:
            return list(range(1, k + 1))
        if self.kind == self.EXPONENTIAL:
            steps = [1]
            while steps[-1] < k:
                steps.append(steps[-1] * 2)
            return steps
        assert self.s is not None
        steps = [1]
        while steps[-1] < self.s:
            steps.append(steps[-1] * 2)
        nxt = 2 * self.s
        while nxt <= k:
            steps.append(nxt)
            nxt += self.s
        return steps

    def predecessor(self, i: int) -> int:
        """The materialized iteration that iteration ``i`` is built from."""
        if i == 1:
            raise ValueError("iteration 1 is built from the inputs")
        if self.kind == self.LINEAR:
            return i - 1
        if self.kind == self.EXPONENTIAL:
            return i // 2
        assert self.s is not None
        return i // 2 if i <= self.s else i - self.s

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Model) and (other.kind, other.s) == (self.kind, self.s)

    def __hash__(self) -> int:
        return hash((self.kind, self.s))

    def __repr__(self) -> str:
        return f"Model({self.name})"
