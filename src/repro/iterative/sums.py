"""Sums of matrix powers ``S_i = I + A + ... + A^{i-1}`` (Section 5.2.3).

Recurrences (Table 1, middle column):

* linear:       ``S_1 = I``;  ``S_i = A S_{i-1} + I``
* exponential:  ``S_i = P_{i/2} S_{i/2} + S_{i/2}``
* skip-s:       exponential to ``s``, then ``S_i = P_s S_{i-s} + S_s``

The exponential and skip models piggyback on the matrix-powers views
``P_i``, so both maintainers own an embedded powers maintainer of the
same strategy; reported FLOPs include that upkeep, matching the paper's
accounting ("the complexity of each iteration step has remained
unchanged").

Like :class:`~repro.iterative.powers.IncrementalPowers`, the incremental
maintainer separates :meth:`IncrementalPowerSums.compute_factors`
(pure) from :meth:`IncrementalPowerSums.apply_factors` so the Appendix B
general-form maintainers can read sum deltas before application.
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from ..cost.ops import Ops
from .models import Model
from .powers import FactorDict, IncrementalPowers, ReevalPowers

#: Sum deltas may be zero (``S_1 = I`` never changes): ``i -> (Z, W) | None``.
OptionalFactorDict = dict[int, "tuple[np.ndarray, np.ndarray] | None"]


def _powers_horizon(model: Model, k: int) -> int:
    """Highest power index the sums recurrence reads (``P_h``)."""
    if model.kind == Model.LINEAR or k <= 1:
        return 1
    if model.kind == Model.EXPONENTIAL:
        return max(k // 2, 1)
    assert model.s is not None
    return min(model.s, max(k // 2, 1))


class ReevalPowerSums:
    """Re-evaluation baseline for ``S_k`` (strategy REEVAL)."""

    def __init__(
        self,
        a: np.ndarray,
        k: int,
        model: Model,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        self.model = model
        self.k = k
        self.schedule = model.schedule(k)
        self.ops = Ops(counter, backend)
        self.a = self.ops.backend.asarray(a, copy=True)
        self._powers = (
            ReevalPowers(a, _powers_horizon(model, k), model, counter,
                         backend=self.ops.backend)
            if model.kind != Model.LINEAR and k > 1
            else None
        )
        self.sums: dict[int, np.ndarray] = {}
        self._recompute()

    def _power(self, i: int) -> np.ndarray:
        assert self._powers is not None
        return self._powers.powers[i]

    def _recompute(self) -> None:
        previous = self.sums
        n = self.a.shape[0]
        eye = getattr(self, "_eye", None)
        if eye is None:  # built once; S_1 = I is never mutated
            eye = self._eye = self.ops.backend.eye(n)
        self.sums = {1: eye}
        for i in self.schedule[1:]:
            j = self.model.predecessor(i)
            h = i - j
            # Each product lands in the previous refresh's S_i storage
            # and the trailing term accumulates with an aliasing add —
            # operands read strictly earlier schedule entries, so the
            # destination never aliases an input.
            out = previous.get(i)
            if self.model.kind == Model.LINEAR:
                step = self.ops.mm_into(self.a, self.sums[i - 1], out)
                self.sums[i] = self.ops.add_into(step, eye, step)
            else:
                # S_i = P_h S_j + S_h (h = j exponential, h = s skip phase)
                step = self.ops.mm_into(self._power(h), self.sums[j], out)
                self.sums[i] = self.ops.add_into(step, self.sums[h], step)

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``A += u v'`` and recompute every scheduled sum."""
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        self.a = self.ops.add_outer_inplace(self.a, u, v)
        if self._powers is not None:
            self._powers.refresh(u, v)
        self._recompute()

    def result(self) -> np.ndarray:
        """The maintained ``S_k``."""
        return self.sums[self.k]

    def memory_bytes(self) -> int:
        """REEVAL keeps only current-iteration state (Table 2: ``O(n^2)``)."""
        return (4 if self._powers is not None else 3) * self.ops.backend.nbytes(
            self.a
        )


class IncrementalPowerSums:
    """Incremental maintenance of all scheduled ``S_i`` (strategy INCR).

    Deltas follow Appendix A's pattern.  For the exponential model with
    ``dP_h = Q R'`` and ``dS_h = Z W'``::

        dS_i = d(P_h S_h) + dS_h
             = [Q | P_h Z + Q (R' Z) + Z] @ [S_h' R | W]'

    (the trailing ``dS_h`` folds into the second block because both
    share the right factor ``W``) — width ``2i``, ``O(n^2 i)`` a step.
    """

    def __init__(
        self,
        a: np.ndarray,
        k: int,
        model: Model,
        counter: counters.Counter = counters.NULL_COUNTER,
        powers: IncrementalPowers | None = None,
        backend=None,
        workspace=None,
    ):
        self.model = model
        self.k = k
        self.schedule = model.schedule(k)
        self.ops = Ops(counter, backend, workspace=workspace)
        self.owns_powers = powers is None
        if powers is not None:
            needed = _powers_horizon(model, k)
            if needed > 1 and needed not in powers.powers:
                raise ValueError(
                    f"shared powers maintainer lacks P_{needed} needed by sums"
                )
            self.powers = powers
        else:
            # An owned powers maintainer shares the arena: its factor
            # scratch and ours live in one frame per refresh.
            self.powers = (
                IncrementalPowers(a, _powers_horizon(model, k), model, counter,
                                  backend=self.ops.backend,
                                  workspace=self.ops.workspace)
                if model.kind != Model.LINEAR and k > 1
                else None
            )
        self.a = self.ops.backend.asarray(a, copy=True)
        self.sums: dict[int, np.ndarray] = {}
        # Initial materialization is not charged to refreshes.
        ops = Ops(backend=self.ops.backend)
        n = self.a.shape[0]
        eye = self.ops.backend.eye(n)
        self.sums[1] = eye
        for i in self.schedule[1:]:
            j = self.model.predecessor(i)
            h = i - j
            if self.model.kind == Model.LINEAR:
                self.sums[i] = ops.add(ops.mm(self.a, self.sums[i - 1]), eye)
            else:
                self.sums[i] = ops.add(
                    ops.mm(self._power(h), self.sums[j]), self.sums[h]
                )

    def _power(self, i: int) -> np.ndarray:
        assert self.powers is not None
        return self.powers.powers[i]

    def compute_factors(
        self, u: np.ndarray, v: np.ndarray, power_factors: FactorDict | None = None
    ) -> OptionalFactorDict:
        """Factored deltas ``dS_i`` for ``A += u v'`` against *old* state.

        ``power_factors`` may pass in already computed power deltas (the
        general-form maintainer shares them); otherwise they are derived
        here.  Entries are ``None`` where the delta is identically zero
        (always for ``S_1 = I``).
        """
        ops = self.ops
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        with ops.frame():
            return self._compute_factors(ops, u, v, power_factors)

    def _compute_factors(
        self, ops: Ops, u: np.ndarray, v: np.ndarray,
        power_factors: FactorDict | None,
    ) -> OptionalFactorDict:
        if self.powers is not None and power_factors is None:
            power_factors = self.powers.compute_factors(u, v)

        factors: OptionalFactorDict = {1: None}
        for i in self.schedule[1:]:
            j = self.model.predecessor(i)
            h = i - j
            if self.model.kind == Model.LINEAR:
                # dS_i = d(A S_{i-1}); dA = (u, v), dS_{i-1} = (Z, W)
                prev = factors[i - 1]
                if prev is None:
                    factors[i] = (u, ops.mm(self.sums[i - 1].T, v))
                else:
                    big_z, big_w = prev
                    left = ops.hstack(
                        [u, ops.add(ops.mm(self.a, big_z),
                                    ops.mm(u, ops.mm(v.T, big_z)))]
                    )
                    right = ops.hstack([ops.mm(self.sums[i - 1].T, v), big_w])
                    factors[i] = (left, right)
                continue
            # dS_i = d(P_h S_j) + dS_h
            assert power_factors is not None
            q, r = power_factors[h]
            prev = factors[j]
            blocks_left = [q]
            blocks_right = [ops.mm(self.sums[j].T, r)]
            if prev is not None:
                big_z, big_w = prev
                middle = ops.add(
                    ops.mm(self._power(h), big_z), ops.mm(q, ops.mm(r.T, big_z))
                )
                if h == j:
                    # Exponential: dS_h = dS_j shares the right factor W.
                    middle = ops.add(middle, big_z)
                    blocks_left.append(middle)
                    blocks_right.append(big_w)
                else:
                    blocks_left.append(middle)
                    blocks_right.append(big_w)
                    tail = factors[h]
                    if tail is not None:
                        blocks_left.append(tail[0])
                        blocks_right.append(tail[1])
            elif h != j:
                tail = factors[h]
                if tail is not None:
                    blocks_left.append(tail[0])
                    blocks_right.append(tail[1])
            factors[i] = (ops.hstack(blocks_left), ops.hstack(blocks_right))
        return factors

    def apply_factors(
        self, factors: OptionalFactorDict, power_factors: FactorDict | None = None
    ) -> None:
        """Apply sum deltas (and power deltas, when sums own the powers).

        When the powers maintainer is shared (passed in at construction),
        its owner is responsible for applying ``power_factors``.
        """
        for i in self.schedule[1:]:
            entry = factors[i]
            if entry is not None:
                big_z, big_w = entry
                self.sums[i] = self.ops.add_outer_inplace(self.sums[i], big_z, big_w)
        if self.powers is not None and power_factors is not None and self.owns_powers:
            self.powers.apply_factors(power_factors)
        if self.powers is not None:
            self.a = self.powers.a

    def refresh(self, u: np.ndarray, v: np.ndarray) -> OptionalFactorDict:
        """Maintain every scheduled sum for ``A += u v'`` (standalone use).

        Raises when the powers maintainer is shared — the owner must
        orchestrate via :meth:`compute_factors` / :meth:`apply_factors`
        so powers are applied exactly once.
        """
        if not self.owns_powers:
            raise RuntimeError(
                "refresh() on a sums maintainer with shared powers; "
                "drive it via compute_factors/apply_factors instead"
            )
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        with self.ops.frame():
            power_factors = (
                self.powers.compute_factors(u, v)
                if self.powers is not None else None
            )
            factors = self.compute_factors(u, v, power_factors)
            self.apply_factors(factors, power_factors)
            if self.powers is None:
                self.a = self.ops.add_outer_inplace(self.a, u, v)
        return factors

    def result(self) -> np.ndarray:
        """The maintained ``S_k``."""
        return self.sums[self.k]

    def memory_bytes(self) -> int:
        """Footprint of all materialized sums (and owned powers, if any)."""
        total = sum(self.ops.backend.nbytes(arr) for arr in self.sums.values())
        if self.powers is not None and self.owns_powers:
            total += self.powers.memory_bytes()
        return total
