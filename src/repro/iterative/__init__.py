"""Iterative models (Section 3.2) and evaluation strategies (Section 5)."""

from .general import HybridGeneral, IncrementalGeneral, ReevalGeneral
from .models import Model, is_power_of_two
from .powers import IncrementalPowers, ReevalPowers
from .strategies import (
    HYBRID,
    INCR,
    REEVAL,
    STRATEGIES,
    make_general,
    make_powers,
    make_sums,
    parse_model,
)
from .sums import IncrementalPowerSums, ReevalPowerSums

__all__ = [
    "HYBRID",
    "HybridGeneral",
    "INCR",
    "IncrementalGeneral",
    "IncrementalPowerSums",
    "IncrementalPowers",
    "Model",
    "REEVAL",
    "ReevalGeneral",
    "ReevalPowerSums",
    "ReevalPowers",
    "STRATEGIES",
    "is_power_of_two",
    "make_general",
    "make_powers",
    "make_sums",
    "parse_model",
]
