"""The general iterative form ``T_{i+1} = A T_i + B`` (Section 5.3, App. B).

``A`` is ``(n x n)``, ``T_i`` and ``B`` are ``(n x p)``; gradient
descent, PageRank, linear solvers and power iteration all take this
shape.  Unrolling gives ``T_{i+k} = A^k T_i + (A^{k-1} + ... + I) B``,
so the exponential and skip models lean on the matrix-powers views
``P_i`` and sums-of-powers views ``S_i``:

* linear:       ``T_i = A T_{i-1} + B``
* exponential:  ``T_i = P_{i/2} T_{i/2} + S_{i/2} B``
* skip-s:       exponential to ``s``, then ``T_i = P_s T_{i-s} + S_s B``

Three strategies are implemented for rank-r updates to ``A`` (updates
to ``B`` are supported as an extension; see ``refresh_b``):

* :class:`ReevalGeneral` — update ``A``, recompute (P/S via REEVAL too);
* :class:`IncrementalGeneral` — factored deltas everywhere (App. B);
* :class:`HybridGeneral` — P/S maintained incrementally in factored
  form, but ``dT_i`` kept as a *dense* ``(n x p)`` matrix.  This wins
  when ``p`` is small (``p = 1``: ``dT_i`` has rank 1 anyway, so
  factoring it just adds overhead) — the crossover Fig. 3g explores.

``B = None`` encodes the homogeneous case ``T_{i+1} = A T_i`` (Fig. 3g)
and skips all sums machinery.
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from ..cost.ops import Ops
from .models import Model
from .powers import FactorDict, IncrementalPowers, ReevalPowers
from .sums import IncrementalPowerSums, OptionalFactorDict


def _horizon(model: Model, k: int) -> int:
    """Highest P/S index the T recurrence reads (0 = none needed)."""
    if model.kind == Model.LINEAR or k <= 1:
        return 0
    if model.kind == Model.EXPONENTIAL:
        return k // 2
    assert model.s is not None
    return min(model.s, k // 2) if k > 1 else 0


class _GeneralBase:
    """Shared schedule/state plumbing for the three strategies."""

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray | None,
        t0: np.ndarray,
        k: int,
        model: Model,
        counter: counters.Counter,
        backend=None,
        workspace=None,
    ):
        self.model = model
        self.k = k
        self.schedule = model.schedule(k)
        self.ops = Ops(counter, backend, workspace=workspace)
        self.backend = self.ops.backend
        self.a = self.backend.asarray(a, copy=True)
        # Iterates and B are (n x p) with small p: thin blocks stay dense
        # under every backend (see repro.backends.base).
        self.t0 = np.array(t0, dtype=np.float64)
        if self.t0.ndim == 1:
            self.t0 = self.t0.reshape(-1, 1)
        self.b = None if b is None else np.array(b, dtype=np.float64)
        if self.b is not None and self.b.shape != self.t0.shape:
            raise ValueError(
                f"B shape {self.b.shape} must match T0 shape {self.t0.shape}"
            )
        self.horizon = _horizon(model, k)
        self.iterates: dict[int, np.ndarray] = {}

    def result(self) -> np.ndarray:
        """The maintained ``T_k``.

        Live storage, not a copy: the in-place refresh path (PR 4)
        repairs this array between calls — copy it to keep a snapshot
        that survives further updates.
        """
        return self.iterates[self.k]

    def _step(self, ops: Ops, t_prev: np.ndarray, power: np.ndarray,
              s_matrix: np.ndarray | None,
              out: np.ndarray | None = None) -> np.ndarray:
        """One recurrence application ``P T + S B`` (``S = I`` when None).

        With ``out`` (the previous refresh's iterate) the product lands
        in existing storage and the B terms accumulate in place — the
        re-evaluation strategies' allocation-free refresh.
        """
        res = ops.mm_into(power, t_prev, out)
        if self.b is not None:
            if s_matrix is None:
                res = ops.add_into(res, self.b, res)
            else:
                res = ops.add_into(res, ops.mm(s_matrix, self.b), res)
        return res

    def _power_matrix(self, h: int) -> np.ndarray:
        """The ``P_h`` operand of the recurrence (``P_1 = A`` needs no view)."""
        if h == 1:
            return self.a
        powers = getattr(self, "powers", None)
        assert powers is not None, f"P_{h} requested but no powers maintained"
        return powers.powers[h]


class ReevalGeneral(_GeneralBase):
    """Re-evaluation baseline for ``T_k`` (strategy REEVAL)."""

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray | None,
        t0: np.ndarray,
        k: int,
        model: Model,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        workspace=None,
    ):
        super().__init__(a, b, t0, k, model, counter, backend=backend,
                         workspace=workspace)
        self.powers = (
            ReevalPowers(self.a, self.horizon, model, counter,
                         backend=self.backend)
            if self.horizon > 1
            else None
        )
        self._recompute()

    def _recompute(self) -> None:
        ops = self.ops
        previous = self.iterates
        with ops.frame():
            sums = (
                self._recompute_sums()
                if self.b is not None and self.horizon > 1
                else {}
            )
            self.iterates = {}
            prev = self.t0
            for i in self.schedule:
                # Each iterate is recomputed into its previous storage
                # (operands read strictly earlier entries or old P/S).
                out = previous.get(i)
                if i == 1 or self.model.kind == Model.LINEAR:
                    nxt = self._step(ops, prev, self.a, None, out=out)
                else:
                    j = self.model.predecessor(i)
                    h = i - j
                    s_mat = sums.get(h) if h > 1 else None  # S_1 = I
                    nxt = self._step(ops, self.iterates[j],
                                     self._power_matrix(h), s_mat, out=out)
                self.iterates[i] = nxt
                prev = nxt

    def _recompute_sums(self) -> dict[int, np.ndarray]:
        """Sums of powers up to the horizon, via the model recurrence.

        Transient per refresh: with a workspace attached the blocks come
        from the arena (valid for this refresh only), so REEVAL's sums
        scratch stops churning the allocator.
        """
        ops = self.ops
        n = self.a.shape[0]
        eye = getattr(self, "_eye", None)
        if eye is None:
            eye = self._eye = self.backend.eye(n)
        sums: dict[int, np.ndarray] = {1: eye}
        for i in self.model.schedule(self.horizon)[1:]:
            j = self.model.predecessor(i)
            h = i - j
            sums[i] = ops.add(ops.mm(self._power_matrix(h), sums[j]), sums[h])
        return sums

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``A += u v'`` and recompute everything."""
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        self.a = self.ops.add_outer_inplace(self.a, u, v)
        if self.powers is not None:
            self.powers.refresh(u, v)
        self._recompute()

    def refresh_b(self, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``B += u v'`` and recompute the iterates (extension)."""
        if self.b is None:
            raise ValueError("this computation has no B input")
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        with self.ops.frame():
            self.b = self.ops.add_inplace(self.b, self.ops.mm(u, v.T))
            self._recompute()

    def memory_bytes(self) -> int:
        """REEVAL stores A, B, the current iterate (+ P/S at the horizon)."""
        total = self.backend.nbytes(self.a) + self.t0.nbytes
        if self.b is not None:
            total += self.b.nbytes
        if self.powers is not None:
            # Current P_h and S_h live while recomputing.
            total += 2 * self.backend.nbytes(self.a)
        return total


class IncrementalGeneral(_GeneralBase):
    """Fully factored incremental maintenance (strategy INCR, App. B)."""

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray | None,
        t0: np.ndarray,
        k: int,
        model: Model,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        workspace=None,
    ):
        super().__init__(a, b, t0, k, model, counter, backend=backend,
                         workspace=workspace)
        # Embedded maintainers share the arena: one frame per refresh.
        self.powers = (
            IncrementalPowers(self.a, self.horizon, model, counter,
                              backend=self.backend,
                              workspace=self.ops.workspace)
            if self.horizon > 1
            else None
        )
        self.sums = (
            IncrementalPowerSums(self.a, self.horizon, model, counter,
                                 powers=self.powers, backend=self.backend,
                                 workspace=self.ops.workspace)
            if self.horizon > 1 and self.b is not None
            else None
        )
        self._materialize()

    def _materialize(self) -> None:
        # Initial evaluation is not charged to refreshes, and must not
        # land in workspace buffers (iterates outlive every frame).
        ops = Ops(backend=self.backend)
        self.iterates = {}
        prev = self.t0
        for i in self.schedule:
            if i == 1 or self.model.kind == Model.LINEAR:
                nxt = self._step(ops, prev, self.a, None)
            else:
                j = self.model.predecessor(i)
                h = i - j
                s_h = (
                    self.sums.sums[h]
                    if self.sums is not None and h > 1
                    else None
                )
                nxt = self._step(ops, self.iterates[j], self._power_matrix(h), s_h)
            self.iterates[i] = nxt
            prev = nxt

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain all views for ``A += u v'`` with factored deltas."""
        ops = self.ops
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        with ops.frame():
            self._refresh(ops, u, v)

    def _refresh(self, ops: Ops, u: np.ndarray, v: np.ndarray) -> None:
        pf: FactorDict = (
            self.powers.compute_factors(u, v)
            if self.powers is not None
            else {1: (u, v)}
        )
        sf: OptionalFactorDict | None = None
        if self.sums is not None:
            sf = self.sums.compute_factors(u, v, pf)

        # T deltas against old state (Appendix B).
        tf: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for i in self.schedule:
            if i == 1:
                tf[1] = (u, ops.mm(self.t0.T, v))
            elif self.model.kind == Model.LINEAR:
                big_u, big_v = tf[i - 1]
                left = ops.hstack(
                    [u, ops.add(ops.mm(self.a, big_u), ops.mm(u, ops.mm(v.T, big_u)))]
                )
                right = ops.hstack([ops.mm(self.iterates[i - 1].T, v), big_v])
                tf[i] = (left, right)
            else:
                j = self.model.predecessor(i)
                h = i - j
                q, r = pf[h]
                big_u, big_v = tf[j]
                blocks_left = [
                    q,
                    ops.add(ops.mm(self._power_matrix(h), big_u),
                            ops.mm(q, ops.mm(r.T, big_u))),
                ]
                blocks_right = [ops.mm(self.iterates[j].T, r), big_v]
                if self.b is not None and sf is not None:
                    entry = sf.get(h)
                    if entry is not None:
                        z, w = entry
                        blocks_left.append(z)
                        blocks_right.append(ops.mm(self.b.T, w))
                tf[i] = (ops.hstack(blocks_left), ops.hstack(blocks_right))

        # Apply all deltas only after every factor is derived.
        for i in self.schedule:
            big_u, big_v = tf[i]
            self.iterates[i] = ops.add_outer_inplace(self.iterates[i], big_u, big_v)
        if self.sums is not None and sf is not None:
            self.sums.apply_factors(sf)
        if self.powers is not None:
            self.powers.apply_factors(pf)
            self.a = self.powers.a
        else:
            self.a = ops.add_outer_inplace(self.a, u, v)

    def refresh_b(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain all views for ``B += u v'`` (extension; P/S unchanged)."""
        if self.b is None:
            raise ValueError("this computation has no B input")
        ops = self.ops
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        with ops.frame():
            self._refresh_b(ops, u, v)

    def _refresh_b(self, ops: Ops, u: np.ndarray, v: np.ndarray) -> None:
        tf: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for i in self.schedule:
            if i == 1:
                tf[1] = (u, v)
            elif self.model.kind == Model.LINEAR:
                # dT_i = A dT_{i-1} + dB
                big_u, big_v = tf[i - 1]
                tf[i] = (
                    ops.hstack([ops.mm(self.a, big_u), u]),
                    ops.hstack([big_v, v]),
                )
            else:
                j = self.model.predecessor(i)
                h = i - j
                big_u, big_v = tf[j]
                # d(S_h B) = S_h dB; S_1 = I.
                s_term = (
                    u if h == 1 or self.sums is None
                    else ops.mm(self.sums.sums[h], u)
                )
                tf[i] = (
                    ops.hstack([ops.mm(self._power_matrix(h), big_u), s_term]),
                    ops.hstack([big_v, v]),
                )
        for i in self.schedule:
            big_u, big_v = tf[i]
            self.iterates[i] = ops.add_outer_inplace(self.iterates[i], big_u, big_v)
        self.b = ops.add_inplace(self.b, ops.mm(u, v.T))

    def memory_bytes(self) -> int:
        """Every iterate (plus P/S views) is materialized (Table 2)."""
        nbytes = self.backend.nbytes
        total = nbytes(self.a) + sum(nbytes(t) for t in self.iterates.values())
        if self.b is not None:
            total += self.b.nbytes
        if self.powers is not None:
            total += self.powers.memory_bytes()
        if self.sums is not None:
            total += self.sums.memory_bytes()
        return total


class HybridGeneral(_GeneralBase):
    """Hybrid evaluation (Section 5.3.2): dense ``dT_i``, factored P/S.

    Avoids factoring the ``(n x p)`` iterate deltas — when ``p`` is
    small the factored form costs more than it saves — while still
    maintaining the expensive square views ``P_i``/``S_i`` with
    low-rank factors.
    """

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray | None,
        t0: np.ndarray,
        k: int,
        model: Model,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        workspace=None,
    ):
        super().__init__(a, b, t0, k, model, counter, backend=backend,
                         workspace=workspace)
        self.powers = (
            IncrementalPowers(self.a, self.horizon, model, counter,
                              backend=self.backend,
                              workspace=self.ops.workspace)
            if self.horizon > 1
            else None
        )
        self.sums = (
            IncrementalPowerSums(self.a, self.horizon, model, counter,
                                 powers=self.powers, backend=self.backend,
                                 workspace=self.ops.workspace)
            if self.horizon > 1 and self.b is not None
            else None
        )
        self._materialize()

    def _materialize(self) -> None:
        # State arrays must not come from the arena (they outlive frames).
        ops = Ops(backend=self.backend)
        self.iterates = {}
        prev = self.t0
        for i in self.schedule:
            if i == 1 or self.model.kind == Model.LINEAR:
                nxt = self._step(ops, prev, self.a, None)
            else:
                j = self.model.predecessor(i)
                h = i - j
                s_h = (
                    self.sums.sums[h]
                    if self.sums is not None and h > 1
                    else None
                )
                nxt = self._step(ops, self.iterates[j], self._power_matrix(h), s_h)
            self.iterates[i] = nxt
            prev = nxt

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain all views for ``A += u v'``; ``dT_i`` stays dense."""
        ops = self.ops
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        with ops.frame():
            self._refresh(ops, u, v)

    def _refresh(self, ops: Ops, u: np.ndarray, v: np.ndarray) -> None:
        pf: FactorDict = (
            self.powers.compute_factors(u, v)
            if self.powers is not None
            else {1: (u, v)}
        )
        sf: OptionalFactorDict | None = None
        if self.sums is not None:
            sf = self.sums.compute_factors(u, v, pf)

        dt: dict[int, np.ndarray] = {}
        for i in self.schedule:
            if i == 1:
                dt[1] = ops.mm(u, ops.mm(v.T, self.t0))
            elif self.model.kind == Model.LINEAR:
                # dT_i = u (v' T_{i-1}) + A dT_{i-1} + u (v' dT_{i-1})
                prev = dt[i - 1]
                term1 = ops.mm(u, ops.mm(v.T, self.iterates[i - 1]))
                term2 = ops.mm(self.a, prev)
                term3 = ops.mm(u, ops.mm(v.T, prev))
                dt[i] = ops.add(ops.add(term1, term2), term3)
            else:
                j = self.model.predecessor(i)
                h = i - j
                q, r = pf[h]
                prev = dt[j]
                term1 = ops.mm(q, ops.mm(r.T, self.iterates[j]))
                term2 = ops.mm(self._power_matrix(h), prev)
                term3 = ops.mm(q, ops.mm(r.T, prev))
                total = ops.add(ops.add(term1, term2), term3)
                if self.b is not None and sf is not None:
                    entry = sf.get(h)
                    if entry is not None:
                        z, w = entry
                        total = ops.add(total, ops.mm(z, ops.mm(w.T, self.b)))
                dt[i] = total

        for i in self.schedule:
            self.iterates[i] = ops.add_inplace(self.iterates[i], dt[i])
        if self.sums is not None and sf is not None:
            self.sums.apply_factors(sf)
        if self.powers is not None:
            self.powers.apply_factors(pf)
            self.a = self.powers.a
        else:
            self.a = ops.add_outer_inplace(self.a, u, v)

    def refresh_b(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain all views for ``B += u v'``; P/S are unaffected."""
        if self.b is None:
            raise ValueError("this computation has no B input")
        ops = self.ops
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        with ops.frame():
            self._refresh_b(ops, u, v)

    def _refresh_b(self, ops: Ops, u: np.ndarray, v: np.ndarray) -> None:
        db = ops.mm(u, v.T)
        dt: dict[int, np.ndarray] = {}
        for i in self.schedule:
            if i == 1:
                dt[1] = db
            elif self.model.kind == Model.LINEAR:
                # dT_i = A dT_{i-1} + dB
                dt[i] = ops.add(ops.mm(self.a, dt[i - 1]), db)
            else:
                j = self.model.predecessor(i)
                h = i - j
                # dT_i = P_h dT_j + S_h dB  (S_1 = I)
                term = ops.mm(self._power_matrix(h), dt[j])
                if h == 1 or self.sums is None:
                    dt[i] = ops.add(term, db)
                else:
                    dt[i] = ops.add(term, ops.mm(self.sums.sums[h], db))
        for i in self.schedule:
            self.iterates[i] = ops.add_inplace(self.iterates[i], dt[i])
        self.b = ops.add_inplace(self.b, db)

    def memory_bytes(self) -> int:
        """Every iterate (plus P/S views) is materialized (Table 2)."""
        nbytes = self.backend.nbytes
        total = nbytes(self.a) + sum(nbytes(t) for t in self.iterates.values())
        if self.b is not None:
            total += self.b.nbytes
        if self.powers is not None:
            total += self.powers.memory_bytes()
        if self.sums is not None:
            total += self.sums.memory_bytes()
        return total
