"""Matrix powers ``P_i = A^i`` under the three iterative models (§5.2).

Two maintainers share one interface:

* :class:`ReevalPowers` — the REEVAL strategy: apply the update to
  ``A``, then recompute every scheduled power with dense products
  (``O(n^gamma)`` each; Table 2 left column).
* :class:`IncrementalPowers` — the INCR strategy: every scheduled power
  is materialized, and each update propagates *factored* deltas
  ``dP_i = U_i @ V_i'`` along the model's recurrence (Appendix A).  No
  ``n x n`` by ``n x n`` product ever runs; all work is matrix–vector
  shaped, ``O(n^2 k)`` total for the exponential model.

The incremental maintainer exposes a two-phase API —
:meth:`IncrementalPowers.compute_factors` (pure, reads old state) and
:meth:`IncrementalPowers.apply_factors` — because the downstream
general-form maintainers (Appendix B) must consume power deltas *before*
the powers are updated.  :meth:`IncrementalPowers.refresh` composes the
two for standalone use.

Factor widths grow exactly as Appendix A derives: for a rank-1 update
the width of ``dP_i`` is ``i`` in every model (``+1`` per linear step,
doubling per exponential step, ``+s`` per skip step).

Both maintainers refresh through the backends' in-place kernels: the
REEVAL recompute writes each power into its *existing* storage
(``matmul_into`` — legal because every recurrence reads strictly
earlier schedule entries), and the INCR factor algebra can lease its
scratch blocks from a :class:`~repro.runtime.workspace.Workspace`
(``workspace=True`` or a shared arena), making the steady-state refresh
allocation-free on dense state.  With a workspace attached, factor
dicts returned by ``compute_factors``/``refresh`` are backed by arena
buffers and stay valid only until the next refresh — copy them to keep
them longer.
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from ..cost.ops import Ops
from .models import Model

#: A factored delta per scheduled iteration: ``i -> (U_i, V_i)``.
FactorDict = dict[int, tuple[np.ndarray, np.ndarray]]


class ReevalPowers:
    """Re-evaluation baseline for ``A^k`` (strategy REEVAL)."""

    def __init__(
        self,
        a: np.ndarray,
        k: int,
        model: Model,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        self.model = model
        self.k = k
        self.schedule = model.schedule(k)
        self.ops = Ops(counter, backend)
        self.a = self.ops.backend.asarray(a, copy=True)
        self.powers: dict[int, np.ndarray] = {}
        self._recompute()

    def _recompute(self) -> None:
        previous = self.powers
        self.powers = {1: self.a}
        for i in self.schedule[1:]:
            j = self.model.predecessor(i)
            # P_i = P_{i-j} @ P_j covers all three recurrences:
            # linear (A @ P_{i-1}), exponential (P_h @ P_h), skip
            # (P_s @ P_{i-s}).  Each product lands in the previous
            # refresh's P_i storage — operands have strictly lower
            # indices, so the destination never aliases an input.
            self.powers[i] = self.ops.mm_into(
                self.powers[i - j], self.powers[j], previous.get(i)
            )

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``A += u v'`` and recompute every scheduled power."""
        self.a = self.ops.add_outer_inplace(
            self.a, u.reshape(len(u), -1), v.reshape(len(v), -1)
        )
        self._recompute()

    def result(self) -> np.ndarray:
        """The maintained ``A^k``."""
        return self.powers[self.k]

    def memory_bytes(self) -> int:
        """Footprint of the state REEVAL keeps between updates.

        Re-evaluation needs ``A`` plus at most two live powers while
        recomputing (Table 2: ``O(n^2)``, independent of ``k``).
        """
        return 3 * self.ops.backend.nbytes(self.a)


class IncrementalPowers:
    """Incremental maintenance of all scheduled ``A^i`` (strategy INCR).

    ``workspace`` (``None`` / ``True`` / a shared
    :class:`~repro.runtime.workspace.Workspace`) backs the factor
    algebra's scratch blocks with a reusable arena — see the module
    docstring for the resulting factor-lifetime contract.
    """

    def __init__(
        self,
        a: np.ndarray,
        k: int,
        model: Model,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        workspace=None,
    ):
        self.model = model
        self.k = k
        self.schedule = model.schedule(k)
        self.ops = Ops(counter, backend, workspace=workspace)
        self.powers: dict[int, np.ndarray] = {}
        # Initial materialization is not charged to refreshes, and must
        # not land in workspace buffers (state outlives every frame).
        ops = Ops(backend=self.ops.backend)
        self.powers[1] = self.ops.backend.asarray(a, copy=True)
        for i in self.schedule[1:]:
            j = self.model.predecessor(i)
            self.powers[i] = ops.mm(self.powers[i - j], self.powers[j])

    @property
    def a(self) -> np.ndarray:
        """The maintained input matrix (``P_1``)."""
        return self.powers[1]

    def compute_factors(self, u: np.ndarray, v: np.ndarray) -> FactorDict:
        """Factored deltas ``dP_i = U_i @ V_i'`` for ``A += u v'``.

        Pure: reads only *old* powers; callers apply via
        :meth:`apply_factors`.  ``u``/``v`` may be ``(n x r)`` blocks.
        """
        ops = self.ops
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        factors: FactorDict = {1: (u, v)}
        with ops.frame():
            for i in self.schedule[1:]:
                # P_i = P_h @ P_j with j the model's predecessor and h = i - j:
                # linear (A @ P_{i-1}), exponential (P_h @ P_h), skip
                # (P_s @ P_{i-s}).
                j = self.model.predecessor(i)
                h = i - j
                u_h, v_h = factors[h]
                u_j, v_j = factors[j]
                left = ops.hstack(
                    [
                        u_h,
                        ops.add(
                            ops.mm(self.powers[h], u_j),
                            ops.mm(u_h, ops.mm(v_h.T, u_j)),
                        ),
                    ]
                )
                right = ops.hstack([ops.mm(self.powers[j].T, v_h), v_j])
                factors[i] = (left, right)
        return factors

    def apply_factors(self, factors: FactorDict) -> None:
        """Apply previously computed deltas: ``P_i += U_i @ V_i'``."""
        for i in self.schedule:
            u_i, v_i = factors[i]
            self.powers[i] = self.ops.add_outer_inplace(self.powers[i], u_i, v_i)

    def refresh(self, u: np.ndarray, v: np.ndarray) -> FactorDict:
        """Maintain every scheduled power for ``A += u v'`` (Appendix A)."""
        with self.ops.frame():
            factors = self.compute_factors(u, v)
            self.apply_factors(factors)
        return factors

    def result(self) -> np.ndarray:
        """The maintained ``A^k``."""
        return self.powers[self.k]

    def delta_width(self, i: int | None = None, rank: int = 1) -> int:
        """Factor width of ``dP_i`` for a rank-``rank`` update (Appendix A)."""
        return rank * (i if i is not None else self.k)

    def memory_bytes(self) -> int:
        """Footprint of all materialized powers (Table 2: model-dependent)."""
        return sum(self.ops.backend.nbytes(arr) for arr in self.powers.values())
