"""Strategy factories and labels shared by benchmarks and examples.

The evaluation section refers to strategy-model combinations by names
like ``REEVAL-EXP`` and ``INCR-SKIP-4``; :func:`make_powers`,
:func:`make_sums` and :func:`make_general` construct the corresponding
maintainers from those labels so the benchmark harness and examples can
be written table-driven, exactly like the paper's figures.

Every factory also accepts a
:class:`~repro.planner.plan.MaintenancePlan` in place of the strategy
name — the plan then supplies the strategy, iterative model *and*
execution backend in one argument, so planner output plugs straight
into the maintainers::

    plan = plan_general(WorkloadStats(n=n, p=1, k=16, density=d))
    maintainer = make_general(plan, a, b, t0, k)
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from .general import HybridGeneral, IncrementalGeneral, ReevalGeneral
from .models import Model
from .powers import IncrementalPowers, ReevalPowers
from .sums import IncrementalPowerSums, ReevalPowerSums

REEVAL = "REEVAL"
INCR = "INCR"
HYBRID = "HYBRID"

STRATEGIES = (REEVAL, INCR, HYBRID)


def parse_model(label: str) -> Model:
    """Parse a paper-style model label: ``LIN``, ``EXP`` or ``SKIP-s``."""
    label = label.upper()
    if label == "LIN":
        return Model.linear()
    if label == "EXP":
        return Model.exponential()
    if label.startswith("SKIP-"):
        return Model.skip(int(label.split("-", 1)[1]))
    raise ValueError(f"unknown model label {label!r}")


def _resolve(strategy, model, backend):
    """Unpack a MaintenancePlan passed in the strategy slot.

    Explicit ``model``/``backend`` arguments win over the plan's axes,
    so callers can override one dimension of a planned configuration.
    """
    if isinstance(strategy, str):
        if model is None:
            raise TypeError("model is required when strategy is a name")
        return strategy, model, backend
    plan = strategy
    if model is None:
        model = plan.iterative_model()
    if backend is None:
        backend = plan.backend
    return plan.strategy, model, backend


def make_powers(
    strategy,
    a: np.ndarray,
    k: int,
    model: Model | None = None,
    counter: counters.Counter = counters.NULL_COUNTER,
    backend=None,
):
    """Powers maintainer for a strategy name or plan (``REEVAL``/``INCR``)."""
    strategy, model, backend = _resolve(strategy, model, backend)
    if strategy == REEVAL:
        return ReevalPowers(a, k, model, counter, backend=backend)
    if strategy == INCR:
        return IncrementalPowers(a, k, model, counter, backend=backend)
    raise ValueError(f"matrix powers has no {strategy!r} strategy")


def make_sums(
    strategy,
    a: np.ndarray,
    k: int,
    model: Model | None = None,
    counter: counters.Counter = counters.NULL_COUNTER,
    backend=None,
):
    """Sums-of-powers maintainer for a strategy name or plan."""
    strategy, model, backend = _resolve(strategy, model, backend)
    if strategy == REEVAL:
        return ReevalPowerSums(a, k, model, counter, backend=backend)
    if strategy == INCR:
        return IncrementalPowerSums(a, k, model, counter, backend=backend)
    raise ValueError(f"sums of powers has no {strategy!r} strategy")


def make_general(
    strategy,
    a: np.ndarray,
    b: np.ndarray | None,
    t0: np.ndarray,
    k: int,
    model: Model | None = None,
    counter: counters.Counter = counters.NULL_COUNTER,
    backend=None,
):
    """General-form maintainer for a strategy name or plan (all three)."""
    strategy, model, backend = _resolve(strategy, model, backend)
    if strategy == REEVAL:
        return ReevalGeneral(a, b, t0, k, model, counter, backend=backend)
    if strategy == INCR:
        return IncrementalGeneral(a, b, t0, k, model, counter, backend=backend)
    if strategy == HYBRID:
        return HybridGeneral(a, b, t0, k, model, counter, backend=backend)
    raise ValueError(f"unknown strategy {strategy!r}")
