"""Strategy factories and labels shared by benchmarks and examples.

The evaluation section refers to strategy-model combinations by names
like ``REEVAL-EXP`` and ``INCR-SKIP-4``; :func:`make_powers`,
:func:`make_sums` and :func:`make_general` construct the corresponding
maintainers from those labels so the benchmark harness and examples can
be written table-driven, exactly like the paper's figures.
"""

from __future__ import annotations

import numpy as np

from ..cost import counters
from .general import HybridGeneral, IncrementalGeneral, ReevalGeneral
from .models import Model
from .powers import IncrementalPowers, ReevalPowers
from .sums import IncrementalPowerSums, ReevalPowerSums

REEVAL = "REEVAL"
INCR = "INCR"
HYBRID = "HYBRID"

STRATEGIES = (REEVAL, INCR, HYBRID)


def parse_model(label: str) -> Model:
    """Parse a paper-style model label: ``LIN``, ``EXP`` or ``SKIP-s``."""
    label = label.upper()
    if label == "LIN":
        return Model.linear()
    if label == "EXP":
        return Model.exponential()
    if label.startswith("SKIP-"):
        return Model.skip(int(label.split("-", 1)[1]))
    raise ValueError(f"unknown model label {label!r}")


def make_powers(
    strategy: str,
    a: np.ndarray,
    k: int,
    model: Model,
    counter: counters.Counter = counters.NULL_COUNTER,
    backend=None,
):
    """Powers maintainer for a strategy name (``REEVAL`` or ``INCR``)."""
    if strategy == REEVAL:
        return ReevalPowers(a, k, model, counter, backend=backend)
    if strategy == INCR:
        return IncrementalPowers(a, k, model, counter, backend=backend)
    raise ValueError(f"matrix powers has no {strategy!r} strategy")


def make_sums(
    strategy: str,
    a: np.ndarray,
    k: int,
    model: Model,
    counter: counters.Counter = counters.NULL_COUNTER,
    backend=None,
):
    """Sums-of-powers maintainer for a strategy name."""
    if strategy == REEVAL:
        return ReevalPowerSums(a, k, model, counter, backend=backend)
    if strategy == INCR:
        return IncrementalPowerSums(a, k, model, counter, backend=backend)
    raise ValueError(f"sums of powers has no {strategy!r} strategy")


def make_general(
    strategy: str,
    a: np.ndarray,
    b: np.ndarray | None,
    t0: np.ndarray,
    k: int,
    model: Model,
    counter: counters.Counter = counters.NULL_COUNTER,
    backend=None,
):
    """General-form maintainer for a strategy name (all three apply)."""
    if strategy == REEVAL:
        return ReevalGeneral(a, b, t0, k, model, counter, backend=backend)
    if strategy == INCR:
        return IncrementalGeneral(a, b, t0, k, model, counter, backend=backend)
    if strategy == HYBRID:
        return HybridGeneral(a, b, t0, k, model, counter, backend=backend)
    raise ValueError(f"unknown strategy {strategy!r}")
