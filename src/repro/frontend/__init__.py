"""APL-style frontend (Section 6): matrix-language text -> Program."""

from .errors import LexError, ParseError, SyntaxErrorWithPosition
from .lexer import Token, tokenize
from .parser import Parser, parse_program

__all__ = [
    "LexError",
    "ParseError",
    "Parser",
    "SyntaxErrorWithPosition",
    "Token",
    "parse_program",
    "tokenize",
]
