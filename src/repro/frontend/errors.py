"""Frontend error types with source positions."""

from __future__ import annotations


class SyntaxErrorWithPosition(ValueError):
    """A lexing or parsing error, carrying line/column context."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.bare_message = message
        self.line = line
        self.column = column


class LexError(SyntaxErrorWithPosition):
    """Raised for characters the matrix language does not know."""


class ParseError(SyntaxErrorWithPosition):
    """Raised for token sequences that do not form a valid program."""
