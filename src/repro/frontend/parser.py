"""Recursive-descent parser: matrix-language source -> Program.

Grammar (EBNF)::

    program    := { input_decl | statement | for_loop | output_decl }
    input_decl := "input" IDENT "(" dim "," dim ")" ";"
    output_decl:= "output" IDENT { "," IDENT } ";"
    statement  := IDENT ":=" expr ";"
    for_loop   := "for" IDENT "in" NUMBER ".." NUMBER "{" { statement | for_loop } "}"
    dim        := IDENT | NUMBER
    expr       := term { ("+" | "-") term }
    term       := factor { "*" factor }
    factor     := [ "-" ] postfix | NUMBER "*" factor
    postfix    := atom { "'" }
    atom       := IDENT | NUMBER | "(" expr ")"
                | "inv" "(" expr ")" | "eye" "(" dim ")"
                | "zeros" "(" dim "," dim ")"

Numbers multiplying an expression become scalar coefficients; a bare
number is rejected (the language has no scalar-valued variables —
scalars arise only as ``1 x 1`` matrix products, as in the paper).

``for`` loops are *iteration sugar* for the paper's fixed-iteration
programs (Section 3.1): the body is unrolled at parse time, and
reassignments inside a loop body version the target (``T := A * T``
iterated 4 times materializes ``T__v2 .. T__v5``, and later references
to ``T`` resolve to the newest version).  Reassignment outside a loop
stays an error — versioning exists to express iteration, not mutation.
The loop variable is only a counter; referencing it in an expression
is an undefined-matrix error.
"""

from __future__ import annotations

from ..compiler.program import Program, Statement
from ..expr.ast import (
    Expr,
    Identity,
    MatrixSymbol,
    ZeroMatrix,
    add,
    inverse,
    matmul,
    neg,
    scalar_mul,
    sub,
    transpose,
)
from ..expr.shapes import DimLike, NamedDim
from .errors import ParseError
from .lexer import (
    ASSIGN,
    COMMA,
    DOTDOT,
    EOF,
    IDENT,
    KEYWORD,
    LBRACE,
    LPAREN,
    MINUS,
    NUMBER,
    PLUS,
    RBRACE,
    RPAREN,
    SEMI,
    STAR,
    TICK,
    Token,
    tokenize,
)


class Parser:
    """Single-pass parser with symbol-table shape resolution."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0
        self.symbols: dict[str, MatrixSymbol] = {}
        self.inputs: list[MatrixSymbol] = []
        self.statements: list[Statement] = []
        self.outputs: list[str] = []
        self._loop_depth = 0
        self._versions: dict[str, int] = {}

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect(self, kind: str, what: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {what}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Program:
        """Parse the whole source into a validated Program."""
        while self._peek().kind != EOF:
            token = self._peek()
            if token.kind == KEYWORD and token.text == "input":
                self._input_decl()
            elif token.kind == KEYWORD and token.text == "output":
                self._output_decl()
            elif token.kind == KEYWORD and token.text == "for":
                self._for_loop()
            elif token.kind == IDENT:
                self._statement()
            else:
                raise self._error(
                    f"expected 'input', 'output', 'for' or a statement, "
                    f"found {token.text!r}"
                )
        if not self.statements:
            raise self._error("program has no statements")
        outputs = [self.symbols[name].name if name in self.symbols else name
                   for name in self.outputs]
        return Program(self.inputs, self.statements, outputs or None)

    def _input_decl(self) -> None:
        self._advance()  # input
        name = self._expect(IDENT, "input matrix name").text
        if name in self.symbols:
            raise self._error(f"duplicate declaration of {name!r}")
        self._expect(LPAREN, "'('")
        rows = self._dim()
        self._expect(COMMA, "','")
        cols = self._dim()
        self._expect(RPAREN, "')'")
        self._expect(SEMI, "';'")
        symbol = MatrixSymbol(name, rows, cols)
        self.symbols[name] = symbol
        self.inputs.append(symbol)

    def _output_decl(self) -> None:
        self._advance()  # output
        while True:
            name = self._expect(IDENT, "output view name").text
            self.outputs.append(name)
            if self._peek().kind == COMMA:
                self._advance()
                continue
            break
        self._expect(SEMI, "';'")

    def _statement(self) -> None:
        name = self._advance().text
        if name in self.symbols and self._loop_depth == 0:
            raise self._error(f"redefinition of {name!r}")
        self._expect(ASSIGN, "':='")
        expr = self._expr()
        self._expect(SEMI, "';'")
        if name in self.symbols:
            # Iteration reassignment: version the target; subsequent
            # references to `name` resolve to the newest version.
            self._versions[name] = self._versions.get(name, 1) + 1
            target_name = f"{name}__v{self._versions[name]}"
        else:
            self._versions.setdefault(name, 1)
            target_name = name
        target = MatrixSymbol(target_name, expr.shape.rows, expr.shape.cols)
        self.symbols[name] = target
        self.statements.append(Statement(target, expr))

    def _for_loop(self) -> None:
        self._advance()  # for
        var = self._expect(IDENT, "loop variable name")
        if var.text in self.symbols:
            raise ParseError(
                f"loop variable {var.text!r} shadows a matrix",
                var.line, var.column,
            )
        in_token = self._peek()
        if not (in_token.kind == KEYWORD and in_token.text == "in"):
            raise self._error("expected 'in'")
        self._advance()
        lo = self._int_bound()
        self._expect(DOTDOT, "'..'")
        hi = self._int_bound()
        if hi < lo:
            raise self._error(f"empty loop range {lo}..{hi}")
        self._expect(LBRACE, "'{'")
        body_start = self.position
        for _ in range(lo, hi + 1):
            self.position = body_start
            self._loop_depth += 1
            try:
                while self._peek().kind != RBRACE:
                    token = self._peek()
                    if token.kind == KEYWORD and token.text == "for":
                        self._for_loop()
                    elif token.kind == IDENT:
                        self._statement()
                    else:
                        raise self._error(
                            f"expected a statement or nested 'for' in loop "
                            f"body, found {token.text!r}"
                        )
            finally:
                self._loop_depth -= 1
        self._expect(RBRACE, "'}'")

    def _int_bound(self) -> int:
        token = self._expect(NUMBER, "an integer loop bound")
        if "." in token.text:
            raise ParseError(
                "loop bounds must be integers", token.line, token.column
            )
        return int(token.text)

    def _dim(self) -> DimLike:
        token = self._peek()
        if token.kind == IDENT:
            self._advance()
            return NamedDim(token.text)
        if token.kind == NUMBER:
            self._advance()
            if "." in token.text:
                raise ParseError(
                    "dimensions must be integers", token.line, token.column
                )
            return int(token.text)
        raise self._error("expected a dimension (name or integer)")

    def _expr(self) -> Expr:
        left = self._term()
        while self._peek().kind in (PLUS, MINUS):
            op = self._advance()
            right = self._term()
            left = add(left, right) if op.kind == PLUS else sub(left, right)
        return left

    def _term(self) -> Expr:
        left = self._factor()
        while self._peek().kind == STAR:
            self._advance()
            right = self._factor()
            left = matmul(left, right)
        return left

    def _factor(self) -> Expr:
        token = self._peek()
        if token.kind == MINUS:
            self._advance()
            return neg(self._factor())
        if token.kind == NUMBER:
            self._advance()
            coeff = float(token.text)
            self._expect(STAR, "'*' after a scalar coefficient")
            return scalar_mul(coeff, self._factor())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._atom()
        while self._peek().kind == TICK:
            self._advance()
            expr = transpose(expr)
        return expr

    def _atom(self) -> Expr:
        token = self._peek()
        if token.kind == LPAREN:
            self._advance()
            expr = self._expr()
            self._expect(RPAREN, "')'")
            return expr
        if token.kind == KEYWORD and token.text == "inv":
            self._advance()
            self._expect(LPAREN, "'('")
            expr = self._expr()
            self._expect(RPAREN, "')'")
            return inverse(expr)
        if token.kind == KEYWORD and token.text == "eye":
            self._advance()
            self._expect(LPAREN, "'('")
            n = self._dim()
            self._expect(RPAREN, "')'")
            return Identity(n)
        if token.kind == KEYWORD and token.text == "zeros":
            self._advance()
            self._expect(LPAREN, "'('")
            rows = self._dim()
            self._expect(COMMA, "','")
            cols = self._dim()
            self._expect(RPAREN, "')'")
            return ZeroMatrix(rows, cols)
        if token.kind == IDENT:
            self._advance()
            symbol = self.symbols.get(token.text)
            if symbol is None:
                raise ParseError(
                    f"reference to undefined matrix {token.text!r}",
                    token.line,
                    token.column,
                )
            return symbol
        raise self._error(f"expected an expression, found {token.text!r}")


def parse_program(source: str) -> Program:
    """Parse matrix-language source text into a Program."""
    return Parser(source).parse()
