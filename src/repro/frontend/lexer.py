"""Lexer for the matrix program language (the Section 6 frontend).

The surface syntax is deliberately APL/MATLAB-flavoured, matching the
paper's "APL-style frontend where users can provide their programs and
annotate dynamic matrices"::

    input A(n, n);
    B := A * A;
    C := B * B - 2 * A';
    output C;

Tokens: identifiers, numbers, ``:=``, operators ``+ - * '``, parentheses,
braces and commas, keywords ``input``/``output``/``inv``/``eye``/``zeros``
/``for``/``in``, the range mark ``..``, and ``;`` statement terminators.
``#`` and ``%`` start line comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import LexError

KEYWORDS = frozenset({"input", "output", "inv", "eye", "zeros", "for", "in"})

#: Token kinds produced by :func:`tokenize`.
IDENT = "IDENT"
NUMBER = "NUMBER"
KEYWORD = "KEYWORD"
ASSIGN = "ASSIGN"       # :=
PLUS = "PLUS"
MINUS = "MINUS"
STAR = "STAR"
TICK = "TICK"           # ' (transpose)
LPAREN = "LPAREN"
RPAREN = "RPAREN"
COMMA = "COMMA"
SEMI = "SEMI"
LBRACE = "LBRACE"
RBRACE = "RBRACE"
DOTDOT = "DOTDOT"       # .. (iteration ranges)
EOF = "EOF"

_SINGLE = {
    "+": PLUS,
    "-": MINUS,
    "*": STAR,
    "'": TICK,
    "(": LPAREN,
    ")": RPAREN,
    ",": COMMA,
    ";": SEMI,
    "{": LBRACE,
    "}": RBRACE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Lex a program into tokens (always terminated by an EOF token)."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch in "#%":  # line comment
            while i < length and source[i] != "\n":
                i += 1
            continue
        if ch == "." and i + 1 < length and source[i + 1] == ".":
            tokens.append(Token(DOTDOT, "..", line, column))
            i += 2
            column += 2
            continue
        if ch == ":" and i + 1 < length and source[i + 1] == "=":
            tokens.append(Token(ASSIGN, ":=", line, column))
            i += 2
            column += 2
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line, column))
            i += 1
            column += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < length and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                if source[i] == ".":
                    if i + 1 < length and source[i + 1] == ".":
                        break  # the '.' belongs to a '..' range token
                    seen_dot = True
                i += 1
            text = source[start:i]
            tokens.append(Token(NUMBER, text, line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = KEYWORD if text in KEYWORDS else IDENT
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        raise LexError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(EOF, "", line, column))
    return tokens
