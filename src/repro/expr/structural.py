"""Canonical structural keys: the substrate of cross-tenant sharing.

The multi-view catalog (:mod:`repro.catalog`) must recognise that two
tenants' subprograms compute *the same thing* even when they spell it
differently — ``A + A`` versus ``2 * A``, ``(B')'`` versus ``B`` — so
each shared intermediate is materialized and maintained exactly once.
Identity here is *canonical-form equality*: run the expression through
the full :func:`repro.expr.simplify.simplify` rule set (the same pass
the optimizer trusts to be value-preserving) and compare the results
structurally.

:func:`structural_key` turns that identity into a stable digest string.
It leans on two properties the property-test suite already pins down:

* the simplifier is idempotent, so canonical forms are fixed points
  (``tests/test_property_expr.py``);
* the printer is injective up to structural equality — parsing a
  printed expression reproduces the tree exactly — so the printed
  canonical form is a sound hash key, not a lossy one.

Note what canonicalization deliberately does **not** do: it never
re-associates products (association is load-bearing for both shape
validation and the planner's chain-ordering) and it never reorders
sums.  Two programs that group a product differently are *different*
subexpressions with different maintenance trajectories, and the
catalog keeps them distinct on purpose — exactness over heuristics
(docs/invariants.md).
"""

from __future__ import annotations

import hashlib

from .ast import Expr
from .printer import to_string
from .simplify import simplify


def canonicalize(expr: Expr) -> Expr:
    """The canonical representative of an expression's value class.

    Currently exactly :func:`repro.expr.simplify.simplify` — named
    separately so the sharing layer states *intent* (two expressions
    are the same view iff their canonical forms are structurally
    equal) independent of which rewrite set realizes it.
    """
    return simplify(expr)


def structural_equal(left: Expr, right: Expr) -> bool:
    """Whether two expressions share a canonical form (and thus a view)."""
    return canonicalize(left) == canonicalize(right)


def structural_fingerprint(expr: Expr) -> str:
    """The printed canonical form plus shape — the digest preimage.

    Exposed separately from :func:`structural_key` so tests (and
    humans reading catalog dumps) can see *why* two subprograms
    collided: equal fingerprints are readable evidence, equal digests
    are not.
    """
    canon = canonicalize(expr)
    shape = canon.shape
    return f"{shape.rows!r}x{shape.cols!r}|{to_string(canon)}"


def structural_key(expr: Expr) -> str:
    """Stable digest of the canonical form: the catalog's hash key.

    Equal keys imply equal fingerprints (SHA-256 collisions aside —
    the no-collision property test sweeps a generated corpus), and
    equal fingerprints imply structurally equal canonical forms by
    printer injectivity.  The key is stable across simplifier
    round-trips: ``structural_key(simplify(e)) == structural_key(e)``
    because canonical forms are simplifier fixed points.
    """
    digest = hashlib.sha256(structural_fingerprint(expr).encode("utf-8"))
    return digest.hexdigest()


__all__ = [
    "canonicalize",
    "structural_equal",
    "structural_fingerprint",
    "structural_key",
]
