"""Symbolic matrix-expression language (the substrate of the reproduction).

Everything LINVIEW manipulates — programs, deltas, triggers — is built
from these expression trees.  See :mod:`repro.expr.ast` for the node
types and MATLAB-style operator sugar.
"""

from .ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
    add,
    hstack,
    inverse,
    matmul,
    neg,
    scalar_mul,
    sub,
    transpose,
    vstack,
)
from .latex import to_latex, trigger_to_latex
from .printer import to_string, to_tree
from .shapes import DimSum, NamedDim, Shape, ShapeError, dim_add, dims_equal
from .simplify import simplify
from .structural import (
    canonicalize,
    structural_equal,
    structural_fingerprint,
    structural_key,
)
from .visitors import (
    contains_inverse,
    count_nodes,
    depth,
    matrix_symbols,
    references,
    substitute,
    substitute_symbol,
    transform,
    walk,
)

__all__ = [
    "Add",
    "DimSum",
    "Expr",
    "HStack",
    "Identity",
    "Inverse",
    "MatMul",
    "MatrixSymbol",
    "NamedDim",
    "ScalarMul",
    "Shape",
    "ShapeError",
    "Transpose",
    "VStack",
    "ZeroMatrix",
    "add",
    "canonicalize",
    "contains_inverse",
    "count_nodes",
    "depth",
    "dim_add",
    "dims_equal",
    "hstack",
    "inverse",
    "matmul",
    "matrix_symbols",
    "neg",
    "references",
    "scalar_mul",
    "simplify",
    "structural_equal",
    "structural_fingerprint",
    "structural_key",
    "sub",
    "substitute",
    "substitute_symbol",
    "to_latex",
    "to_string",
    "to_tree",
    "trigger_to_latex",
    "transform",
    "transpose",
    "vstack",
    "walk",
]
