"""Dimension and shape algebra for matrix expressions.

Matrix dimensions may be concrete Python ints or *symbolic* dimensions
(:class:`NamedDim`), so programs can be compiled once for any size
(``A`` is ``n x n``) and bound to concrete sizes at runtime.  Stacking
factored deltas adds dimensions, so a tiny normalized sum form
(:class:`DimSum`) is provided as well.

The public helpers are :func:`dim_add`, :func:`dims_equal`,
:func:`dim_to_str` and :class:`Shape`.
"""

from __future__ import annotations

from typing import Union


class NamedDim:
    """A symbolic dimension, identified by name (e.g. ``n``, ``m``, ``p``).

    Two :class:`NamedDim` objects are equal iff their names are equal, so
    they can be used freely as dict keys and in shape comparisons.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"dimension name must be a non-empty string, got {name!r}")
        self.name = name
        self._hash = hash(("NamedDim", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NamedDim) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return self.name

    def __add__(self, other: "DimLike") -> "DimLike":
        return dim_add(self, other)

    def __radd__(self, other: "DimLike") -> "DimLike":
        return dim_add(other, self)


class DimSum:
    """A normalized sum of symbolic dimensions plus an integer constant.

    Instances are produced by :func:`dim_add` when at least one operand is
    symbolic; they are normalized (atoms sorted by name, constant folded)
    so structural equality is semantic equality for sums of atoms.
    """

    __slots__ = ("atoms", "const", "_hash")

    def __init__(self, atoms: tuple[NamedDim, ...], const: int = 0):
        self.atoms = tuple(sorted(atoms, key=lambda d: d.name))
        self.const = int(const)
        self._hash = hash(("DimSum", self.atoms, self.const))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DimSum)
            and other.atoms == self.atoms
            and other.const == self.const
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = [a.name for a in self.atoms]
        if self.const:
            parts.append(str(self.const))
        return "+".join(parts) if parts else "0"

    def __add__(self, other: "DimLike") -> "DimLike":
        return dim_add(self, other)

    def __radd__(self, other: "DimLike") -> "DimLike":
        return dim_add(other, self)


DimLike = Union[int, NamedDim, DimSum]


def _as_parts(dim: DimLike) -> tuple[tuple[NamedDim, ...], int]:
    """Decompose a dimension into (symbolic atoms, integer constant)."""
    if isinstance(dim, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("bool is not a valid dimension")
    if isinstance(dim, int):
        return (), dim
    if isinstance(dim, NamedDim):
        return (dim,), 0
    if isinstance(dim, DimSum):
        return dim.atoms, dim.const
    raise TypeError(f"not a dimension: {dim!r}")


def dim_add(a: DimLike, b: DimLike) -> DimLike:
    """Add two dimensions, folding constants and normalizing sums."""
    atoms_a, const_a = _as_parts(a)
    atoms_b, const_b = _as_parts(b)
    atoms = atoms_a + atoms_b
    const = const_a + const_b
    if not atoms:
        return const
    if len(atoms) == 1 and const == 0:
        return atoms[0]
    return DimSum(atoms, const)


def dims_equal(a: DimLike, b: DimLike) -> bool:
    """Whether two dimensions are (structurally) the same size.

    Distinct symbolic names are treated as *unequal* sizes: the checker is
    conservative, which keeps shape errors loud at construction time.
    """
    atoms_a, const_a = _as_parts(a)
    atoms_b, const_b = _as_parts(b)
    return sorted(d.name for d in atoms_a) == sorted(d.name for d in atoms_b) and (
        const_a == const_b
    )


def dim_to_str(dim: DimLike) -> str:
    """Human-readable form of a dimension."""
    return str(dim)


def is_concrete(dim: DimLike) -> bool:
    """True when the dimension is a plain integer (no symbolic atoms)."""
    atoms, _ = _as_parts(dim)
    return not atoms


class Shape:
    """A (rows, cols) pair of :data:`DimLike` dimensions.

    Immutable; equality and hashing are structural (via :func:`dims_equal`
    semantics for the comparison helpers below).
    """

    __slots__ = ("rows", "cols", "_hash")

    def __init__(self, rows: DimLike, cols: DimLike):
        _as_parts(rows)  # validates
        _as_parts(cols)
        self.rows = rows
        self.cols = cols
        self._hash = hash(("Shape", _freeze(rows), _freeze(cols)))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Shape)
            and dims_equal(self.rows, other.rows)
            and dims_equal(self.cols, other.cols)
        )

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self):
        yield self.rows
        yield self.cols

    def __repr__(self) -> str:
        return f"({dim_to_str(self.rows)} x {dim_to_str(self.cols)})"

    @property
    def is_square(self) -> bool:
        """Whether rows and cols are provably the same dimension."""
        return dims_equal(self.rows, self.cols)

    @property
    def is_vector(self) -> bool:
        """Whether this is a column vector shape (cols == 1)."""
        return dims_equal(self.cols, 1)

    @property
    def transposed(self) -> "Shape":
        """The shape of the transpose."""
        return Shape(self.cols, self.rows)

    def concrete(self) -> tuple[int, int]:
        """Return (rows, cols) as ints; raises if any dim is symbolic."""
        if not (is_concrete(self.rows) and is_concrete(self.cols)):
            raise ValueError(f"shape {self} has symbolic dimensions")
        return int(self.rows), int(self.cols)  # type: ignore[arg-type]


def _freeze(dim: DimLike):
    """Hashable canonical key for a dimension."""
    atoms, const = _as_parts(dim)
    return (tuple(sorted(d.name for d in atoms)), const)


class ShapeError(ValueError):
    """Raised when an expression is built from incompatible shapes."""
