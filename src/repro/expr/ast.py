"""Expression AST for the LINVIEW matrix language.

Nodes are immutable, hashable, and structurally comparable.  The language
covers exactly the primitives of the paper (Section 3): matrix addition,
subtraction, multiplication (scalar / matrix-vector / matrix-matrix),
transpose and inverse — plus block stacking (``HStack`` / ``VStack``),
which Section 4.2 uses to compact sums of outer products into a single
product of two low-rank matrices.

Construction goes through *smart helpers* (:func:`add`, :func:`matmul`,
:func:`scalar_mul`, :func:`transpose`, :func:`inverse`, :func:`hstack`,
:func:`vstack`, :func:`sub`, :func:`neg`) which perform light, local
normalization (flattening, zero/identity folding) so derived deltas come
out readable.  Full recursive simplification lives in
:mod:`repro.expr.simplify`.

Python operators are overloaded MATLAB-style: ``A * B`` is matrix
multiplication, ``2 * A`` scalar multiplication, ``A + B``/``A - B``
element-wise, ``A.T`` transpose and ``A.inv`` inverse.
"""

from __future__ import annotations

import numbers
from typing import Iterable, Sequence, Union

from .shapes import DimLike, Shape, ShapeError, dim_add, dims_equal


class Expr:
    """Base class for all matrix expression nodes.

    Every node exposes ``shape`` (a :class:`~repro.expr.shapes.Shape`),
    ``children`` (a tuple of sub-expressions) and supports structural
    equality / hashing, so expressions can key caches and CSE tables.
    """

    __slots__ = ("shape", "children", "_hash")

    shape: Shape
    children: tuple["Expr", ...]

    def _init(self, shape: Shape, children: tuple["Expr", ...], key: tuple) -> None:
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "_hash", hash((type(self).__name__,) + key))

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            self is other
            or (
                isinstance(other, Expr)
                and type(other) is type(self)
                and other._hash == self._hash
                and other._key() == self._key()
            )
        )

    def __hash__(self) -> int:
        return self._hash

    # -- MATLAB-style operator sugar ------------------------------------
    def __add__(self, other: "Expr") -> "Expr":
        return add(self, other)

    def __sub__(self, other: "Expr") -> "Expr":
        return sub(self, other)

    def __mul__(self, other: Union["Expr", float]) -> "Expr":
        if isinstance(other, numbers.Real):
            return scalar_mul(float(other), self)
        return matmul(self, other)

    def __rmul__(self, other: float) -> "Expr":
        if isinstance(other, numbers.Real):
            return scalar_mul(float(other), self)
        return NotImplemented

    def __matmul__(self, other: "Expr") -> "Expr":
        return matmul(self, other)

    def __neg__(self) -> "Expr":
        return neg(self)

    @property
    def T(self) -> "Expr":
        """Transpose of this expression."""
        return transpose(self)

    @property
    def inv(self) -> "Expr":
        """Inverse of this (square) expression."""
        return inverse(self)

    @property
    def is_zero(self) -> bool:
        """True for the literal zero matrix node."""
        return isinstance(self, ZeroMatrix)

    def __repr__(self) -> str:
        from .printer import to_string

        return to_string(self)


class MatrixSymbol(Expr):
    """A named input or view matrix of a given shape (leaf node)."""

    __slots__ = ("name",)

    def __init__(self, name: str, rows: DimLike, cols: DimLike):
        if not name:
            raise ValueError("matrix symbol needs a non-empty name")
        object.__setattr__(self, "name", name)
        shape = Shape(rows, cols)
        self._init(shape, (), (name, shape))

    def _key(self) -> tuple:
        return (self.name, self.shape)


class Identity(Expr):
    """The ``n x n`` identity matrix."""

    __slots__ = ()

    def __init__(self, n: DimLike):
        shape = Shape(n, n)
        self._init(shape, (), (shape,))

    def _key(self) -> tuple:
        return (self.shape,)


class ZeroMatrix(Expr):
    """The all-zeros matrix of a given shape (the delta of an unrelated matrix)."""

    __slots__ = ()

    def __init__(self, rows: DimLike, cols: DimLike):
        shape = Shape(rows, cols)
        self._init(shape, (), (shape,))

    def _key(self) -> tuple:
        return (self.shape,)


class Add(Expr):
    """N-ary matrix addition; all terms share one shape."""

    __slots__ = ()

    def __init__(self, terms: Sequence[Expr]):
        terms = tuple(terms)
        if len(terms) < 2:
            raise ValueError("Add needs at least two terms (use helpers for fewer)")
        first = terms[0].shape
        for t in terms[1:]:
            if t.shape != first:
                raise ShapeError(f"cannot add {first} and {t.shape}")
        self._init(first, terms, (terms,))

    def _key(self) -> tuple:
        return (self.children,)


class MatMul(Expr):
    """N-ary matrix product; adjacent factors must be conformable."""

    __slots__ = ()

    def __init__(self, factors: Sequence[Expr]):
        factors = tuple(factors)
        if len(factors) < 2:
            raise ValueError("MatMul needs at least two factors")
        for left, right in zip(factors, factors[1:]):
            if not dims_equal(left.shape.cols, right.shape.rows):
                raise ShapeError(
                    f"cannot multiply {left.shape} by {right.shape}"
                )
        shape = Shape(factors[0].shape.rows, factors[-1].shape.cols)
        self._init(shape, factors, (factors,))

    def _key(self) -> tuple:
        return (self.children,)


class ScalarMul(Expr):
    """Multiplication of a matrix expression by a scalar constant."""

    __slots__ = ("coeff",)

    def __init__(self, coeff: float, child: Expr):
        object.__setattr__(self, "coeff", float(coeff))
        self._init(child.shape, (child,), (float(coeff), child))

    def _key(self) -> tuple:
        return (self.coeff, self.children)

    @property
    def child(self) -> Expr:
        """The matrix operand."""
        return self.children[0]


class Transpose(Expr):
    """Matrix transpose."""

    __slots__ = ()

    def __init__(self, child: Expr):
        self._init(child.shape.transposed, (child,), (child,))

    def _key(self) -> tuple:
        return (self.children,)

    @property
    def child(self) -> Expr:
        """The transposed operand."""
        return self.children[0]


class Inverse(Expr):
    """Matrix inverse of a square expression."""

    __slots__ = ()

    def __init__(self, child: Expr):
        if not child.shape.is_square:
            raise ShapeError(f"cannot invert non-square {child.shape}")
        self._init(child.shape, (child,), (child,))

    def _key(self) -> tuple:
        return (self.children,)

    @property
    def child(self) -> Expr:
        """The inverted operand."""
        return self.children[0]


class HStack(Expr):
    """Horizontal block concatenation ``[B1 B2 ... Bk]`` (same row count).

    This is the block-matrix construct of Section 4.2: stacking the left
    (or right) vectors of a sum of outer products into one low-rank factor.
    """

    __slots__ = ()

    def __init__(self, blocks: Sequence[Expr]):
        blocks = tuple(blocks)
        if not blocks:
            raise ValueError("HStack needs at least one block")
        rows = blocks[0].shape.rows
        cols: DimLike = 0
        for b in blocks:
            if not dims_equal(b.shape.rows, rows):
                raise ShapeError(f"HStack row mismatch: {blocks[0].shape} vs {b.shape}")
            cols = dim_add(cols, b.shape.cols)
        self._init(Shape(rows, cols), blocks, (blocks,))

    def _key(self) -> tuple:
        return (self.children,)


class VStack(Expr):
    """Vertical block concatenation (same column count)."""

    __slots__ = ()

    def __init__(self, blocks: Sequence[Expr]):
        blocks = tuple(blocks)
        if not blocks:
            raise ValueError("VStack needs at least one block")
        cols = blocks[0].shape.cols
        rows: DimLike = 0
        for b in blocks:
            if not dims_equal(b.shape.cols, cols):
                raise ShapeError(f"VStack col mismatch: {blocks[0].shape} vs {b.shape}")
            rows = dim_add(rows, b.shape.rows)
        self._init(Shape(rows, cols), blocks, (blocks,))

    def _key(self) -> tuple:
        return (self.children,)


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def add(*terms: Expr) -> Expr:
    """Sum of expressions; flattens nested sums and drops zero terms."""
    flat: list[Expr] = []
    for t in terms:
        if isinstance(t, Add):
            flat.extend(t.children)
        elif not t.is_zero:
            flat.append(t)
    if not flat:
        ref = terms[0]
        return ZeroMatrix(ref.shape.rows, ref.shape.cols)
    if len(flat) == 1:
        return flat[0]
    return Add(flat)


def sub(left: Expr, right: Expr) -> Expr:
    """Difference ``left - right`` (encoded as ``left + (-1)*right``)."""
    return add(left, neg(right))


def neg(expr: Expr) -> Expr:
    """Negation, encoded as scalar multiplication by -1."""
    return scalar_mul(-1.0, expr)


def matmul(*factors: Expr) -> Expr:
    """Product of expressions, folding identities, zeros and coefficients.

    Association is **preserved**: multi-argument calls fold left to
    right, and nested products are *not* flattened.  The grouping of a
    product is semantically load-bearing in this codebase — factored
    deltas encode the cheap matrix-vector evaluation order structurally
    (Section 4.2: "the evaluation order enforced by these parentheses
    yields only matrix-vector and vector-vector multiplications"), and
    the executor and code generators evaluate exactly the tree they are
    given.
    """
    if not factors:
        raise ValueError("matmul needs at least one factor")
    result = factors[0]
    for factor in factors[1:]:
        result = _matmul2(result, factor)
    return result


def _matmul2(left: Expr, right: Expr) -> Expr:
    coeff = 1.0
    while isinstance(left, ScalarMul):
        coeff *= left.coeff
        left = left.child
    while isinstance(right, ScalarMul):
        coeff *= right.coeff
        right = right.child
    if not dims_equal(left.shape.cols, right.shape.rows):
        raise ShapeError(f"cannot multiply {left.shape} by {right.shape}")
    rows, cols = left.shape.rows, right.shape.cols
    if left.is_zero or right.is_zero or coeff == 0.0:
        return ZeroMatrix(rows, cols)
    if isinstance(left, Identity):
        base: Expr = right
    elif isinstance(right, Identity):
        base = left
    else:
        base = MatMul([left, right])
    return scalar_mul(coeff, base) if coeff != 1.0 else base


def scalar_mul(coeff: float, expr: Expr) -> Expr:
    """Scalar-times-matrix with coefficient folding."""
    coeff = float(coeff)
    while isinstance(expr, ScalarMul):
        coeff *= expr.coeff
        expr = expr.child
    if coeff == 0.0 or expr.is_zero:
        return ZeroMatrix(expr.shape.rows, expr.shape.cols)
    if coeff == 1.0:
        return expr
    return ScalarMul(coeff, expr)


def transpose(expr: Expr) -> Expr:
    """Transpose with local folding (double transpose, zero, identity)."""
    if isinstance(expr, Transpose):
        return expr.child
    if isinstance(expr, (Identity,)):
        return expr
    if expr.is_zero:
        return ZeroMatrix(expr.shape.cols, expr.shape.rows)
    if isinstance(expr, ScalarMul):
        return scalar_mul(expr.coeff, transpose(expr.child))
    return Transpose(expr)


def inverse(expr: Expr) -> Expr:
    """Inverse with local folding (double inverse, identity)."""
    if isinstance(expr, Inverse):
        return expr.child
    if isinstance(expr, Identity):
        return expr
    if isinstance(expr, ScalarMul):
        return scalar_mul(1.0 / expr.coeff, inverse(expr.child))
    return Inverse(expr)


def hstack(blocks: Iterable[Expr]) -> Expr:
    """Horizontal stack; single blocks pass through, nested stacks flatten."""
    flat: list[Expr] = []
    for b in blocks:
        if isinstance(b, HStack):
            flat.extend(b.children)
        else:
            flat.append(b)
    if len(flat) == 1:
        return flat[0]
    return HStack(flat)


def vstack(blocks: Iterable[Expr]) -> Expr:
    """Vertical stack; single blocks pass through, nested stacks flatten."""
    flat: list[Expr] = []
    for b in blocks:
        if isinstance(b, VStack):
            flat.extend(b.children)
        else:
            flat.append(b)
    if len(flat) == 1:
        return flat[0]
    return VStack(flat)
