"""Traversal, substitution and analysis utilities over expression trees."""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from .ast import (
    Add,
    Expr,
    HStack,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    add,
    hstack,
    inverse,
    matmul,
    scalar_mul,
    transpose,
    vstack,
)


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield every node of the tree in pre-order (parents before children)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def count_nodes(expr: Expr) -> int:
    """Total number of AST nodes in the expression."""
    return sum(1 for _ in walk(expr))


def matrix_symbols(expr: Expr) -> set[MatrixSymbol]:
    """The set of matrix symbols referenced by the expression."""
    return {node for node in walk(expr) if isinstance(node, MatrixSymbol)}


def references(expr: Expr, name: str) -> bool:
    """Whether the expression mentions a matrix symbol with this name."""
    return any(
        isinstance(node, MatrixSymbol) and node.name == name for node in walk(expr)
    )


def rebuild(expr: Expr, children: tuple[Expr, ...]) -> Expr:
    """Reconstruct a node of the same kind over new children.

    Uses the smart constructors, so rebuilding may locally normalize
    (e.g. dropping a zero term produced by a transformation).
    """
    if not expr.children:
        return expr
    if isinstance(expr, Add):
        return add(*children)
    if isinstance(expr, MatMul):
        return matmul(*children)
    if isinstance(expr, ScalarMul):
        return scalar_mul(expr.coeff, children[0])
    if isinstance(expr, Transpose):
        return transpose(children[0])
    if isinstance(expr, Inverse):
        return inverse(children[0])
    if isinstance(expr, HStack):
        return hstack(children)
    if isinstance(expr, VStack):
        return vstack(children)
    raise TypeError(f"cannot rebuild node of type {type(expr).__name__}")


def transform(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Bottom-up rewrite: apply ``fn`` to every node after its children.

    ``fn`` receives a node whose children are already transformed and
    returns a replacement (or the node itself).
    """
    if expr.children:
        new_children = tuple(transform(c, fn) for c in expr.children)
        if new_children != expr.children:
            expr = rebuild(expr, new_children)
    return fn(expr)


def substitute(expr: Expr, mapping: Mapping[Expr, Expr]) -> Expr:
    """Replace occurrences of whole sub-expressions.

    Matching is structural and applied bottom-up, so substituting
    ``{A: A + dA}`` rewrites every reference to ``A``, including inside
    transposes and inverses.
    """

    def rule(node: Expr) -> Expr:
        return mapping.get(node, node)

    return transform(expr, rule)


def substitute_symbol(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Replace every matrix symbol called ``name`` with ``replacement``."""

    def rule(node: Expr) -> Expr:
        if isinstance(node, MatrixSymbol) and node.name == name:
            return replacement
        return node

    return transform(expr, rule)


def depth(expr: Expr) -> int:
    """Height of the expression tree (a leaf has depth 1)."""
    if not expr.children:
        return 1
    return 1 + max(depth(c) for c in expr.children)


def contains_inverse(expr: Expr) -> bool:
    """Whether any node of the tree is a matrix inversion."""
    return any(isinstance(node, Inverse) for node in walk(expr))
