"""Recursive algebraic simplification of matrix expressions.

The smart constructors in :mod:`repro.expr.ast` already do local folding;
this pass applies the full rule set bottom-up until fixpoint:

* ``(E')' = E``, ``(A*B)' = B'*A'``, ``(A+B)' = A'+B'``
* ``inv(inv(E)) = E``, ``inv(eye) = eye``
* zero/identity annihilation and unit-coefficient removal
* flattening of nested sums/products/stacks
* merging of scalar coefficients through products
* collection of syntactically identical summands (``E + E = 2*E``)

Simplification never changes the value of an expression; the property
tests in ``tests/test_expr_simplify.py`` check exactly that against the
numeric executor.
"""

from __future__ import annotations

from collections import Counter

from .ast import (
    Add,
    Expr,
    MatMul,
    ScalarMul,
    Transpose,
    add,
    matmul,
    scalar_mul,
    transpose,
)
from .visitors import transform


def _push_transpose(expr: Transpose) -> Expr:
    """Distribute a transpose over sums and products."""
    child = expr.child
    if isinstance(child, Add):
        return add(*(transpose(t) for t in child.children))
    if isinstance(child, MatMul):
        return matmul(*(transpose(f) for f in reversed(child.children)))
    return expr


def _split_coeff(term: Expr) -> tuple[float, Expr]:
    """Split a term into (scalar coefficient, base expression)."""
    if isinstance(term, ScalarMul):
        return term.coeff, term.child
    return 1.0, term


def _collect_terms(expr: Add) -> Expr:
    """Combine syntactically identical summands into scalar multiples."""
    coeffs: Counter[Expr] = Counter()
    order: list[Expr] = []
    for term in expr.children:
        coeff, base = _split_coeff(term)
        if base not in coeffs:
            order.append(base)
        coeffs[base] += coeff
    terms = [scalar_mul(coeffs[base], base) for base in order if coeffs[base] != 0.0]
    if not terms:
        from .ast import ZeroMatrix

        return ZeroMatrix(expr.shape.rows, expr.shape.cols)
    return add(*terms)


def _simplify_once(node: Expr) -> Expr:
    if isinstance(node, Transpose):
        return _push_transpose(node)
    if isinstance(node, Add):
        return _collect_terms(node)
    return node


def simplify(expr: Expr) -> Expr:
    """Simplify to fixpoint (bounded; expression sizes shrink monotonically)."""
    for _ in range(50):
        new = transform(expr, _simplify_once)
        if new == expr:
            return new
        expr = new
    return expr
