"""Text rendering of expressions.

Two renderers are provided:

* :func:`to_string` — canonical single-line form using MATLAB-ish syntax
  (``A * B + C'``, ``inv(Z)``, ``[u, A*u]`` for horizontal stacks).  Used
  by ``repr``, error messages and the test suite's snapshot assertions.
* :func:`to_tree` — indented multi-line structural dump for debugging.
"""

from __future__ import annotations

from .ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)

# Precedence levels: higher binds tighter.
_PREC_ADD = 1
_PREC_MUL = 2
_PREC_UNARY = 3
_PREC_ATOM = 4


def _prec(expr: Expr) -> int:
    if isinstance(expr, Add):
        return _PREC_ADD
    if isinstance(expr, (MatMul, ScalarMul)):
        return _PREC_MUL
    if isinstance(expr, Transpose):
        return _PREC_UNARY
    return _PREC_ATOM


def _wrap(child: Expr, parent_prec: int) -> str:
    text = to_string(child)
    if _prec(child) < parent_prec:
        return f"({text})"
    return text


def to_string(expr: Expr) -> str:
    """Canonical one-line rendering of an expression."""
    if isinstance(expr, MatrixSymbol):
        return expr.name
    if isinstance(expr, Identity):
        return f"eye({expr.shape.rows})"
    if isinstance(expr, ZeroMatrix):
        return f"zeros({expr.shape.rows}, {expr.shape.cols})"
    if isinstance(expr, Add):
        parts = []
        for i, term in enumerate(expr.children):
            if isinstance(term, ScalarMul) and term.coeff == -1.0:
                inner = _wrap(term.child, _PREC_ADD + 1)
                parts.append(f"-{inner}" if i == 0 else f" - {inner}")
            elif i == 0:
                parts.append(_wrap(term, _PREC_ADD))
            else:
                parts.append(f" + {_wrap(term, _PREC_ADD)}")
        return "".join(parts)
    if isinstance(expr, MatMul):
        # Left-association is the default reading, so the leading factor
        # may be a product without parentheses; right-nested products keep
        # theirs — they encode the paper's evaluation order.
        parts = [_wrap(expr.children[0], _PREC_MUL)]
        parts.extend(_wrap(f, _PREC_MUL + 1) for f in expr.children[1:])
        return " * ".join(parts)
    if isinstance(expr, ScalarMul):
        if expr.coeff == -1.0:
            return f"-{_wrap(expr.child, _PREC_MUL + 1)}"
        coeff = f"{expr.coeff:g}"
        return f"{coeff} * {_wrap(expr.child, _PREC_MUL + 1)}"
    if isinstance(expr, Transpose):
        return f"{_wrap(expr.child, _PREC_ATOM)}'"
    if isinstance(expr, Inverse):
        return f"inv({to_string(expr.child)})"
    if isinstance(expr, HStack):
        return "[" + ", ".join(to_string(b) for b in expr.children) + "]"
    if isinstance(expr, VStack):
        return "[" + "; ".join(to_string(b) for b in expr.children) + "]"
    raise TypeError(f"cannot print node of type {type(expr).__name__}")


def to_tree(expr: Expr, indent: int = 0) -> str:
    """Indented structural dump (one node per line), for debugging."""
    pad = "  " * indent
    if isinstance(expr, MatrixSymbol):
        head = f"{pad}MatrixSymbol({expr.name}, {expr.shape})"
    elif isinstance(expr, ScalarMul):
        head = f"{pad}ScalarMul({expr.coeff:g})"
    else:
        head = f"{pad}{type(expr).__name__}{expr.shape}"
    lines = [head]
    lines.extend(to_tree(c, indent + 1) for c in expr.children)
    return "\n".join(lines)
