r"""LaTeX rendering of expressions, deltas, and triggers.

The paper presents every derived trigger in display math (Examples 4.2
to 4.6); this emitter produces that form from the live objects, so
derivations can be dropped into papers or notebooks directly::

    >>> from repro.expr import MatrixSymbol
    >>> A = MatrixSymbol("A", 4, 4)
    >>> to_latex(A @ A.T.inv)
    'A \\, (A^{\\top})^{-1}'

Naming conventions mirror the paper: ``u_A``-style identifiers become
subscripted (``u_{A}``), transpose is ``^{\top}``, inverse ``^{-1}``,
block stacks render as bmatrix rows/columns.
"""

from __future__ import annotations

from .ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)
from .shapes import DimLike, DimSum, NamedDim

_PREC_ADD = 1
_PREC_MUL = 2
_PREC_POSTFIX = 3


def _dim(dim: DimLike) -> str:
    if isinstance(dim, int):
        return str(dim)
    if isinstance(dim, NamedDim):
        return dim.name
    if isinstance(dim, DimSum):
        parts = [a.name for a in dim.atoms]
        if dim.const:
            parts.append(str(dim.const))
        return " + ".join(parts)
    raise TypeError(f"cannot render dimension {dim!r}")


def _symbol(name: str) -> str:
    base, _, subscript = name.partition("_")
    if subscript:
        return f"{base}_{{{subscript}}}"
    return name


def _needs_group(text: str) -> bool:
    return len(text) > 1 and not (text.startswith("(") and text.endswith(")"))


def to_latex(expr: Expr) -> str:
    """LaTeX source for an expression (display-math body, no ``$``)."""
    text, _ = _emit(expr)
    return text


def _paren(text: str, prec: int, parent: int) -> str:
    return f"({text})" if prec < parent else text


def _emit(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, MatrixSymbol):
        return _symbol(expr.name), _PREC_POSTFIX
    if isinstance(expr, Identity):
        return f"I_{{{_dim(expr.shape.rows)}}}", _PREC_POSTFIX
    if isinstance(expr, ZeroMatrix):
        return (f"0_{{{_dim(expr.shape.rows)} \\times "
                f"{_dim(expr.shape.cols)}}}"), _PREC_POSTFIX
    if isinstance(expr, Add):
        parts = []
        for i, term in enumerate(expr.children):
            if isinstance(term, ScalarMul) and term.coeff == -1.0:
                inner, prec = _emit(term.child)
                parts.append(f" - {_paren(inner, prec, _PREC_ADD + 1)}")
            else:
                inner, prec = _emit(term)
                rendered = _paren(inner, prec, _PREC_ADD)
                parts.append(rendered if i == 0 else f" + {rendered}")
        return "".join(parts), _PREC_ADD
    if isinstance(expr, MatMul):
        rendered = []
        for position, factor in enumerate(expr.children):
            inner, prec = _emit(factor)
            parent = _PREC_MUL if position == 0 else _PREC_MUL + 1
            rendered.append(_paren(inner, prec, parent))
        return " \\, ".join(rendered), _PREC_MUL
    if isinstance(expr, ScalarMul):
        inner, prec = _emit(expr.child)
        body = _paren(inner, prec, _PREC_MUL + 1)
        if expr.coeff == -1.0:
            return f"-{body}", _PREC_MUL
        coeff = f"{expr.coeff:g}"
        return f"{coeff} \\, {body}", _PREC_MUL
    if isinstance(expr, Transpose):
        inner, prec = _emit(expr.child)
        if prec < _PREC_POSTFIX:
            inner = f"({inner})"
        return f"{inner}^{{\\top}}", _PREC_POSTFIX
    if isinstance(expr, Inverse):
        inner, prec = _emit(expr.child)
        if prec < _PREC_POSTFIX:
            inner = f"({inner})"
        return f"{inner}^{{-1}}", _PREC_POSTFIX
    if isinstance(expr, HStack):
        body = " & ".join(to_latex(b) for b in expr.children)
        return f"\\begin{{bmatrix}} {body} \\end{{bmatrix}}", _PREC_POSTFIX
    if isinstance(expr, VStack):
        body = " \\\\ ".join(to_latex(b) for b in expr.children)
        return f"\\begin{{bmatrix}} {body} \\end{{bmatrix}}", _PREC_POSTFIX
    raise TypeError(f"cannot render node of type {type(expr).__name__}")


def trigger_to_latex(trigger) -> str:
    r"""An ``align*`` block for a whole trigger (the Example 4.6 layout).

    Assignments render with ``:=``, updates with ``\mathrel{+}=``, one
    statement per line.
    """
    lines = []
    for assign in trigger.assigns:
        lines.append(
            f"{_symbol(assign.target.name)} &:= {to_latex(assign.expr)} \\\\"
        )
    for update in trigger.updates:
        lines.append(
            f"{_symbol(update.view.name)} &\\mathrel{{+}}= "
            f"{to_latex(update.expr)} \\\\"
        )
    body = "\n".join(lines)
    return f"\\begin{{align*}}\n{body}\n\\end{{align*}}"


__all__ = ["to_latex", "trigger_to_latex"]
