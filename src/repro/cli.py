"""Command-line interface: compile, advise on, and run matrix programs.

Mirrors the paper's compiler workflow (Figure 2) from the shell::

    python -m repro compile program.lvw                 # trigger text
    python -m repro compile program.lvw --backend python
    python -m repro compile program.lvw --backend octave --optimize
    python -m repro compile program.lvw --backend spark
    python -m repro compile program.lvw --input A --rank 2
    python -m repro compile program.lvw --dims n=4096   # chain-order products
    python -m repro show program.lvw                    # parsed program
    python -m repro advise powers --n 10000 --k 16      # Table 2 advisor
    python -m repro advise general --n 30000 --p 1 --k 16

``repro advise`` ranks the Table 2 grid; with ``--density`` the grid
gains the execution-backend axis (nnz-aware cost model), and ``--json``
emits the ranking machine-readably::

    python -m repro advise general --n 2000 --p 1 --k 16 --density 0.01
    python -m repro advise powers --n 2000 --k 16 --density 0.01 --json

``repro run`` executes a program end to end: it generates seeded
random inputs at a requested density, opens a planner-configured
session (:func:`repro.runtime.session.open_session`), drives a stream
of rank-``r`` row updates through it, and reports the chosen plan,
FLOP counters and wall time::

    python -m repro run program.lvw --dims n=2000 --density 0.01
    python -m repro run program.lvw --dims n=64 --plan incr --backend dense
    python -m repro run program.lvw --dims n=256 --updates 100 --json
    python -m repro run program.lvw --dims n=512 --replan 50
    python -m repro run program.lvw --dims n=512 --batch 16  # force a width
    python -m repro run program.lvw --dims n=512 --theta 1.5 \
        --partition heavy-light --heavy-budget 16  # skew-split maintenance

``repro run --tenants N`` replicates the program across N tenants —
``--share`` maintains them through one shared
:class:`~repro.catalog.ViewCatalog` (each distinct subexpression kept
fresh once), without it each tenant pays for its own session — so the
two invocations bracket the sharing win::

    python -m repro run program.lvw --dims n=256 --tenants 8 --share
    python -m repro run program.lvw --dims n=256 --tenants 8

``repro catalog`` registers several tenant program files on one shared
catalog, streams updates through it, and reports the sharing stats and
the lineage DAG of shared intermediates::

    python -m repro catalog a.lvw b.lvw --dims n=256 --updates 100
    python -m repro catalog a.lvw --tenants 4 --memory-budget 500000 --json

``repro serve`` opens a concurrent view server over the session
(:mod:`repro.runtime.serving`) and drives a load generator against it —
one writer thread absorbing a random update stream, N reader threads on
lock-free snapshot reads — reporting read p50/p99 latency, achieved
staleness and writer throughput (``--baseline`` measures the
flush-on-read mutex strawman instead)::

    python -m repro serve program.lvw --dims n=256 --readers 8
    python -m repro serve program.lvw --dims n=256 --staleness 8 --json
    python -m repro serve program.lvw --dims n=256 --baseline

``repro calibrate`` microbenchmarks this machine's kernels and caches
calibrated planner cost constants (see :mod:`repro.calibrate`)::

    python -m repro calibrate
    python -m repro calibrate --quick --dry-run --json

Program files use the frontend language (see ``repro.frontend``)::

    input A(n, n);
    B := A * A;
    C := B * B;
    output C;
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .compiler import (
    UnboundDimensionError,
    compile_program,
    generate_octave_trigger,
    generate_python_trigger,
    generate_spark_trigger,
    optimize_trigger,
    optimize_trigger_chains,
)
from .compiler.transform import materialize_inversions
from .frontend import SyntaxErrorWithPosition, parse_program

BACKENDS = ("trigger", "python", "octave", "spark")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LINVIEW reproduction: compile linear algebra programs "
                    "into incremental update triggers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="parse a program and print it")
    show.add_argument("file", help="program source file")

    comp = sub.add_parser("compile", help="compile a program to triggers")
    comp.add_argument("file", help="program source file")
    comp.add_argument("--backend", choices=BACKENDS, default="trigger",
                      help="output form (default: trigger text)")
    comp.add_argument("--input", dest="inputs", action="append",
                      help="compile a trigger only for this input "
                           "(repeatable; default: all inputs)")
    comp.add_argument("--rank", type=int, default=1,
                      help="width of the incoming update factors (default 1)")
    comp.add_argument("--optimize", action="store_true",
                      help="run the Section 6 optimizer (CSE, copies, DCE)")
    comp.add_argument("--materialize-inversions", action="store_true",
                      help="hoist nested inv(...) into their own views "
                           "(the Example 4.2 restructuring)")
    comp.add_argument("--dims", action="append", default=[],
                      metavar="NAME=SIZE",
                      help="bind a symbolic dimension and re-associate "
                           "every product chain optimally for those sizes "
                           "(repeatable, e.g. --dims n=4096)")

    advise = sub.add_parser(
        "advise",
        help="rank maintenance strategies by the Table 2 cost model",
    )
    advise.add_argument("computation", choices=("powers", "general"),
                        help="'powers' (A^k) or 'general' (T = A T + B)")
    advise.add_argument("--n", type=int, required=True,
                        help="matrix order n")
    advise.add_argument("--k", type=int, required=True,
                        help="iteration count k")
    advise.add_argument("--p", type=int, default=1,
                        help="iterate width p (general form only)")
    advise.add_argument("--gamma", type=float, default=3.0,
                        help="matrix-multiplication exponent (default 3.0)")
    advise.add_argument("--memory-budget", type=float, default=None,
                        help="max view footprint in matrix entries")
    advise.add_argument("--top", type=int, default=5,
                        help="how many configurations to print (default 5)")
    advise.add_argument("--density", type=float, default=None,
                        help="input nnz density; adds the execution-backend "
                             "axis to the grid (nnz-aware cost model)")
    advise.add_argument("--rank", type=int, default=1,
                        help="update rank for the nnz-aware model (default 1)")
    advise.add_argument("--refreshes", type=int, default=100,
                        help="expected refresh count amortizing setup "
                             "(nnz-aware model only; default 100)")
    advise.add_argument("--json", action="store_true",
                        help="emit the ranking as JSON")

    cal = sub.add_parser(
        "calibrate",
        help="microbenchmark this machine and cache planner cost constants",
    )
    cal.add_argument("--output", default=None, metavar="PATH",
                     help="cache file to write (default: $REPRO_CALIBRATION "
                          "or ~/.cache/linview-repro/calibration.json)")
    cal.add_argument("--backend", dest="backends", action="append",
                     choices=("dense", "sparse"),
                     help="calibrate only this backend (repeatable; "
                          "default: all available)")
    cal.add_argument("--repeats", type=int, default=5,
                     help="timing repeats per kernel (default 5)")
    cal.add_argument("--quick", action="store_true",
                     help="smaller microbenchmark sizes (noisier fit)")
    cal.add_argument("--dry-run", action="store_true",
                     help="measure and report without writing the cache")
    cal.add_argument("--json", action="store_true",
                     help="emit the fitted constants as JSON")

    run = sub.add_parser(
        "run",
        help="execute a program against a generated update stream",
    )
    run.add_argument("file", help="program source file")
    run.add_argument("--dims", action="append", default=[],
                     metavar="NAME=SIZE",
                     help="bind a symbolic dimension (repeatable, required "
                          "for every dimension the inputs use)")
    run.add_argument("--density", type=float, default=1.0,
                     help="nnz density of the generated inputs (default 1.0)")
    run.add_argument("--updates", type=int, default=50,
                     help="number of rank-r row updates to stream (default 50)")
    run.add_argument("--rank", type=int, default=1,
                     help="width of each factored update (default 1)")
    run.add_argument("--plan", choices=("auto", "incr", "reeval"),
                     default="auto",
                     help="maintenance strategy: auto (cost-driven planner), "
                          "incr, or reeval")
    run.add_argument("--backend", choices=("auto", "dense", "sparse"),
                     default="auto",
                     help="execution backend (auto = planner's choice)")
    run.add_argument("--mode", choices=("auto", "interpret", "codegen"),
                     default="auto",
                     help="trigger execution mode (auto = planner's choice)")
    run.add_argument("--replan", type=int, default=0, metavar="N",
                     help="re-price the plan grid every N updates and "
                          "switch strategy/backend mid-stream when it "
                          "pays (0 = static plan)")
    run.add_argument("--partition", default="auto",
                     choices=("auto", "uniform", "heavy-light"),
                     help="update-target partitioning: 'auto' honors the "
                          "plan's recommendation (heavy-light splits "
                          "heavy-hitter rows into eager accumulator rows "
                          "and defers the light tail; chosen only when "
                          "the stream sketch shows skew), 'uniform' "
                          "disables the split, 'heavy-light' forces it")
    run.add_argument("--heavy-budget", type=int, default=None, metavar="N",
                     help="heavy-set capacity for --partition heavy-light "
                          "(default: the plan's recommendation)")
    run.add_argument("--theta", type=float, default=0.0, metavar="T",
                     help="Zipf skew of the generated update stream's "
                          "target rows (0 = uniform; ~1.2+ makes "
                          "heavy-light pay)")
    run.add_argument("--batch", default="auto", metavar="{auto,off,N}",
                     help="update batching: 'auto' honors the plan's "
                          "recommended width (QR+SVD-compacted batch "
                          "refreshes), 'off' applies per update, an "
                          "integer forces that width (default: auto)")
    run.add_argument("--nodes", type=int, default=1, metavar="N",
                     help="worker-process budget: N > 1 lets the planner "
                          "price sharded execution over N shared-memory "
                          "workers and picks it only when the comm-cost "
                          "model says it pays (default 1: single-process)")
    run.add_argument("--shard", choices=("range", "hash"), default="range",
                     help="tile-to-worker assignment strategy for sharded "
                          "runs (default range: contiguous block rows)")
    run.add_argument("--supervise", action="store_true",
                     help="supervise sharded workers: respawn dead or hung "
                          "processes and replay their shard's oplog so a "
                          "kill -9 becomes a logged recovery, not a crash")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="write epoch-consistent checkpoints of the "
                          "maintained state into DIR (created if missing)")
    run.add_argument("--checkpoint-every", default="auto",
                     metavar="{auto,N}",
                     help="snapshot cadence in updates; auto prices the "
                          "snapshot cost against replay cost (default auto)")
    run.add_argument("--restore", action="store_true",
                     help="resume from the newest valid checkpoint in "
                          "--checkpoint-dir (fresh start when none exists), "
                          "then apply the update stream on top")
    run.add_argument("--tenants", type=int, default=1, metavar="N",
                     help="replicate the program across N tenants and "
                          "stream the updates to all of them (default 1; "
                          "see --share)")
    run.add_argument("--share", action="store_true",
                     help="maintain the --tenants replicas through one "
                          "shared view catalog (each distinct "
                          "subexpression kept fresh once) instead of N "
                          "independent sessions")
    run.add_argument("--input", dest="target",
                     help="input the update stream hits (default: first)")
    run.add_argument("--seed", type=int, default=20140622,
                     help="random seed for inputs and updates")
    run.add_argument("--scale", type=float, default=0.01,
                     help="magnitude of the update deltas (default 0.01)")
    run.add_argument("--json", action="store_true",
                     help="emit plan/counters/timings as JSON")

    cat = sub.add_parser(
        "catalog",
        help="maintain several tenant programs on one shared view "
             "catalog and report sharing stats and the lineage DAG",
    )
    cat.add_argument("files", nargs="+",
                     help="tenant program source files (each registers "
                          "one tenant on the catalog)")
    cat.add_argument("--tenants", type=int, default=1, metavar="N",
                     help="register the file list N times (N tenants "
                          "per file; default 1)")
    cat.add_argument("--dims", action="append", default=[],
                     metavar="NAME=SIZE",
                     help="bind a symbolic dimension (repeatable)")
    cat.add_argument("--density", type=float, default=1.0,
                     help="nnz density of the generated inputs (default 1.0)")
    cat.add_argument("--updates", type=int, default=50,
                     help="number of rank-r row updates to stream "
                          "through the shared base table (default 50)")
    cat.add_argument("--rank", type=int, default=1,
                     help="width of each factored update (default 1)")
    cat.add_argument("--plan", choices=("incr", "reeval"), default="incr",
                     help="maintenance strategy of the shared inner "
                          "session (default incr)")
    cat.add_argument("--backend", choices=("dense", "sparse"),
                     default="dense",
                     help="execution backend of the shared inner "
                          "session (default dense)")
    cat.add_argument("--mode", choices=("interpret", "codegen"),
                     default="interpret",
                     help="trigger execution mode of the shared inner "
                          "session (default interpret)")
    cat.add_argument("--memory-budget", type=int, default=None,
                     metavar="BYTES",
                     help="byte budget for admitted shared state; over "
                          "it, frontier nodes demote to "
                          "REEVAL-on-demand (default: unbounded)")
    cat.add_argument("--input", dest="target",
                     help="input the update stream hits (default: first "
                          "input of the first program)")
    cat.add_argument("--scale", type=float, default=0.01,
                     help="magnitude of the update deltas (default 0.01)")
    cat.add_argument("--seed", type=int, default=20140622,
                     help="random seed for inputs and updates")
    cat.add_argument("--json", action="store_true",
                     help="emit stats/lineage/counters as JSON")

    serve = sub.add_parser(
        "serve",
        help="serve a program's views concurrently and measure read "
             "latency under write pressure",
    )
    serve.add_argument("file", help="program source file")
    serve.add_argument("--dims", action="append", default=[],
                       metavar="NAME=SIZE",
                       help="bind a symbolic dimension (repeatable)")
    serve.add_argument("--density", type=float, default=1.0,
                       help="nnz density of the generated inputs (default 1.0)")
    serve.add_argument("--duration", type=float, default=2.0,
                       help="load window in seconds (default 2.0)")
    serve.add_argument("--readers", type=int, default=4,
                       help="concurrent reader threads (default 4)")
    serve.add_argument("--reader-rate", type=float, default=200.0,
                       help="reads/second per reader thread (default 200; "
                            "0 = unpaced tight loop)")
    serve.add_argument("--staleness", default="32", metavar="{N,none}",
                       help="publish an epoch at least every N absorbed "
                            "updates ('none': publish only when the "
                            "ingress queue idles; default 32)")
    serve.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                       help="also publish when the oldest unpublished "
                            "update is this old")
    serve.add_argument("--max-queue", type=int, default=4096,
                       help="ingress queue bound (backpressure; default 4096)")
    serve.add_argument("--baseline", action="store_true",
                       help="measure the flush-on-read mutex baseline "
                            "instead of snapshot serving")
    serve.add_argument("--plan", choices=("auto", "incr", "reeval"),
                       default="auto",
                       help="maintenance strategy (default: planner)")
    serve.add_argument("--backend", choices=("auto", "dense", "sparse"),
                       default="auto",
                       help="execution backend (default: planner's choice)")
    serve.add_argument("--mode", choices=("auto", "interpret", "codegen"),
                       default="auto",
                       help="trigger execution mode (default: planner's choice)")
    serve.add_argument("--batch", default="auto", metavar="{auto,off,N}",
                       help="update batching under the writer (default: auto)")
    serve.add_argument("--rank", type=int, default=1,
                       help="width of each factored update (default 1)")
    serve.add_argument("--scale", type=float, default=0.01,
                       help="magnitude of the update deltas (default 0.01)")
    serve.add_argument("--seed", type=int, default=20140622,
                       help="random seed for inputs and updates")
    serve.add_argument("--json", action="store_true",
                       help="emit plan/latency/staleness results as JSON")
    return parser


def _load_program(path: str):
    source = Path(path).read_text()
    return parse_program(source)


def _run_advise(args) -> int:
    from .cost.advisor import recommend_general, recommend_powers, speedup_estimate

    extra = {}
    if args.density is not None:
        extra = {"density": args.density, "rank": args.rank,
                 "refreshes": args.refreshes}
    try:
        if args.computation == "powers":
            ranked = recommend_powers(args.n, args.k, gamma=args.gamma,
                                      memory_budget=args.memory_budget,
                                      **extra)
            header = f"A^{args.k}, n = {args.n}"
        else:
            ranked = recommend_general(args.n, args.p, args.k,
                                       gamma=args.gamma,
                                       memory_budget=args.memory_budget,
                                       **extra)
            header = f"T = A T + B, n = {args.n}, p = {args.p}, k = {args.k}"
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps({
            "computation": args.computation,
            "density": args.density,
            "speedup_estimate": speedup_estimate(ranked),
            "ranking": [rec.as_dict() for rec in ranked[:args.top]],
        }, indent=2))
        return 0

    grid = "Table 2" if args.density is None else (
        f"nnz-aware grid, density {args.density:g}"
    )
    print(f"# {header} (predicted operation counts, {grid})")
    print(f"{'rank':<5} {'config':<22} {'time':>12} {'space':>12}")
    for i, rec in enumerate(ranked[:args.top], start=1):
        print(f"{i:<5} {rec.label:<22} {rec.time:>12.4g} {rec.space:>12.4g}")
    print(f"# predicted gain over best re-evaluation: "
          f"{speedup_estimate(ranked):.1f}x")
    return 0


def _run_calibrate(args) -> int:
    from .backends import get_backend
    from . import calibrate

    calibration = calibrate.run_calibration(
        backends=args.backends, repeats=args.repeats, quick=args.quick,
    )
    if not calibration.backends:
        print("error: no backend available to calibrate", file=sys.stderr)
        return 2

    written = None
    if not args.dry_run:
        try:
            written = calibration.save(args.output)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        default = calibrate.default_cache_path()
        if default is not None and written.resolve() == default.resolve():
            # Written to the auto-load path: in-process planners pick
            # the new constants up immediately.  Any other --output is
            # only consulted when $REPRO_CALIBRATION points at it, so
            # the memoized default must not be refreshed from it.
            calibrate.autoload(refresh=True)

    if args.json:
        payload = calibration.as_dict()
        payload["path"] = str(written) if written else None
        print(json.dumps(payload, indent=2))
        return 0

    print(f"# calibration for {calibration.key}")
    for name, cal in sorted(calibration.backends.items()):
        defaults = get_backend(name)
        print(f"{name}:")
        print(f"  throughput           : {cal.flops_per_second:,.0f} FLOP/s")
        print(f"  call overhead        : {cal.call_overhead_flops:,.0f} FLOPs "
              f"(shipped constant: {defaults.est_call_overhead_flops:,.0f})")
        if cal.sparse_overhead is not None:
            print(f"  sparse FLOP penalty  : {cal.sparse_overhead:.2f}x "
                  f"(shipped constant: "
                  f"{getattr(defaults, 'est_overhead', float('nan')):.2f}x)")
        if cal.sparse_update_overhead is not None:
            print(f"  sparse update penalty: {cal.sparse_update_overhead:.2f}x "
                  f"(shipped constant: "
                  f"{getattr(defaults, 'est_update_overhead', float('nan')):.2f}x)")
        if cal.sparse_spgemm_overhead is not None:
            print(f"  spgemm penalty       : {cal.sparse_spgemm_overhead:.2f}x "
                  f"(shipped constant: "
                  f"{getattr(defaults, 'est_spgemm_overhead', float('nan')):.2f}x)")
        if cal.inplace_discount is not None:
            print(f"  in-place discount    : {cal.inplace_discount:.2f}x "
                  f"(shipped constant: "
                  f"{defaults.est_inplace_discount:.2f}x)")
        if cal.convert_passes_per_entry is not None:
            print(f"  convert passes/entry : "
                  f"{cal.convert_passes_per_entry:.2f} "
                  f"(shipped constant: "
                  f"{defaults.est_convert_passes_per_entry:.2f})")
        if cal.compaction_factor is not None:
            print(f"  compaction m^3 factor: "
                  f"{cal.compaction_factor:.1f} "
                  f"(shipped constant: "
                  f"{defaults.est_compaction_factor:.1f})")
        for sample in cal.samples:
            print(f"    {sample.kernel:<28} {sample.seconds * 1e6:10.1f} us  "
                  f"(~{sample.model_flops:,.0f} FLOPs)")
    if written:
        print(f"cached -> {written}")
        default = calibrate.default_cache_path()
        if default is None or written.resolve() != default.resolve():
            print(f"note: planners load this file only with "
                  f"{calibrate.CACHE_ENV}={written}")
    else:
        print("dry run: cache not written")
    return 0


def _generate_input(sym, dims, density, rng):
    """One seeded random input at the requested density, spectrally tamed."""
    from .runtime.executor import EvaluationError, resolve_dim
    from .workloads.generators import spectral_scale

    try:
        rows = resolve_dim(sym.shape.rows, dims)
        cols = resolve_dim(sym.shape.cols, dims)
    except EvaluationError as exc:
        raise ValueError(f"{exc}; bind it with --dims NAME=SIZE") from None
    arr = rng.standard_normal((rows, cols))
    if density < 1.0:
        arr *= rng.random((rows, cols)) < density
    # Keep iterated programs numerically tame: scale square inputs
    # toward spectral radius 0.9 (the workloads convention).
    if rows == cols and rows > 1:
        arr = spectral_scale(rng, arr, radius=0.9, iterations=10)
    return arr


def _generate_inputs(program, dims, density, rng):
    """Seeded random inputs at the requested density, spectrally tamed."""
    return {sym.name: _generate_input(sym, dims, density, rng)
            for sym in program.inputs}


def _update_stream(rng, n_rows, n_cols, count, rank, scale):
    """A pre-generated stream of rank-``rank`` row-update factor pairs."""
    import numpy as np

    updates = []
    for _ in range(count):
        u = np.zeros((n_rows, rank))
        rows = rng.choice(n_rows, size=rank, replace=False)
        u[rows, np.arange(rank)] = 1.0
        v = scale * rng.standard_normal((n_cols, rank))
        updates.append((u, v))
    return updates


def _run_run_tenants(args, program) -> int:
    """The ``repro run --tenants N [--share]`` multi-tenant branch."""
    import numpy as np

    from .catalog import ViewCatalog
    from .cost.counters import Counter
    from .runtime.session import IVMSession, ReevalSession
    from .runtime.updates import FactoredUpdate

    try:
        dims = _parse_dims(args.dims)
        rng = np.random.default_rng(args.seed)
        inputs = _generate_inputs(program, dims, args.density, rng)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    target = args.target or program.input_names[0]
    if target not in program.input_names:
        print(f"error: no input named {target!r}", file=sys.stderr)
        return 2
    if args.updates < 1 or args.tenants < 1:
        print("error: need --updates >= 1 and --tenants >= 1",
              file=sys.stderr)
        return 2

    strategy = "REEVAL" if args.plan == "reeval" else "INCR"
    mode = "interpret" if args.mode == "auto" else args.mode
    backend = None if args.backend == "auto" else args.backend
    n_rows, n_cols = inputs[target].shape
    updates = _update_stream(rng, n_rows, n_cols, args.updates, args.rank,
                             args.scale)

    counter = Counter()
    catalog = None
    start = time.perf_counter()
    if args.share:
        catalog = ViewCatalog(strategy=strategy, mode=mode, backend=backend,
                              rank=args.rank, counter=counter)
        tenants = [catalog.open(program, inputs if i == 0 else None,
                                dims=dims)
                   for i in range(args.tenants)]
    else:
        make = (ReevalSession if strategy == "REEVAL" else
                lambda *a, **kw: IVMSession(*a, rank=args.rank, mode=mode,
                                            **kw))
        tenants = [make(program, inputs, dims=dims, counter=counter,
                        backend=backend)
                   for _ in range(args.tenants)]
    setup_seconds = time.perf_counter() - start
    counter.reset()

    start = time.perf_counter()
    if catalog is not None:
        # One shared base table: the stream lands once, every tenant
        # observes it.
        for u, v in updates:
            catalog.apply_update(FactoredUpdate(target, u, v))
        catalog.flush()
    else:
        for u, v in updates:
            for tenant in tenants:
                tenant.apply_update(FactoredUpdate(target, u, v))
        for tenant in tenants:
            tenant.flush()
    maintain_seconds = time.perf_counter() - start

    label = "shared catalog" if args.share else "independent sessions"
    payload = {
        "tenants": args.tenants,
        "share": bool(args.share),
        "strategy": strategy,
        "mode": mode,
        "backend": backend or "dense",
        "updates": len(updates),
        "setup_seconds": setup_seconds,
        "maintain_seconds": maintain_seconds,
        "seconds_per_update": maintain_seconds / len(updates),
        "total_flops": counter.total_flops,
        "tenant_views": args.tenants * len(program.statements),
    }
    if catalog is not None:
        payload["distinct_nodes"] = catalog.distinct_nodes
        payload["catalog"] = catalog.stats.as_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"# {args.file}: {len(updates)} rank-{args.rank} updates x "
          f"{args.tenants} tenants ({label})")
    print(f"config     : {strategy} / {payload['backend']} / {mode}")
    if catalog is not None:
        print(f"sharing    : {catalog.distinct_nodes} distinct nodes for "
              f"{payload['tenant_views']} tenant views "
              f"({catalog.stats.shared_hits} shared hits)")
        print(f"refreshes  : {catalog.stats.node_refreshes} node refreshes "
              f"({len(updates)} updates)")
    print(f"setup      : {setup_seconds * 1e3:10.2f} ms")
    print(f"maintenance: {maintain_seconds * 1e3:10.2f} ms   "
          f"({payload['seconds_per_update'] * 1e3:.3f} ms/update)")
    print(f"FLOPs      : {counter.total_flops:,} total")
    return 0


def _run_run(args, program) -> int:
    import numpy as np

    from .cost.counters import Counter
    from .runtime.session import open_session
    from .runtime.updates import FactoredUpdate

    if args.share or args.tenants > 1:
        return _run_run_tenants(args, program)

    try:
        dims = _parse_dims(args.dims)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    try:
        inputs = _generate_inputs(program, dims, args.density, rng)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    target = args.target or program.input_names[0]
    if target not in program.input_names:
        print(f"error: no input named {target!r}", file=sys.stderr)
        return 2
    n_rows, n_cols = inputs[target].shape
    if args.updates < 1:
        print("error: need --updates >= 1", file=sys.stderr)
        return 2
    if not 1 <= args.rank <= n_rows:
        print(f"error: --rank must be between 1 and {n_rows} "
              f"(rows of {target!r})", file=sys.stderr)
        return 2
    batch = args.batch
    if batch not in ("auto", "off"):
        if not str(batch).lstrip("-").isdigit() or int(batch) < 1:
            print(f"error: --batch must be auto, off or a width >= 1, "
                  f"got {batch!r}", file=sys.stderr)
            return 2
        batch = int(batch)
    checkpoint = None
    if args.checkpoint_dir is not None:
        every = args.checkpoint_every
        if every != "auto":
            if not str(every).isdigit() or int(every) < 1:
                print(f"error: --checkpoint-every must be auto or a count "
                      f">= 1, got {every!r}", file=sys.stderr)
                return 2
            every = int(every)
        checkpoint = {"directory": args.checkpoint_dir, "every": every,
                      "restore": "auto" if args.restore else False}
    elif args.restore:
        print("error: --restore needs --checkpoint-dir", file=sys.stderr)
        return 2

    counter = Counter()
    start = time.perf_counter()
    session = open_session(
        program, inputs, dims=dims,
        plan=args.plan,
        backend=None if args.backend == "auto" else args.backend,
        mode=None if args.mode == "auto" else args.mode,
        rank=args.rank,
        refresh_count=args.updates,
        counter=counter,
        replan={"check_every": args.replan} if args.replan > 0 else None,
        batch=batch,
        partition=args.partition,
        heavy_budget=args.heavy_budget,
        nodes=args.nodes,
        shard=args.shard,
        supervise=args.supervise,
        checkpoint=checkpoint,
    )
    restored_updates = getattr(
        getattr(session, "session", session), "update_count", 0)
    setup_seconds = time.perf_counter() - start
    setup_flops = counter.total_flops
    counter.reset()

    from .workloads.zipf import sample_rows

    # One draw for the whole stream: sample_rows fixes a single random
    # rank -> row assignment, so the hot rows persist across updates
    # (the skew heavy-light maintenance exploits).
    zipf_rows = None
    if args.theta > 0.0:
        zipf_rows = sample_rows(rng, n_rows, args.updates * args.rank,
                                args.theta).reshape(args.updates, args.rank)
    updates = []
    for index in range(args.updates):
        u = np.zeros((n_rows, args.rank))
        if zipf_rows is not None:
            rows = zipf_rows[index]
        else:
            rows = rng.choice(n_rows, size=args.rank, replace=False)
        u[rows, np.arange(args.rank)] = 1.0
        v = args.scale * rng.standard_normal((n_cols, args.rank))
        updates.append((u, v))

    start = time.perf_counter()
    for u, v in updates:
        session.apply_update(FactoredUpdate(target, u, v))
    session.flush()  # land any batched tail inside the timed window
    maintain_seconds = time.perf_counter() - start
    per_update = maintain_seconds / len(updates)

    plan = session.plan
    flops = dict(sorted(counter.snapshot().items()))
    replans = list(getattr(session, "replans", ()))
    batch_stats = session.batch_stats
    batch_width = session.batch_size
    partition_mode = session.partition
    partition_stats = session.partition_stats
    # Sharded sessions carry a real multiprocess engine: harvest the
    # measured comm traffic (schema: benchmarks/conftest.py) and shut
    # the workers down before reporting.  A replan monitor wraps the
    # session, so unwrap first.
    inner = getattr(session, "session", session)
    # Leave the directory durable: land any logged tail as a final
    # snapshot so a later --restore resumes exactly here.
    checkpointer = getattr(inner, "checkpointer", None)
    ckpt = None
    if checkpointer is not None:
        if checkpointer.pending:
            checkpointer.checkpoint()
        ckpt = {
            "directory": str(checkpointer.manager.directory),
            "every": checkpointer.every,
            "saves": checkpointer.saves,
            "restored_updates": restored_updates,
            "last": str(checkpointer.last_path),
        }
    import dataclasses as _dc

    recoveries = [_dc.asdict(event) for event in
                  getattr(inner, "recoveries", ())]
    fallbacks = list(getattr(inner, "fallback_events", ()))
    engine = getattr(inner, "engine", None)
    comm = None
    if engine is not None and hasattr(engine, "comm"):
        comm = {
            **engine.comm.as_dict(),
            "worker_seconds": engine.worker_seconds(),
            "partition": engine.part.describe(),
        }
        inner.close()
    if args.json:
        print(json.dumps({
            "plan": plan.as_dict(),
            "updates": len(updates),
            "setup_seconds": setup_seconds,
            "setup_flops": setup_flops,
            "maintain_seconds": maintain_seconds,
            "seconds_per_update": per_update,
            "flops_by_op": flops,
            "total_flops": counter.total_flops,
            "batch": {
                "width": batch_width,
                **(batch_stats.as_dict() if batch_stats else {}),
            },
            "partition": {
                "mode": partition_mode,
                **(partition_stats.as_dict() if partition_stats else {}),
            },
            "replans": [
                {"refreshes": e.refreshes, "from": e.from_label,
                 "to": e.to_label, "switched": e.switched,
                 "seconds_per_update": e.seconds_per_update}
                for e in replans
            ],
            **({"comm": comm} if comm is not None else {}),
            **({"checkpoint": ckpt} if ckpt is not None else {}),
            **({"recoveries": recoveries} if recoveries else {}),
            **({"fallbacks": fallbacks} if fallbacks else {}),
        }, indent=2))
        return 0

    print(f"# {args.file}: {len(updates)} rank-{args.rank} updates to "
          f"{target!r} (density {args.density:g})")
    print(f"plan       : {plan.label}")
    print(f"  strategy : {plan.strategy}")
    print(f"  backend  : {plan.backend}")
    print(f"  mode     : {plan.mode}")
    if batch_stats is not None and batch_stats.flushes:
        print(f"  batch    : {batch_width} "
              f"(achieved compression {batch_stats.compression:.1f}x over "
              f"{batch_stats.flushes} flushes)")
    else:
        print(f"  batch    : "
              f"{'off' if batch_width <= 1 else batch_width}")
    if partition_stats is not None:
        partitioner = getattr(session, "_partitioner", None)
        budget = partitioner.budget if partitioner is not None else "?"
        print(f"  partition: heavy-light (budget {budget}, "
              f"{partition_stats.heavy_hits} heavy / "
              f"{partition_stats.light_hits} light hits, "
              f"amortization {partition_stats.amortization:.1f} cols/rank "
              f"over {partition_stats.folds} folds)")
    else:
        print("  partition: uniform")
    print(f"setup      : {setup_seconds * 1e3:10.2f} ms   "
          f"({setup_flops:,} FLOPs)")
    print(f"maintenance: {maintain_seconds * 1e3:10.2f} ms   "
          f"({per_update * 1e3:.3f} ms/update)")
    for event in replans:
        verb = "switched" if event.switched else "considered"
        print(f"  replan @ {event.refreshes:>5}: {verb} "
              f"{event.from_label} -> {event.to_label}")
    total = counter.total_flops
    print(f"FLOPs      : {total:,} total")
    for op, count in flops.items():
        print(f"  {op:<11} {count:,}")
    if comm is not None:
        part = comm["partition"]
        print(f"comm       : {part['nodes']} workers, "
              f"{part['strategy']} shards, "
              f"{comm['total_bytes']:,} bytes / "
              f"{comm['total_messages']:,} messages")
        for kind in sorted(comm["bytes"]):
            print(f"  {kind:<11} {comm['bytes'][kind]:,} bytes "
                  f"({comm['messages'].get(kind, 0):,} msgs, "
                  f"{comm['seconds'].get(kind, 0.0) * 1e3:.1f} ms)")
        busy = ", ".join(f"{s * 1e3:.1f}" for s in comm["worker_seconds"])
        print(f"  worker ms : [{busy}]")
    if ckpt is not None:
        resumed = (f", resumed at update {ckpt['restored_updates']}"
                   if ckpt["restored_updates"] else "")
        print(f"checkpoint : {ckpt['saves']} snapshots every "
              f"{ckpt['every']} updates -> {ckpt['directory']}{resumed}")
    for event in recoveries:
        print(f"  recovery : worker {event['worker']} {event['reason']} "
              f"during {event['label']}; replayed {event['replayed']} "
              f"refreshes in {event['seconds'] * 1e3:.1f} ms")
    for event in fallbacks:
        print(f"  fallback : sharded -> single-process "
              f"({event['mode']} after {event['reason']})")
    return 0


def _run_catalog(args) -> int:
    """The ``repro catalog`` subcommand: shared multi-tenant maintenance."""
    import numpy as np

    from .catalog import CatalogError, ViewCatalog
    from .cost.counters import Counter
    from .cost.estimate import (
        catalog_refresh_cost,
        private_maintenance_cost,
        shared_maintenance_cost,
    )
    from .runtime.updates import FactoredUpdate

    try:
        programs = [_load_program(path) for path in args.files]
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename}", file=sys.stderr)
        return 2
    except SyntaxErrorWithPosition as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.updates < 1 or args.tenants < 1:
        print("error: need --updates >= 1 and --tenants >= 1",
              file=sys.stderr)
        return 2
    try:
        dims = _parse_dims(args.dims)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rng = np.random.default_rng(args.seed)
    counter = Counter()
    catalog = ViewCatalog(
        memory_budget=args.memory_budget,
        strategy="REEVAL" if args.plan == "reeval" else "INCR",
        mode=args.mode, backend=args.backend, rank=args.rank,
        counter=counter)
    tenant_programs = [p for _ in range(args.tenants) for p in programs]

    start = time.perf_counter()
    known: dict[str, bool] = {}
    try:
        for program in tenant_programs:
            fresh = {}
            for sym in program.inputs:
                if sym.name not in known:
                    fresh[sym.name] = _generate_input(
                        sym, dims, args.density, rng)
                    known[sym.name] = True
            catalog.open(program, fresh, dims=dims)
    except (CatalogError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    setup_seconds = time.perf_counter() - start

    target = args.target or tenant_programs[0].input_names[0]
    value = None
    try:
        value = catalog.read(target)
    except KeyError:
        print(f"error: no catalog input named {target!r}", file=sys.stderr)
        return 2
    n_rows, n_cols = value.shape
    counter.reset()
    start = time.perf_counter()
    for u, v in _update_stream(rng, n_rows, n_cols, args.updates,
                               args.rank, args.scale):
        catalog.apply_update(FactoredUpdate(target, u, v))
    catalog.flush()
    maintain_seconds = time.perf_counter() - start

    stats = catalog.stats
    tenant_views = stats.registered_views
    refresh = catalog_refresh_cost(n_rows, n_cols, args.rank)
    est_shared = shared_maintenance_cost(
        catalog.distinct_nodes, tenant_views, refresh)
    est_private = private_maintenance_cost(tenant_views, refresh)
    if args.json:
        print(json.dumps({
            "files": list(args.files),
            "tenants": len(tenant_programs),
            "tenant_views": tenant_views,
            "distinct_nodes": catalog.distinct_nodes,
            "stats": stats.as_dict(),
            "memory_bytes": catalog.memory_bytes(),
            "memory_budget": args.memory_budget,
            "updates": args.updates,
            "setup_seconds": setup_seconds,
            "maintain_seconds": maintain_seconds,
            "total_flops": counter.total_flops,
            "estimated_flops_per_update": {
                "shared": est_shared, "private": est_private,
            },
            "lineage": catalog.lineage(),
        }, indent=2))
        return 0

    print(f"# {len(tenant_programs)} tenants over {', '.join(args.files)}: "
          f"{args.updates} rank-{args.rank} updates to {target!r}")
    print(f"sharing    : {catalog.distinct_nodes} distinct nodes maintain "
          f"{tenant_views} tenant views "
          f"({stats.shared_hits} shared hits)")
    print(f"refreshes  : {stats.node_refreshes} node refreshes, "
          f"{stats.demand_reads} on-demand reads, "
          f"{stats.evictions} evictions / {stats.readmissions} re-admissions")
    budget = ("unbounded" if args.memory_budget is None
              else f"{args.memory_budget:,} bytes")
    print(f"memory     : {catalog.memory_bytes():,} bytes admitted "
          f"(budget {budget})")
    print(f"est. FLOPs : {est_shared:,.0f}/update shared vs "
          f"{est_private:,.0f}/update private "
          f"({est_private / max(est_shared, 1.0):.1f}x)")
    print(f"setup      : {setup_seconds * 1e3:10.2f} ms")
    print(f"maintenance: {maintain_seconds * 1e3:10.2f} ms   "
          f"({counter.total_flops:,} FLOPs)")
    print("lineage DAG:")
    for rec in catalog.lineage():
        status = "admitted" if rec["admitted"] else "evicted"
        deps = ", ".join(rec["deps"]) or "-"
        print(f"  {rec['name']:<6} {rec['expr']:<40} "
              f"[{status}, {rec['tenants']} tenants, deps: {deps}]")
    return 0


def _run_serve(args, program) -> int:
    import numpy as np

    from .runtime.serving import FlushOnReadServer, ViewServer, run_load
    from .runtime.session import open_session
    from .runtime.updates import FactoredUpdate

    try:
        dims = _parse_dims(args.dims)
        inputs = _generate_inputs(program, dims, args.density,
                                  np.random.default_rng(args.seed))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    staleness: int | None
    if str(args.staleness).lower() in ("none", "off"):
        staleness = None
    elif str(args.staleness).isdigit() and int(args.staleness) >= 1:
        staleness = int(args.staleness)
    else:
        print(f"error: --staleness must be a count >= 1 or 'none', "
              f"got {args.staleness!r}", file=sys.stderr)
        return 2
    batch = args.batch
    if batch not in ("auto", "off"):
        if not str(batch).lstrip("-").isdigit() or int(batch) < 1:
            print(f"error: --batch must be auto, off or a width >= 1, "
                  f"got {batch!r}", file=sys.stderr)
            return 2
        batch = int(batch)

    target = program.input_names[0]
    n_rows, n_cols = inputs[target].shape
    session = open_session(
        program, inputs, dims=dims,
        plan=args.plan,
        backend=None if args.backend == "auto" else args.backend,
        mode=None if args.mode == "auto" else args.mode,
        rank=args.rank, batch=batch,
    )
    names = list(program.outputs)
    if args.baseline:
        server = FlushOnReadServer(session, views=names)
    else:
        server = ViewServer(session, views=names, max_staleness=staleness,
                            max_age=args.max_age, max_queue=args.max_queue)

    # A pre-generated update pool keeps the pressure thread's cost in
    # submission, not in RNG work.
    rng = np.random.default_rng(args.seed + 1)
    pool = []
    for _ in range(512):
        u = np.zeros((n_rows, args.rank))
        rows = rng.choice(n_rows, size=args.rank, replace=False)
        u[rows, np.arange(args.rank)] = 1.0
        v = args.scale * rng.standard_normal((n_cols, args.rank))
        pool.append(FactoredUpdate(target, u, v))

    try:
        results = run_load(
            server, lambda i: pool[i % len(pool)], names,
            duration=args.duration, readers=args.readers,
            reader_rate=args.reader_rate,
        )
    finally:
        server.close()

    plan = session.plan
    mode = "flush-on-read baseline" if args.baseline else "snapshot (ViewServer)"
    if args.json:
        print(json.dumps({
            "plan": plan.as_dict(),
            "mode": "baseline" if args.baseline else "snapshot",
            "staleness_bound": staleness if not args.baseline else 0,
            "results": results,
            "server_stats": server.stats.as_dict(),
        }, indent=2))
        return 0
    print(f"# {args.file}: {args.readers} readers x {args.duration:g}s "
          f"under write pressure ({mode})")
    print(f"plan       : {plan.label}")
    print(f"reads      : {results['reads']} "
          f"({results['reads_per_second']:,.0f}/s across "
          f"{args.readers} readers)")
    print(f"read p50   : {results['read_p50_ms']:8.3f} ms")
    print(f"read p99   : {results['read_p99_ms']:8.3f} ms")
    print(f"read max   : {results['read_max_ms']:8.3f} ms")
    print(f"writer     : {results['writer_updates']} updates "
          f"({results['writer_updates_per_second']:,.0f}/s)")
    if not args.baseline:
        bound = "none" if staleness is None else staleness
        print(f"staleness  : max {results['max_staleness_observed']} "
              f"observed (bound {bound}), {results['epochs']} epochs")
    return 0


def _parse_dims(pairs: list[str]) -> dict[str, int]:
    dims: dict[str, int] = {}
    for pair in pairs:
        name, _, size = pair.partition("=")
        if not name or not size or not size.isdigit():
            raise ValueError(f"expected NAME=SIZE, got {pair!r}")
        dims[name] = int(size)
    return dims


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "advise":
        return _run_advise(args)

    if args.command == "calibrate":
        return _run_calibrate(args)

    if args.command == "catalog":
        return _run_catalog(args)

    try:
        program = _load_program(args.file)
    except FileNotFoundError:
        print(f"error: no such file: {args.file}", file=sys.stderr)
        return 2
    except SyntaxErrorWithPosition as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "show":
        print(program)
        return 0

    if args.command == "run":
        return _run_run(args, program)

    if args.command == "serve":
        return _run_serve(args, program)

    if args.materialize_inversions:
        program = materialize_inversions(program)
        print("# after inverse materialization:")
        print("\n".join(f"#   {stmt!r}" for stmt in program.statements))
        print()

    try:
        triggers = compile_program(
            program,
            dynamic_inputs=args.inputs,
            rank=args.rank,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    try:
        dims = _parse_dims(args.dims)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for index, (name, trigger) in enumerate(sorted(triggers.items())):
        if args.optimize:
            trigger = optimize_trigger(trigger)
        if dims:
            try:
                trigger = optimize_trigger_chains(trigger, dims)
            except UnboundDimensionError as exc:
                print(f"error: {exc} (bind it with --dims)", file=sys.stderr)
                return 2
        if index:
            print()
        if args.backend == "python":
            print(generate_python_trigger(trigger))
        elif args.backend == "octave":
            print(generate_octave_trigger(trigger))
        elif args.backend == "spark":
            print(generate_spark_trigger(trigger))
        else:
            print(trigger)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
