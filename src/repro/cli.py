"""Command-line interface: compile matrix programs to update triggers.

Mirrors the paper's compiler workflow (Figure 2) from the shell::

    python -m repro compile program.lvw                 # trigger text
    python -m repro compile program.lvw --backend python
    python -m repro compile program.lvw --backend octave --optimize
    python -m repro compile program.lvw --backend spark
    python -m repro compile program.lvw --input A --rank 2
    python -m repro compile program.lvw --dims n=4096   # chain-order products
    python -m repro show program.lvw                    # parsed program
    python -m repro advise powers --n 10000 --k 16      # Table 2 advisor
    python -m repro advise general --n 30000 --p 1 --k 16

Program files use the frontend language (see ``repro.frontend``)::

    input A(n, n);
    B := A * A;
    C := B * B;
    output C;
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .compiler import (
    UnboundDimensionError,
    compile_program,
    generate_octave_trigger,
    generate_python_trigger,
    generate_spark_trigger,
    optimize_trigger,
    optimize_trigger_chains,
)
from .compiler.transform import materialize_inversions
from .frontend import SyntaxErrorWithPosition, parse_program

BACKENDS = ("trigger", "python", "octave", "spark")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LINVIEW reproduction: compile linear algebra programs "
                    "into incremental update triggers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="parse a program and print it")
    show.add_argument("file", help="program source file")

    comp = sub.add_parser("compile", help="compile a program to triggers")
    comp.add_argument("file", help="program source file")
    comp.add_argument("--backend", choices=BACKENDS, default="trigger",
                      help="output form (default: trigger text)")
    comp.add_argument("--input", dest="inputs", action="append",
                      help="compile a trigger only for this input "
                           "(repeatable; default: all inputs)")
    comp.add_argument("--rank", type=int, default=1,
                      help="width of the incoming update factors (default 1)")
    comp.add_argument("--optimize", action="store_true",
                      help="run the Section 6 optimizer (CSE, copies, DCE)")
    comp.add_argument("--materialize-inversions", action="store_true",
                      help="hoist nested inv(...) into their own views "
                           "(the Example 4.2 restructuring)")
    comp.add_argument("--dims", action="append", default=[],
                      metavar="NAME=SIZE",
                      help="bind a symbolic dimension and re-associate "
                           "every product chain optimally for those sizes "
                           "(repeatable, e.g. --dims n=4096)")

    advise = sub.add_parser(
        "advise",
        help="rank maintenance strategies by the Table 2 cost model",
    )
    advise.add_argument("computation", choices=("powers", "general"),
                        help="'powers' (A^k) or 'general' (T = A T + B)")
    advise.add_argument("--n", type=int, required=True,
                        help="matrix order n")
    advise.add_argument("--k", type=int, required=True,
                        help="iteration count k")
    advise.add_argument("--p", type=int, default=1,
                        help="iterate width p (general form only)")
    advise.add_argument("--gamma", type=float, default=3.0,
                        help="matrix-multiplication exponent (default 3.0)")
    advise.add_argument("--memory-budget", type=float, default=None,
                        help="max view footprint in matrix entries")
    advise.add_argument("--top", type=int, default=5,
                        help="how many configurations to print (default 5)")
    return parser


def _load_program(path: str):
    source = Path(path).read_text()
    return parse_program(source)


def _run_advise(args) -> int:
    from .cost.advisor import recommend_general, recommend_powers, speedup_estimate

    try:
        if args.computation == "powers":
            ranked = recommend_powers(args.n, args.k, gamma=args.gamma,
                                      memory_budget=args.memory_budget)
            header = f"A^{args.k}, n = {args.n}"
        else:
            ranked = recommend_general(args.n, args.p, args.k,
                                       gamma=args.gamma,
                                       memory_budget=args.memory_budget)
            header = f"T = A T + B, n = {args.n}, p = {args.p}, k = {args.k}"
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"# {header} (predicted operation counts, Table 2)")
    print(f"{'rank':<5} {'config':<14} {'time':>12} {'space':>12}")
    for i, rec in enumerate(ranked[:args.top], start=1):
        print(f"{i:<5} {rec.label:<14} {rec.time:>12.4g} {rec.space:>12.4g}")
    print(f"# predicted gain over best re-evaluation: "
          f"{speedup_estimate(ranked):.1f}x")
    return 0


def _parse_dims(pairs: list[str]) -> dict[str, int]:
    dims: dict[str, int] = {}
    for pair in pairs:
        name, _, size = pair.partition("=")
        if not name or not size or not size.isdigit():
            raise ValueError(f"expected NAME=SIZE, got {pair!r}")
        dims[name] = int(size)
    return dims


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "advise":
        return _run_advise(args)

    try:
        program = _load_program(args.file)
    except FileNotFoundError:
        print(f"error: no such file: {args.file}", file=sys.stderr)
        return 2
    except SyntaxErrorWithPosition as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "show":
        print(program)
        return 0

    if args.materialize_inversions:
        program = materialize_inversions(program)
        print("# after inverse materialization:")
        print("\n".join(f"#   {stmt!r}" for stmt in program.statements))
        print()

    try:
        triggers = compile_program(
            program,
            dynamic_inputs=args.inputs,
            rank=args.rank,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    try:
        dims = _parse_dims(args.dims)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for index, (name, trigger) in enumerate(sorted(triggers.items())):
        if args.optimize:
            trigger = optimize_trigger(trigger)
        if dims:
            try:
                trigger = optimize_trigger_chains(trigger, dims)
            except UnboundDimensionError as exc:
                print(f"error: {exc} (bind it with --dims)", file=sys.stderr)
                return 2
        if index:
            print()
        if args.backend == "python":
            print(generate_python_trigger(trigger))
        elif args.backend == "octave":
            print(generate_octave_trigger(trigger))
        elif args.backend == "spark":
            print(generate_spark_trigger(trigger))
        else:
            print(trigger)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
