"""Delta calculus: derivation, factored representation, incremental inverses.

This package implements Section 4 of the paper:

* :mod:`~repro.delta.rules` — per-operator delta rules (4.1) with
  common-factor extraction (4.3);
* :mod:`~repro.delta.factored` — the ``U @ V'`` factored form (4.2);
* :mod:`~repro.delta.derivation` — ``ComputeDelta`` over whole
  expressions, the workhorse of Algorithm 1;
* :mod:`~repro.delta.multi` — the sequential multi-update rule (4.4);
* :mod:`~repro.delta.inverse` — numeric Sherman–Morrison / Woodbury.
"""

from .batch import (
    BatchCollector,
    BatchedRefresher,
    compact_factors,
    compact_updates,
    stack_updates,
)
from .derivation import UnsupportedDeltaError, compute_delta
from .factored import FactoredDelta
from .inverse import (
    SingularUpdateError,
    sequential_sherman_morrison,
    sherman_morrison_apply,
    sherman_morrison_delta,
    woodbury_apply,
    woodbury_delta,
)
from .multi import compute_delta_sequential
from .qr import QRView, qr_rank_one_update
from .svd import SVDView, svd_rank_one_update
from .rules import (
    delta_add,
    delta_inverse,
    delta_product,
    delta_scalar_mul,
    delta_transpose,
)

__all__ = [
    "BatchCollector",
    "BatchedRefresher",
    "FactoredDelta",
    "QRView",
    "SVDView",
    "SingularUpdateError",
    "UnsupportedDeltaError",
    "compact_factors",
    "compact_updates",
    "compute_delta",
    "compute_delta_sequential",
    "delta_add",
    "delta_inverse",
    "delta_product",
    "delta_scalar_mul",
    "delta_transpose",
    "qr_rank_one_update",
    "sequential_sherman_morrison",
    "sherman_morrison_apply",
    "sherman_morrison_delta",
    "stack_updates",
    "svd_rank_one_update",
    "woodbury_apply",
    "woodbury_delta",
]
