"""The paper's sequential multi-update rule (Section 4.4).

    delta_D(E) := delta_A(E) + delta_{D \\ {A}}(E + delta_A(E))

— one affected matrix is absorbed at a time, the expression is rewritten
with the applied update, and the remaining updates are processed against
the rewritten expression.  The paper notes the order is irrelevant;
``tests/test_delta_multi.py`` verifies both that claim and equivalence
with the simultaneous rule used by :func:`repro.delta.derivation.compute_delta`
(Example 4.5 is the canonical instance).

This formulation assumes delta factors are *constant* (independent of
the matrices being updated), exactly as Section 4.1 assumes of ``dA``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..expr.ast import Expr, MatrixSymbol, add
from ..expr.visitors import substitute_symbol
from .derivation import compute_delta
from .factored import FactoredDelta


def compute_delta_sequential(
    expr: Expr,
    deltas: Mapping[str, FactoredDelta],
    order: Sequence[str] | None = None,
) -> FactoredDelta:
    """Multi-update delta via the paper's one-at-a-time rule.

    ``order`` fixes the sequence in which updates are absorbed (defaults
    to the mapping's order).  The result is value-equal to the
    simultaneous rule but typically *wider* (no cross-monomial factor
    sharing between update groups), which is why the compiler uses the
    simultaneous rule.
    """
    names = list(order) if order is not None else list(deltas)
    if set(names) != set(deltas):
        raise ValueError("order must be a permutation of the updated matrix names")

    remaining = list(names)
    current_expr = expr
    total = FactoredDelta.zero(expr.shape)
    while remaining:
        name = remaining.pop(0)
        single = compute_delta(current_expr, {name: deltas[name]})
        total = total.plus(single)
        # Rewrite E -> E + delta_A(E) by updating the symbol in place.
        symbol = _find_symbol(current_expr, name)
        if symbol is not None and not deltas[name].is_zero:
            updated = add(symbol, deltas[name].to_expr())
            current_expr = substitute_symbol(current_expr, name, updated)
    return total


def _find_symbol(expr: Expr, name: str) -> MatrixSymbol | None:
    """Locate the (unique-by-name) matrix symbol in an expression."""
    from ..expr.visitors import walk

    for node in walk(expr):
        if isinstance(node, MatrixSymbol) and node.name == name:
            return node
    return None
