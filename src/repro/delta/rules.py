"""Delta rules for every operator of the language (Section 4.1).

Each rule takes the *old* subexpressions and their (already derived)
factored deltas and returns the factored delta of the compound node.
The product rule implements the common-factor extraction of Section 4.3,
which is what keeps factor widths from exploding: a product delta always
has exactly the width ``k1 + k2`` of its operand deltas, never ``k1 +
k2 + min(k1, k2)`` as the naive three-monomial form would.

All rules are *total-delta* rules: they are valid when several input
matrices change simultaneously, because for any decomposition
``E1' = E1 + d1``, ``E2' = E2 + d2`` we have exactly

    E1' E2' - E1 E2  =  d1 E2 + E1 d2 + d1 d2

— the same identity the paper derives one update at a time (its
``delta_D`` rule of Section 4.4; equivalence is tested in
``tests/test_delta_multi.py``).
"""

from __future__ import annotations

from ..expr.ast import Expr, Identity, add, inverse, matmul, scalar_mul, transpose
from ..expr.shapes import Shape
from .factored import FactoredDelta


def delta_add(deltas: list[FactoredDelta], signs: list[float], shape: Shape) -> FactoredDelta:
    """Delta of a signed sum: ``d(sum s_i E_i) = sum s_i d(E_i)``."""
    result = FactoredDelta.zero(shape)
    for d, sign in zip(deltas, signs):
        result = result.plus(d if sign == 1.0 else d.scale(sign))
    return result


def delta_scalar_mul(coeff: float, d: FactoredDelta) -> FactoredDelta:
    """Delta of ``coeff * E``: scale the delta."""
    return d.scale(coeff)


def delta_transpose(d: FactoredDelta) -> FactoredDelta:
    """Delta of ``E'``: transpose of the delta (factors swap roles)."""
    return d.transposed()


def delta_product(
    e1: Expr, e2: Expr, d1: FactoredDelta, d2: FactoredDelta
) -> FactoredDelta:
    """Delta of ``E1 @ E2`` with common-factor extraction (Section 4.3).

    The three monomials ``d1 E2 + E1 d2 + d1 d2`` are regrouped by
    shared factors into exactly two stacked monomials::

        d1 E2            ->  U1 @ (E2' V1)'
        (E1 + d1) d2     ->  (E1 U2 + U1 (V1' U2)) @ V2'

    so the result width is ``k1 + k2``.  One-sided cases keep their
    operand's width unchanged.
    """
    shape = Shape(e1.shape.rows, e2.shape.cols)
    if d1.is_zero and d2.is_zero:
        return FactoredDelta.zero(shape)
    if d2.is_zero:
        # d1 @ E2: per-monomial, right factors pick up E2'.
        return d1.right_mul(e2)
    if d1.is_zero:
        # E1 @ d2: per-monomial, left factors pick up E1.
        return d2.left_mul(e1)
    u1, v1 = d1.u_expr, d1.v_expr
    terms: list[tuple[Expr, Expr]] = []
    # First group: d1 @ E2 keeps d1's left blocks as-is.
    for left, right in d1.terms:
        terms.append((left, matmul(transpose(e2), right)))
    # Second group: (E1 + d1) @ d2 folds the cross term into E1@U2.
    for left2, right2 in d2.terms:
        cross = matmul(u1, matmul(transpose(v1), left2))
        terms.append((add(matmul(e1, left2), cross), right2))
    return FactoredDelta(shape, terms)


def delta_inverse(
    e: Expr, d: FactoredDelta, inv_ref: Expr | None = None
) -> FactoredDelta:
    """Delta of ``inv(E)`` for a factored update (Sherman–Morrison–Woodbury).

    With ``dE = U V'`` of width ``k`` and ``W`` a reference to the *old*
    inverse (a materialized view when available, ``inv(E)`` otherwise):

        d(inv(E)) = -(W U) @ inv(I_k + V' W U) @ (W' V)'

    a single monomial of width ``k`` whose evaluation inverts only the
    ``k x k`` capacitance matrix — never the ``n x n`` operand.  For
    ``k = 1`` this is exactly the Sherman–Morrison formula quoted in
    Section 4.1.
    """
    if d.is_zero:
        return FactoredDelta.zero(e.shape)
    w = inv_ref if inv_ref is not None else inverse(e)
    u, v = d.u_expr, d.v_expr
    k = u.shape.cols
    capacitance = add(Identity(k), matmul(transpose(v), w, u))
    left = scalar_mul(-1.0, matmul(w, u, inverse(capacitance)))
    right = matmul(transpose(w), v)
    return FactoredDelta(e.shape, [(left, right)])
