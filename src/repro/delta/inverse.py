"""Numeric incremental inversion: Sherman–Morrison and Woodbury.

These are the runtime counterparts of the symbolic rule in
:func:`repro.delta.rules.delta_inverse`.  They operate directly on NumPy
arrays and are used by the analytics layer (OLS keeps ``W = inv(X'X)``
maintained this way) and by tests that cross-check the symbolic rule.

Both return the delta in factored form ``(P, Q)`` with
``new_inverse = W + P @ Q.T`` so callers can keep propagating low-rank
factors downstream.
"""

from __future__ import annotations

import numpy as np


class SingularUpdateError(ValueError):
    """The update makes the matrix (numerically) singular.

    Raised when the Sherman–Morrison denominator ``1 + v' W u`` or the
    Woodbury capacitance matrix ``I + V' W U`` is not safely invertible.
    Callers should fall back to full re-inversion of the updated matrix.
    """


#: Denominators / pivots smaller than this (relatively) are treated as zero.
SINGULARITY_TOLERANCE = 1e-12


def sherman_morrison_delta(
    w: np.ndarray, u: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Factored delta of ``inv(E)`` for a rank-1 update ``E += u v'``.

    ``w`` is the current inverse ``inv(E)``; ``u``/``v`` are column
    vectors ``(n x 1)``.  Returns ``(p, q)`` with ``d(inv) = p @ q.T``:

        p = -(W u) / (1 + v' W u),     q = W' v

    Cost is ``O(n^2)`` — two matrix-vector products and a scaling.
    """
    u = u.reshape(-1, 1)
    v = v.reshape(-1, 1)
    wu = w @ u
    denominator = 1.0 + float((v.T @ wu)[0, 0])
    if abs(denominator) <= SINGULARITY_TOLERANCE * (1.0 + abs(denominator - 1.0)):
        raise SingularUpdateError(
            f"Sherman-Morrison denominator ~ 0 ({denominator:.3e}); "
            "update makes the matrix singular"
        )
    p = -wu / denominator
    q = w.T @ v
    return p, q


def sherman_morrison_apply(w: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """New inverse after ``E += u v'`` (returns a fresh array)."""
    p, q = sherman_morrison_delta(w, u, v)
    return w + p @ q.T


def woodbury_delta(
    w: np.ndarray, u_block: np.ndarray, v_block: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Factored delta of ``inv(E)`` for a rank-k update ``E += U V'``.

    ``w`` is the current inverse; ``u_block``/``v_block`` are ``(n x k)``.
    Returns ``(P, Q)`` with ``d(inv) = P @ Q.T`` where

        P = -W U inv(I_k + V' W U),     Q = W' V

    Only the ``k x k`` capacitance matrix is inverted; total cost is
    ``O(k n^2 + k^3)``.
    """
    if u_block.ndim == 1:
        u_block = u_block.reshape(-1, 1)
    if v_block.ndim == 1:
        v_block = v_block.reshape(-1, 1)
    k = u_block.shape[1]
    wu = w @ u_block
    capacitance = np.eye(k) + v_block.T @ wu
    # Solve instead of forming the inverse; detect singularity robustly.
    try:
        solved = np.linalg.solve(capacitance.T, wu.T).T
    except np.linalg.LinAlgError as exc:
        raise SingularUpdateError(f"singular capacitance matrix: {exc}") from exc
    cond = np.linalg.cond(capacitance)
    if not np.isfinite(cond) or cond > 1.0 / SINGULARITY_TOLERANCE:
        raise SingularUpdateError(
            f"capacitance matrix ill-conditioned (cond={cond:.3e})"
        )
    p = -solved
    q = w.T @ v_block
    return p, q


def woodbury_apply(
    w: np.ndarray, u_block: np.ndarray, v_block: np.ndarray
) -> np.ndarray:
    """New inverse after ``E += U V'`` (returns a fresh array)."""
    p, q = woodbury_delta(w, u_block, v_block)
    return w + p @ q.T


def sequential_sherman_morrison(
    w: np.ndarray, pairs: list[tuple[np.ndarray, np.ndarray]]
) -> np.ndarray:
    """Apply a sum of rank-1 updates one outer product at a time.

    This is the textbook formulation the paper uses in Example 4.3:
    each ``(u_i, v_i)`` pair is absorbed through Sherman–Morrison against
    the running inverse.  Equivalent to one Woodbury step with the
    stacked blocks (tested), but ``O(k)`` passes instead of one.
    """
    current = w
    for u, v in pairs:
        current = sherman_morrison_apply(current, u, v)
    return current
