"""Rank-1 QR maintenance (Section 4.2 extension hook, third primitive).

Given ``A = Q R`` with ``Q`` orthogonal ``(m x m)`` and ``R`` upper
trapezoidal ``(m x n)``, maintain the factorization under ``A += u v'``
in ``O(m^2 + mn)`` Givens passes (Golub & Van Loan, §12.5.1) instead of
refactorizing in ``O(m n^2)``:

1. rotate ``w = Q'u`` to ``±||w|| e_1`` bottom-up (this makes ``R``
   upper Hessenberg),
2. add the now-first-row-only outer product,
3. re-triangularize top-down.

Both Givens sweeps are accumulated into ``Q``.  The same primitive
keeps least-squares views current: with ``A = QR`` maintained, the OLS
normal equations solve in two triangular passes without ever forming
``X'X`` (better conditioned than the Sherman–Morrison route on nearly
collinear designs).
"""

from __future__ import annotations

import math

import numpy as np


def _givens(a: float, b: float) -> tuple[float, float]:
    """Cosine/sine with ``[c s; -s c] [a; b] = [r; 0]`` (LAPACK dlartg)."""
    if b == 0.0:
        return 1.0, 0.0
    if abs(b) > abs(a):
        t = -a / b
        s = 1.0 / math.sqrt(1.0 + t * t)
        return s * t, s
    t = -b / a
    c = 1.0 / math.sqrt(1.0 + t * t)
    return c, c * t


def _rotate_rows(mat: np.ndarray, i: int, j: int, c: float, s: float) -> None:
    """Apply ``[c -s; s c]`` to rows ``i``/``j`` of ``mat`` in place."""
    ri, rj = mat[i].copy(), mat[j]
    mat[i] = c * ri - s * rj
    mat[j] = s * ri + c * rj


def qr_rank_one_update(
    q: np.ndarray,
    r: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """QR factorization of ``Q R + u v'`` (returns copies).

    ``q`` must be square orthogonal ``(m x m)``; ``r`` upper trapezoidal
    ``(m x n)``.  The result preserves both structure properties to
    numerical precision.
    """
    q = np.array(q, dtype=np.float64)
    r = np.array(r, dtype=np.float64)
    u = np.asarray(u, dtype=np.float64).reshape(-1)
    v = np.asarray(v, dtype=np.float64).reshape(-1)
    m = q.shape[0]
    if q.shape != (m, m):
        raise ValueError(f"Q must be square, got {q.shape}")
    if r.shape[0] != m:
        raise ValueError(f"R rows {r.shape[0]} != Q order {m}")
    if u.shape[0] != m or v.shape[0] != r.shape[1]:
        raise ValueError(
            f"update vectors {u.shape[0]}/{v.shape[0]} do not match {r.shape}"
        )

    w = q.T @ u

    # Sweep 1 (bottom-up): zero w[k] against w[k-1]; R turns Hessenberg.
    for k in range(m - 1, 0, -1):
        c, s = _givens(w[k - 1], w[k])
        wk1 = w[k - 1]
        w[k - 1] = c * wk1 - s * w[k]
        w[k] = 0.0
        _rotate_rows(r, k - 1, k, c, s)
        # Q absorbs the transpose rotation on its columns.
        _rotate_rows(q.T, k - 1, k, c, s)

    # The rank-1 term now lives entirely in the first row of R.
    r[0] += w[0] * v

    # Sweep 2 (top-down): restore the triangular structure.
    for k in range(min(m - 1, r.shape[1])):
        c, s = _givens(r[k, k], r[k + 1, k])
        _rotate_rows(r, k, k + 1, c, s)
        r[k + 1, k] = 0.0
        _rotate_rows(q.T, k, k + 1, c, s)

    return q, r


class QRView:
    """A maintained QR factorization of a dynamically updated matrix.

    ``refresh(u, v)`` absorbs ``A += u v'`` in ``O(m^2 + mn)``;
    :meth:`solve_ls` answers least-squares queries against the *current*
    matrix in ``O(mn + n^2)`` — the numerically robust alternative to
    the Sherman–Morrison-maintained ``inv(X'X)`` view of
    :class:`~repro.analytics.ols.IncrementalOLS`.
    """

    def __init__(self, a: np.ndarray):
        a = np.asarray(a, dtype=np.float64)
        self.q, self.r = np.linalg.qr(a, mode="complete")

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the represented matrix."""
        return (self.q.shape[0], self.r.shape[1])

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Absorb ``A += u v'``."""
        self.q, self.r = qr_rank_one_update(self.q, self.r, u, v)

    def matrix(self) -> np.ndarray:
        """The represented matrix ``Q R`` (densified)."""
        return self.q @ self.r

    def solve_ls(self, b: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``A x ≈ b`` via back substitution."""
        b = np.asarray(b, dtype=np.float64)
        flat = b.ndim == 1
        if flat:
            b = b.reshape(-1, 1)
        n = self.r.shape[1]
        qtb = self.q.T @ b
        try:  # scipy's triangular solve skips the LU factorization.
            from scipy.linalg import solve_triangular
        except ImportError:  # pragma: no cover - exercised without scipy
            x = np.linalg.solve(self.r[:n, :n], qtb[:n])
        else:
            x = solve_triangular(self.r[:n, :n], qtb[:n], lower=False)
        return x.reshape(-1) if flat else x

    def orthogonality_drift(self) -> float:
        """Max deviation of ``Q'Q`` from identity (compounding error)."""
        m = self.q.shape[0]
        return float(np.max(np.abs(self.q.T @ self.q - np.eye(m))))


__all__ = ["QRView", "qr_rank_one_update"]
