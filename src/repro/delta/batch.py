"""Batch-update compaction: ship the rank, not the update count.

Table 4's finding is that the cost of an incremental batch refresh is
driven by the *rank* of the batched delta, not by how many rank-1
updates the batch contains — a Zipf-skewed batch of 1000 row updates
touching 10 distinct rows is a rank-10 change.  Stacking the updates
naively gives factors of width = batch size; this module compresses
them to the numerical rank first:

    U V'  =  Q_u (R_u R_v') Q_v'          (thin QR of each factor)
          =  Q_u (W S Z') Q_v'            (SVD of the small core)
          =  (Q_u W S) (Q_v Z)'           (rank r <= batch size)

at ``O(n m^2 + m^3)`` for an ``m``-update batch — cheap relative to the
``O(n^2)``-per-unit-width propagation it saves downstream.

:class:`BatchCollector` wraps the workflow: accumulate rank-1 updates,
``flush()`` one compacted rank-``r`` refresh into any maintainer whose
``refresh(u, v)`` accepts ``(n x k)`` factors (all the iterative and
distributed maintainers do).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backends import get_backend

#: Singular values below ``tol * s_max`` are treated as rank-deficient.
DEFAULT_RTOL = 1e-12


def stack_updates(
    updates: Sequence[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Naive batching: column-stack the rank-1 pairs (width = count)."""
    if not updates:
        raise ValueError("cannot stack an empty batch")
    lefts, rights = [], []
    for u, v in updates:
        lefts.append(np.asarray(u, dtype=np.float64).reshape(-1, 1))
        rights.append(np.asarray(v, dtype=np.float64).reshape(-1, 1))
    return np.hstack(lefts), np.hstack(rights)


def compact_factors(
    u: np.ndarray,
    v: np.ndarray,
    rtol: float = DEFAULT_RTOL,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Minimal-rank factors ``(L, R)`` with ``L R' == U V'`` numerically.

    The result width is the numerical rank of ``U V'`` (relative
    threshold ``rtol`` on the core's singular values).  A zero update
    compacts to width-0 factors.  The QR/SVD kernel is the backend's
    :meth:`~repro.backends.base.Backend.compact` (factors are thin, so
    every backend runs it dense).
    """
    return get_backend(backend).compact(u, v, rtol)


def compact_updates(
    updates: Sequence[tuple[np.ndarray, np.ndarray]],
    rtol: float = DEFAULT_RTOL,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stack a batch of rank-1 updates and compress to numerical rank."""
    return compact_factors(*stack_updates(updates), rtol=rtol, backend=backend)


class BatchCollector:
    """Accumulates rank-1 updates; flushes one compacted rank-r refresh.

    ``rank_cap`` optionally forces a flush-side truncation (lossy — use
    only when the application tolerates approximate views; the dropped
    mass is returned so callers can monitor it).  ``backend`` supplies
    the compaction kernel and should match the maintainer being flushed
    into so the factors arrive in a form its kernels accept.
    """

    def __init__(
        self,
        rtol: float = DEFAULT_RTOL,
        rank_cap: int | None = None,
        backend=None,
    ):
        if rank_cap is not None and rank_cap < 1:
            raise ValueError("rank_cap must be positive")
        self.rtol = rtol
        self.rank_cap = rank_cap
        self.backend = get_backend(backend)
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, u: np.ndarray, v: np.ndarray) -> None:
        """Queue one rank-1 update ``u v'``."""
        self._pending.append((
            np.asarray(u, dtype=np.float64).reshape(-1, 1),
            np.asarray(v, dtype=np.float64).reshape(-1, 1),
        ))

    def compacted(self) -> tuple[np.ndarray, np.ndarray, float]:
        """The pending batch as ``(L, R, dropped)`` without clearing it.

        ``dropped`` is the spectral norm of the truncated remainder
        (0.0 unless ``rank_cap`` cut actual mass).
        """
        left, right = compact_updates(self._pending, self.rtol,
                                      backend=self.backend)
        dropped = 0.0
        if self.rank_cap is not None and left.shape[1] > self.rank_cap:
            # Factors arrive singular-value ordered from the SVD core.
            norms = np.linalg.norm(left, axis=0) * np.linalg.norm(right, axis=0)
            dropped = float(norms[self.rank_cap])
            left = left[:, :self.rank_cap]
            right = right[:, :self.rank_cap]
        return left, right, dropped

    def flush(self, maintainer) -> tuple[int, int, float]:
        """Refresh ``maintainer`` with the compacted batch and clear it.

        Returns ``(batch_size, compacted_rank, dropped)``.  An empty
        collector is a no-op returning ``(0, 0, 0.0)``.
        """
        if not self._pending:
            return 0, 0, 0.0
        size = len(self._pending)
        left, right, dropped = self.compacted()
        if left.shape[1] > 0:
            maintainer.refresh(left, right)
        self._pending.clear()
        return size, left.shape[1], dropped


__all__ = [
    "BatchCollector",
    "DEFAULT_RTOL",
    "compact_factors",
    "compact_updates",
    "stack_updates",
]
