"""Batch-update compaction: ship the rank, not the update count.

Table 4's finding is that the cost of an incremental batch refresh is
driven by the *rank* of the batched delta, not by how many rank-1
updates the batch contains — a Zipf-skewed batch of 1000 row updates
touching 10 distinct rows is a rank-10 change.  Stacking the updates
naively gives factors of width = batch size; this module compresses
them to the numerical rank first:

    U V'  =  Q_u (R_u R_v') Q_v'          (thin QR of each factor)
          =  Q_u (W S Z') Q_v'            (SVD of the small core)
          =  (Q_u W S) (Q_v Z)'           (rank r <= batch size)

at ``O(n m^2 + m^3)`` for an ``m``-update batch — cheap relative to the
``O(n^2)``-per-unit-width propagation it saves downstream.

:class:`BatchCollector` wraps the workflow: accumulate factored updates
(rank-1 pairs or wider blocks), ``flush()`` one compacted rank-``r``
refresh into any maintainer whose ``refresh(u, v)`` accepts ``(n x k)``
factors (all the iterative and distributed maintainers do).
:class:`BatchedRefresher` layers the flush policy on top for drivers
that hold such a maintainer: refreshes enqueue, reads flush, and a
width/staleness bound keeps the lag bounded (the session counterpart is
:meth:`repro.runtime.session.Session.set_batching`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backends import get_backend

#: Singular values below ``tol * s_max`` are treated as rank-deficient.
DEFAULT_RTOL = 1e-12


def _as_block(factor: np.ndarray) -> np.ndarray:
    """Normalize one factor to a 2-D float64 block (1-D becomes a column)."""
    block = np.asarray(factor, dtype=np.float64)
    if block.ndim == 1:
        block = block.reshape(-1, 1)
    if block.ndim != 2:
        raise ValueError(f"factor blocks must be 1- or 2-D, got ndim={block.ndim}")
    return block


def stack_updates(
    updates: Sequence[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Naive batching: column-stack the factor pairs (width = total rank).

    Each pair may be a rank-1 update (vectors or ``(n x 1)`` columns) or
    an already-factored rank-``k`` block; widths accumulate.  Width-0
    blocks contribute nothing (a zero update is a legal event).
    """
    if not updates:
        raise ValueError("cannot stack an empty batch")
    lefts, rights = [], []
    for u, v in updates:
        u = _as_block(u)
        v = _as_block(v)
        if u.shape[1] != v.shape[1]:
            raise ValueError(
                f"factor widths disagree: {u.shape} vs {v.shape}"
            )
        lefts.append(u)
        rights.append(v)
    return np.hstack(lefts), np.hstack(rights)


def compact_factors(
    u: np.ndarray,
    v: np.ndarray,
    rtol: float = DEFAULT_RTOL,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Minimal-rank factors ``(L, R)`` with ``L R' == U V'`` numerically.

    The result width is the numerical rank of ``U V'`` (relative
    threshold ``rtol`` on the core's singular values).  A zero update
    compacts to width-0 factors.  The QR/SVD kernel is the backend's
    :meth:`~repro.backends.base.Backend.compact` (factors are thin, so
    every backend runs it dense).
    """
    return get_backend(backend).compact(u, v, rtol)


def compact_updates(
    updates: Sequence[tuple[np.ndarray, np.ndarray]],
    rtol: float = DEFAULT_RTOL,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stack a batch of factored updates and compress to numerical rank."""
    return compact_factors(*stack_updates(updates), rtol=rtol, backend=backend)


class BatchCollector:
    """Accumulates factored updates; flushes one compacted rank-r refresh.

    ``rank_cap`` optionally forces a flush-side truncation (lossy — use
    only when the application tolerates approximate views; the dropped
    mass is returned so callers can monitor it).  ``backend`` supplies
    the compaction kernel and should match the maintainer being flushed
    into so the factors arrive in a form its kernels accept.
    """

    def __init__(
        self,
        rtol: float = DEFAULT_RTOL,
        rank_cap: int | None = None,
        backend=None,
    ):
        if rank_cap is not None and rank_cap < 1:
            raise ValueError("rank_cap must be positive")
        self.rtol = rtol
        self.rank_cap = rank_cap
        self.backend = get_backend(backend)
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []

    def __len__(self) -> int:
        """Number of queued update events (not their total width)."""
        return len(self._pending)

    @property
    def pending_width(self) -> int:
        """Total stacked factor width of the queued updates."""
        return sum(u.shape[1] for u, _ in self._pending)

    def add(self, u: np.ndarray, v: np.ndarray) -> None:
        """Queue one factored update ``u v'`` (rank-1 or a wider block)."""
        u = _as_block(u)
        v = _as_block(v)
        if u.shape[1] != v.shape[1]:
            raise ValueError(
                f"factor widths disagree: {u.shape} vs {v.shape}"
            )
        self._pending.append((u, v))

    def clear(self) -> None:
        """Drop all queued updates without applying them."""
        self._pending.clear()

    def compacted(self) -> tuple[np.ndarray, np.ndarray, float]:
        """The pending batch as ``(L, R, dropped)`` without clearing it.

        ``dropped`` is the spectral norm of the truncated remainder
        (0.0 unless ``rank_cap`` cut actual mass).
        """
        left, right = compact_updates(self._pending, self.rtol,
                                      backend=self.backend)
        dropped = 0.0
        if self.rank_cap is not None and left.shape[1] > self.rank_cap:
            # Factors arrive singular-value ordered from the SVD core.
            norms = np.linalg.norm(left, axis=0) * np.linalg.norm(right, axis=0)
            dropped = float(norms[self.rank_cap])
            left = left[:, :self.rank_cap]
            right = right[:, :self.rank_cap]
        return left, right, dropped

    def flush(self, maintainer) -> tuple[int, int, float]:
        """Refresh ``maintainer`` with the compacted batch and clear it.

        Returns ``(batch_size, compacted_rank, dropped)``.  An empty
        collector is a no-op returning ``(0, 0, 0.0)``.  A batch that
        cancels to numerical rank 0 clears without touching the
        maintainer (the zero update is a no-op by definition).
        """
        if not self._pending:
            return 0, 0, 0.0
        size = len(self._pending)
        left, right, dropped = self.compacted()
        if left.shape[1] > 0:
            maintainer.refresh(left, right)
        self._pending.clear()
        return size, left.shape[1], dropped


class BatchedRefresher:
    """Batch-compacting front end for any ``refresh(u, v)`` maintainer.

    Queues incoming factored updates in a :class:`BatchCollector` and
    flushes one compacted refresh when ``width`` updates are pending (or
    ``max_staleness``, whichever is smaller).  Reads stay fresh: any
    attribute access that falls through to the wrapped maintainer
    (``result()``, ``beta``, ``revalidate()``, ...) flushes first, so a
    caller can never observe state that lags the updates it already
    issued.

    ``columnwise=True`` replays the compacted factors one column at a
    time — for maintainers whose ``refresh`` only accepts rank-1 updates
    (the Sherman–Morrison OLS path); compaction still pays because a
    skewed batch of ``m`` updates collapses to ``r <= m`` columns.
    """

    def __init__(
        self,
        maintainer,
        width: int,
        max_staleness: int | None = None,
        rtol: float = DEFAULT_RTOL,
        backend=None,
        columnwise: bool = False,
    ):
        if width < 1:
            raise ValueError("batch width must be positive")
        if max_staleness is not None and max_staleness < 1:
            raise ValueError("max_staleness must be positive (or None)")
        self.maintainer = maintainer
        self.width = int(width)
        self.max_staleness = max_staleness
        self.columnwise = columnwise
        self.collector = BatchCollector(rtol=rtol, backend=backend)
        #: Flush log: (batch_size, compacted_rank, dropped) per flush.
        self.flushes: list[tuple[int, int, float]] = []

    @property
    def _trigger(self) -> int:
        if self.max_staleness is None:
            return self.width
        return min(self.width, self.max_staleness)

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Queue one factored update; flush when the batch is full."""
        self.collector.add(u, v)
        if len(self.collector) >= self._trigger:
            self.flush()

    def flush(self) -> tuple[int, int, float]:
        """Apply all queued updates as one compacted refresh now."""
        if self.columnwise and len(self.collector):
            size = len(self.collector)
            left, right, dropped = self.collector.compacted()
            for col in range(left.shape[1]):
                self.maintainer.refresh(left[:, col:col + 1],
                                        right[:, col:col + 1])
            self.collector.clear()
            report = (size, left.shape[1], dropped)
        else:
            report = self.collector.flush(self.maintainer)
        if report[0]:
            self.flushes.append(report)
        return report

    def __getattr__(self, name: str):
        if name == "maintainer":
            # __init__ hasn't run (copy/pickle): avoid infinite recursion.
            raise AttributeError(name)
        # Reads must never observe pending lag: flush before delegating.
        self.flush()
        return getattr(self.maintainer, name)


__all__ = [
    "BatchCollector",
    "BatchedRefresher",
    "DEFAULT_RTOL",
    "compact_factors",
    "compact_updates",
    "stack_updates",
]
