"""Factored delta representation (Section 4.2 / 4.3).

A delta matrix is kept as a sum of *monomials* ``L_i @ R_i'`` where each
``L_i`` is ``(rows x k_i)`` and each ``R_i`` is ``(cols x k_i)``.  The
equivalent single-product form stacks the blocks:

    delta  =  [L_1 | ... | L_m] @ [R_1 | ... | R_m]'  =  U @ V'

``U``/``V`` have width ``k = sum k_i`` — the *rank bound* of the delta.
Keeping ``k`` small is exactly what confines the avalanche effect: every
downstream use of the delta costs ``O(k n^2)`` instead of ``O(n^gamma)``.

:class:`FactoredDelta` is immutable; the algebra needed by the delta
rules (scaling, negation, transposition, summation) is provided as
methods and never widens the factors more than the paper's Section 4.3
construction does.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..expr.ast import Expr, ZeroMatrix, hstack, matmul, scalar_mul, transpose
from ..expr.shapes import DimLike, Shape, dim_add, dims_equal


class FactoredDelta:
    """An immutable factored delta ``sum_i L_i @ R_i'`` of one matrix.

    ``terms`` is a tuple of ``(left, right)`` expression pairs with
    ``left: (rows x k_i)`` and ``right: (cols x k_i)``.  An empty tuple
    is the zero delta (its shape is still carried explicitly).
    """

    __slots__ = ("shape", "terms")

    def __init__(self, shape: Shape, terms: Iterable[tuple[Expr, Expr]] = ()):
        kept: list[tuple[Expr, Expr]] = []
        for left, right in terms:
            if left.is_zero or right.is_zero:
                continue
            if not dims_equal(left.shape.rows, shape.rows):
                raise ValueError(
                    f"left factor rows {left.shape} do not match delta shape {shape}"
                )
            if not dims_equal(right.shape.rows, shape.cols):
                raise ValueError(
                    f"right factor rows {right.shape} do not match delta shape {shape}"
                )
            if not dims_equal(left.shape.cols, right.shape.cols):
                raise ValueError(
                    f"factor widths disagree: {left.shape} vs {right.shape}"
                )
            kept.append((left, right))
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "terms", tuple(kept))

    def __setattr__(self, name, value):
        raise AttributeError("FactoredDelta is immutable")

    # -- basic queries ---------------------------------------------------
    @property
    def is_zero(self) -> bool:
        """True when this delta is identically zero."""
        return not self.terms

    @property
    def width(self) -> DimLike:
        """Total stacked width ``k`` (the rank bound of the delta)."""
        total: DimLike = 0
        for left, _ in self.terms:
            total = dim_add(total, left.shape.cols)
        return total

    @property
    def u_expr(self) -> Expr:
        """The stacked left factor ``U = [L_1 | ... | L_m]``."""
        if self.is_zero:
            raise ValueError("zero delta has no factors")
        return hstack([left for left, _ in self.terms])

    @property
    def v_expr(self) -> Expr:
        """The stacked right factor ``V = [R_1 | ... | R_m]``."""
        if self.is_zero:
            raise ValueError("zero delta has no factors")
        return hstack([right for _, right in self.terms])

    def to_expr(self) -> Expr:
        """The delta as a single expression ``U @ V'`` (zero matrix if zero)."""
        if self.is_zero:
            return ZeroMatrix(self.shape.rows, self.shape.cols)
        if len(self.terms) == 1:
            left, right = self.terms[0]
            return matmul(left, transpose(right))
        return matmul(self.u_expr, transpose(self.v_expr))

    # -- algebra ---------------------------------------------------------
    @staticmethod
    def zero(shape: Shape) -> "FactoredDelta":
        """The zero delta of a given shape."""
        return FactoredDelta(shape, ())

    @staticmethod
    def rank_one(left: Expr, right: Expr) -> "FactoredDelta":
        """Delta ``left @ right'`` from a single outer-product pair."""
        shape = Shape(left.shape.rows, right.shape.rows)
        return FactoredDelta(shape, [(left, right)])

    def plus(self, other: "FactoredDelta") -> "FactoredDelta":
        """Sum of two deltas: concatenation of monomials (widths add)."""
        if self.shape != other.shape:
            raise ValueError(f"cannot add deltas of shapes {self.shape}, {other.shape}")
        return FactoredDelta(self.shape, self.terms + other.terms)

    def scale(self, coeff: float) -> "FactoredDelta":
        """Delta scaled by a constant (absorbed into the left factors)."""
        if coeff == 0.0:
            return FactoredDelta.zero(self.shape)
        return FactoredDelta(
            self.shape,
            [(scalar_mul(coeff, left), right) for left, right in self.terms],
        )

    def negate(self) -> "FactoredDelta":
        """The additive inverse of this delta."""
        return self.scale(-1.0)

    def transposed(self) -> "FactoredDelta":
        """Delta of the transpose: ``(U V')' = V U'`` (factors swap)."""
        return FactoredDelta(
            self.shape.transposed, [(right, left) for left, right in self.terms]
        )

    def left_mul(self, expr: Expr) -> "FactoredDelta":
        """Delta of ``expr @ X`` given this delta of ``X``: map ``L -> expr@L``."""
        shape = Shape(expr.shape.rows, self.shape.cols)
        return FactoredDelta(
            shape, [(matmul(expr, left), right) for left, right in self.terms]
        )

    def right_mul(self, expr: Expr) -> "FactoredDelta":
        """Delta of ``X @ expr`` given this delta of ``X``: map ``R -> expr'@R``."""
        shape = Shape(self.shape.rows, expr.shape.cols)
        return FactoredDelta(
            shape,
            [(left, matmul(transpose(expr), right)) for left, right in self.terms],
        )

    # -- numeric ---------------------------------------------------------
    def to_dense(
        self,
        env: Mapping[str, np.ndarray],
        dims: Mapping[str, int] | None = None,
        backend=None,
    ) -> np.ndarray:
        """Materialize the delta numerically (for tests and hybrid plans)."""
        from ..runtime.executor import evaluate

        return evaluate(self.to_expr(), env, dims=dims, backend=backend)

    def apply_to(
        self,
        target: np.ndarray,
        env: Mapping[str, np.ndarray],
        dims: Mapping[str, int] | None = None,
        backend=None,
    ):
        """Refresh ``target += U V'`` through the in-place update kernel.

        The view-maintenance form of :meth:`to_dense`: the stacked
        factors are evaluated numerically and applied via the backend's
        :meth:`~repro.backends.base.Backend.add_outer_inplace` — no
        dense ``rows x cols`` delta is ever materialized, dense targets
        accumulate in one BLAS pass, and sparse targets keep their index
        arrays when the update lands on the existing pattern.  A zero
        delta returns ``target`` untouched.  As with every in-place
        kernel, callers must use the returned object.
        """
        from ..backends import get_backend
        from ..runtime.executor import evaluate

        if self.is_zero:
            return target
        be = get_backend(backend)
        u = be.materialize(evaluate(self.u_expr, env, dims=dims, backend=be))
        v = be.materialize(evaluate(self.v_expr, env, dims=dims, backend=be))
        return be.add_outer_inplace(target, u, v)

    def __repr__(self) -> str:
        if self.is_zero:
            return f"FactoredDelta(zero {self.shape})"
        body = " + ".join(f"({left!r}) @ ({right!r})'" for left, right in self.terms)
        return f"FactoredDelta[{self.width}]({body})"
