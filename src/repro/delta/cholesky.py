"""Rank-1 Cholesky factor maintenance (the Section 4.2 extension hook).

Section 4.2 notes that "other work [13, 30] investigates rank-1 updates
in different matrix factorizations, like SVD and Cholesky decomposition.
We can further use these new primitives to enrich our language."  This
module provides that primitive: given ``L`` with ``A = L L'``, maintain
``L`` under ``A +/- v v'`` in ``O(n^2)`` (one pass of Givens-style
eliminations, the classical LINPACK ``dchud``/``dchdd`` scheme) instead
of refactorizing in ``O(n^3)``.

Updates (``+ v v'``) always preserve positive definiteness; downdates
(``- v v'``) may not, in which case :class:`SingularUpdateError` is
raised and the caller should refactorize.
"""

from __future__ import annotations

import math

import numpy as np

from .inverse import SingularUpdateError


def cholesky_update(l_factor: np.ndarray, v: np.ndarray) -> np.ndarray:
    """New lower Cholesky factor of ``L L' + v v'`` (returns a copy)."""
    return _rank_one(l_factor, v, sign=1.0)


def cholesky_downdate(l_factor: np.ndarray, v: np.ndarray) -> np.ndarray:
    """New lower Cholesky factor of ``L L' - v v'`` (returns a copy).

    Raises :class:`SingularUpdateError` when the downdated matrix is not
    positive definite.
    """
    return _rank_one(l_factor, v, sign=-1.0)


def _rank_one(l_factor: np.ndarray, v: np.ndarray, sign: float) -> np.ndarray:
    l_new = np.array(l_factor, dtype=np.float64)
    work = np.array(v, dtype=np.float64).reshape(-1)
    n = l_new.shape[0]
    if l_new.shape != (n, n):
        raise ValueError(f"factor must be square, got {l_new.shape}")
    if work.shape[0] != n:
        raise ValueError(f"vector length {work.shape[0]} != {n}")
    for j in range(n):
        ljj = l_new[j, j]
        squared = ljj * ljj + sign * work[j] * work[j]
        if squared <= 0.0:
            raise SingularUpdateError(
                "downdate makes the matrix indefinite; refactorize instead"
            )
        r = math.sqrt(squared)
        c = r / ljj
        s = work[j] / ljj
        l_new[j, j] = r
        if j + 1 < n:
            l_new[j + 1:, j] = (l_new[j + 1:, j] + sign * s * work[j + 1:]) / c
            work[j + 1:] = c * work[j + 1:] - s * l_new[j + 1:, j]
    return l_new


class CholeskyView:
    """A maintained Cholesky factorization of a Gram-style view.

    Keeps ``L`` with ``A = L L'`` current under rank-1 updates of ``A``
    — the factorization analogue of the Sherman–Morrison-maintained
    inverse view, usable e.g. to maintain the OLS normal equations in
    factored (numerically friendlier) form.
    """

    def __init__(self, a: np.ndarray):
        a = np.asarray(a, dtype=np.float64)
        try:
            self.l_factor = np.linalg.cholesky(a)
        except np.linalg.LinAlgError as exc:
            raise SingularUpdateError(
                f"initial matrix is not positive definite: {exc}"
            ) from exc

    def update(self, v: np.ndarray) -> None:
        """Absorb ``A += v v'``."""
        self.l_factor = cholesky_update(self.l_factor, v)

    def downdate(self, v: np.ndarray) -> None:
        """Absorb ``A -= v v'`` (raises if A would lose definiteness)."""
        self.l_factor = cholesky_downdate(self.l_factor, v)

    def matrix(self) -> np.ndarray:
        """The represented matrix ``L L'``."""
        return self.l_factor @ self.l_factor.T

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` by two triangular solves (``O(n^2)``)."""
        try:  # scipy's triangular solve skips the LU factorization.
            from scipy.linalg import solve_triangular
        except ImportError:  # pragma: no cover - exercised without scipy
            y = np.linalg.solve(self.l_factor, b)
            return np.linalg.solve(self.l_factor.T, y)

        y = solve_triangular(self.l_factor, b, lower=True)
        return solve_triangular(self.l_factor.T, y, lower=False)
