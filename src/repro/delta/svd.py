"""Rank-1 SVD maintenance (the second Section 4.2 extension hook).

Section 4.2 notes that "other work [13, 30] investigates rank-1 updates
in different matrix factorizations, like SVD and Cholesky decomposition.
We can further use these new primitives to enrich our language."  This
module provides the SVD primitive: given a thin SVD ``A = U S V'`` of
rank ``r``, maintain the factorization under ``A += a b'`` in
``O((m + n) r^2 + r^3)`` (Brand's incremental SVD) instead of
recomputing in ``O(m n min(m, n))``.

The update never touches the full matrix: the rank-1 change is rotated
into the ``(r+1) x (r+1)`` core ``K``, a *small* SVD of ``K`` is taken,
and the tall factors are updated by one tall-skinny product each — the
factorization analogue of the Sherman–Morrison inverse maintenance in
:mod:`repro.delta.inverse`.
"""

from __future__ import annotations

import numpy as np

#: Directions with residual norm below this never expand the rank.
DEFAULT_TOL = 1e-10


def svd_rank_one_update(
    u: np.ndarray,
    s: np.ndarray,
    v: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    tol: float = DEFAULT_TOL,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thin SVD of ``U diag(s) V' + a b'`` (Brand's update; returns copies).

    ``u`` is ``(m x r)`` with orthonormal columns, ``s`` the length-``r``
    singular values, ``v`` ``(n x r)`` orthonormal.  ``a``/``b`` are the
    update vectors (column shape or flat).  The returned rank is ``r``,
    ``r + 1``, or smaller if the update annihilates directions (singular
    values below ``tol`` are dropped).
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    s = np.asarray(s, dtype=np.float64).reshape(-1)
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    m, r = u.shape
    n = v.shape[0]
    if v.shape[1] != r or s.shape[0] != r:
        raise ValueError(
            f"inconsistent thin SVD: U {u.shape}, s {s.shape}, V {v.shape}"
        )
    if a.shape[0] != m or b.shape[0] != n:
        raise ValueError(
            f"update vectors {a.shape[0]}/{b.shape[0]} do not match {m}x{n}"
        )

    # Project the update onto the current column/row spaces; the
    # residuals p, q are the (at most one) new directions each side.
    ua = u.T @ a                      # (r,)
    p = a - u @ ua
    ra = float(np.linalg.norm(p))
    vb = v.T @ b                      # (r,)
    q = b - v @ vb
    rb = float(np.linalg.norm(q))

    grow_col = ra > tol
    grow_row = rb > tol

    # Core matrix K = [diag(s) 0; 0 0] + [ua; ra][vb; rb]' restricted to
    # the directions that actually appear.
    ka = np.concatenate([ua, [ra]]) if grow_col else ua
    kb = np.concatenate([vb, [rb]]) if grow_row else vb
    dim_a, dim_b = ka.shape[0], kb.shape[0]
    k_core = np.zeros((dim_a, dim_b))
    k_core[:r, :r] = np.diag(s)
    k_core += np.outer(ka, kb)

    gu, gs, gvt = np.linalg.svd(k_core, full_matrices=False)

    u_basis = np.column_stack([u, p / ra]) if grow_col else u
    v_basis = np.column_stack([v, q / rb]) if grow_row else v
    u_new = u_basis @ gu
    v_new = v_basis @ gvt.T

    keep = gs > tol
    return u_new[:, keep], gs[keep], v_new[:, keep]


class SVDView:
    """A maintained thin SVD of a dynamically updated matrix.

    The factorization analogue of the Sherman–Morrison-maintained
    inverse view: ``refresh(a, b)`` absorbs ``A += a b'`` in
    ``O((m + n) r^2)``.  Useful for maintaining spectral summaries
    (principal subspaces, low-rank approximations) of views the
    compiler already keeps current.
    """

    def __init__(self, a: np.ndarray, rank: int | None = None,
                 tol: float = DEFAULT_TOL):
        a = np.asarray(a, dtype=np.float64)
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        keep = s > tol
        u, s, v = u[:, keep], s[keep], vt[keep].T
        if rank is not None:
            u, s, v = u[:, :rank], s[:rank], v[:, :rank]
        self.u, self.s, self.v = u, s, v
        self.max_rank = rank
        self.tol = tol
        self._shape = a.shape

    @property
    def rank(self) -> int:
        """Current numerical rank of the maintained factorization."""
        return self.s.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the represented matrix."""
        return self._shape

    def refresh(self, a: np.ndarray, b: np.ndarray) -> None:
        """Absorb ``A += a b'``, truncating back to ``max_rank`` if set."""
        u, s, v = svd_rank_one_update(self.u, self.s, self.v, a, b, self.tol)
        if self.max_rank is not None and s.shape[0] > self.max_rank:
            u, s, v = u[:, :self.max_rank], s[:self.max_rank], v[:, :self.max_rank]
        self.u, self.s, self.v = u, s, v

    def matrix(self) -> np.ndarray:
        """The represented matrix ``U diag(s) V'`` (densified)."""
        return (self.u * self.s) @ self.v.T

    def spectral_norm(self) -> float:
        """Largest singular value (0.0 for the empty factorization)."""
        return float(self.s[0]) if self.s.size else 0.0

    def orthogonality_drift(self) -> float:
        """Max deviation of ``U'U`` and ``V'V`` from identity.

        Brand updates compound floating-point error in the bases; track
        this and re-factorize (rebuild the view) when it grows past the
        application's tolerance.
        """
        du = np.max(np.abs(self.u.T @ self.u - np.eye(self.rank)))
        dv = np.max(np.abs(self.v.T @ self.v - np.eye(self.rank)))
        return float(max(du, dv))


__all__ = ["DEFAULT_TOL", "SVDView", "svd_rank_one_update"]
