"""Delta derivation: the ``ComputeDelta`` of Algorithm 1.

:func:`compute_delta` walks an expression and combines the per-operator
rules of :mod:`repro.delta.rules` into the factored delta of the whole
expression, given factored deltas for any subset of the matrices it
references.  The rules are total-delta rules, so simultaneous updates to
several matrices (the situation Algorithm 1 creates as deltas cascade
through statements) need no special casing; the paper's sequential
formulation lives in :mod:`repro.delta.multi` and is tested equivalent.
"""

from __future__ import annotations

from typing import Mapping

from ..expr.ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
    matmul,
)
from .factored import FactoredDelta
from .rules import delta_inverse, delta_product, delta_scalar_mul, delta_transpose


class UnsupportedDeltaError(NotImplementedError):
    """Raised for nodes with no delta rule (block stacks in user programs)."""


def compute_delta(
    expr: Expr,
    deltas: Mapping[str, FactoredDelta],
    inverse_refs: Mapping[Expr, Expr] | None = None,
) -> FactoredDelta:
    """Factored delta of ``expr`` under updates to the named matrices.

    ``deltas`` maps matrix names to their factored updates; matrices not
    in the map are unchanged (their delta is zero, per the last rule of
    Section 4.1).  ``inverse_refs`` optionally maps an ``Inverse`` node
    to an expression for its *old materialized value* — Algorithm 1 uses
    this so the Sherman–Morrison/Woodbury rule can reference the view
    being maintained (``W`` in Example 4.3) instead of re-inverting.

    All expressions inside the returned delta refer to **old** values of
    every matrix; triggers must evaluate deltas before applying updates.
    """
    inverse_refs = inverse_refs or {}

    def rec(node: Expr) -> FactoredDelta:
        if isinstance(node, MatrixSymbol):
            d = deltas.get(node.name)
            return d if d is not None else FactoredDelta.zero(node.shape)
        if isinstance(node, (Identity, ZeroMatrix)):
            return FactoredDelta.zero(node.shape)
        if isinstance(node, Add):
            total = FactoredDelta.zero(node.shape)
            for child in node.children:
                total = total.plus(rec(child))
            return total
        if isinstance(node, ScalarMul):
            return delta_scalar_mul(node.coeff, rec(node.child))
        if isinstance(node, Transpose):
            return delta_transpose(rec(node.child))
        if isinstance(node, MatMul):
            # Fold the n-ary chain pairwise, left to right.
            acc_expr: Expr = node.children[0]
            acc_delta = rec(acc_expr)
            for child in node.children[1:]:
                acc_delta = delta_product(acc_expr, child, acc_delta, rec(child))
                acc_expr = matmul(acc_expr, child)
            return acc_delta
        if isinstance(node, Inverse):
            child_delta = rec(node.child)
            return delta_inverse(node.child, child_delta, inverse_refs.get(node))
        if isinstance(node, (HStack, VStack)):
            raise UnsupportedDeltaError(
                "deltas of block-stack expressions are not defined; stacks only "
                "appear inside trigger programs, which are not re-differentiated"
            )
        raise UnsupportedDeltaError(f"no delta rule for {type(node).__name__}")

    return rec(expr)
