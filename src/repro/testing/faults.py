"""Deterministic fault injection for the fault-tolerance chaos suite.

Production code exposes *seams*: named call sites that invoke
:func:`fire` with a site string, the value flowing through (when one
does), and keyword context.  With no injector armed a seam is a single
``None`` check — effectively free — so the seams stay compiled into the
hot paths permanently instead of living behind a debug build.

Tests arm an injector with :func:`inject_faults`::

    with inject_faults() as faults:
        faults.inject("checkpoint.write", truncate_bytes(0.5), at=1)
        ...  # the second checkpoint write is torn in half

Each injection names a site, an action, the 0-based occurrence index
``at`` which it first fires, and how many ``times`` it repeats — so a
fault lands at a *chosen* update/op index, deterministically, which is
what lets the chaos suite compare a faulted run against a no-fault
oracle.  Actions either mutate the value flowing through the seam
(return a replacement) or raise; raising simulates a crash at that
site.  The injector also counts every seam hit (armed or not), so
tests can assert a fault actually fired instead of silently missing
its site.

Sites currently wired into the library:

========================  ==================================================
``shm.create``            before every shared-memory segment allocation
                          (``nbytes=``); raise ``OSError(ENOSPC)`` via
                          :func:`shm_budget_exhausted` to simulate
                          ``/dev/shm`` exhaustion.
``checkpoint.write``      the serialized checkpoint blob before it reaches
                          the filesystem (``path=``); truncate for a torn
                          write, raise for a crashed writer.
``cluster.roundtrip``     at the start of every coordinator fan-out
                          (``cluster=``, ``label=``); call
                          :func:`kill_worker_at` to kill a worker
                          immediately before a chosen op.
========================  ==================================================
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable

_lock = threading.Lock()
_active: "FaultInjector | None" = None


class InjectedFaultError(RuntimeError):
    """The default injected failure (a typed, recognizable crash)."""


class _Injection:
    __slots__ = ("action", "at", "times", "fired")

    def __init__(self, action: Callable, at: int, times: int):
        self.action = action
        self.at = int(at)
        self.times = int(times)
        self.fired = 0


class FaultInjector:
    """Armed fault plan: site -> (action, occurrence window)."""

    def __init__(self):
        self._injections: dict[str, list[_Injection]] = {}
        #: Seam hits per site (counted whether or not anything fired).
        self.hits: dict[str, int] = {}
        #: ``(site, context)`` log of every injection that fired.
        self.fired: list[tuple[str, dict]] = []

    def inject(self, site: str, action: Callable | None = None,
               at: int = 0, times: int = 1) -> None:
        """Arm ``action`` at occurrences ``at .. at+times-1`` of ``site``.

        ``action(value, **context)`` may return a replacement value
        (``None`` keeps the original) or raise.  ``action=None`` raises
        :class:`InjectedFaultError` — the generic crash.
        """
        if at < 0 or times < 1:
            raise ValueError("need at >= 0 and times >= 1")
        if action is None:
            def action(value, **context):
                raise InjectedFaultError(f"injected fault at {site!r}")
        self._injections.setdefault(site, []).append(
            _Injection(action, at, times))

    def fire(self, site: str, value=None, **context):
        """Seam entry: count the hit, run any armed action, pass value."""
        count = self.hits.get(site, 0)
        self.hits[site] = count + 1
        for injection in self._injections.get(site, ()):
            if (count >= injection.at
                    and injection.fired < injection.times):
                injection.fired += 1
                self.fired.append((site, dict(context)))
                replacement = injection.action(value, **context)
                if replacement is not None:
                    value = replacement
        return value

    def count(self, site: str) -> int:
        """Seam hits observed at ``site`` so far."""
        return self.hits.get(site, 0)


def active_injector() -> FaultInjector | None:
    """The currently armed injector, or ``None`` outside a chaos test."""
    return _active


def fire(site: str, value=None, **context):
    """The seam call production code makes; a no-op when nothing is armed."""
    injector = _active
    if injector is None:
        return value
    return injector.fire(site, value, **context)


@contextmanager
def inject_faults():
    """Arm a fresh :class:`FaultInjector` for the duration of the block.

    Injectors do not nest (one global seam registry keeps the inactive
    path a single ``None`` check); arming a second one raises.
    """
    global _active
    injector = FaultInjector()
    with _lock:
        if _active is not None:
            raise RuntimeError("a FaultInjector is already armed")
        _active = injector
    try:
        yield injector
    finally:
        with _lock:
            _active = None


# -- canned actions -------------------------------------------------------

def truncate_bytes(fraction: float) -> Callable:
    """Action for ``checkpoint.write``: keep only the leading fraction.

    The torn-write simulation: the file that lands on disk is a valid
    prefix of a real checkpoint, exactly what a crash mid-write (or a
    non-atomic writer) leaves behind.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")

    def action(value, **context):
        if value is None:
            raise TypeError("truncate_bytes needs the blob flowing through")
        return bytes(value[: int(len(value) * fraction)])

    return action


def shm_budget_exhausted() -> Callable:
    """Action for ``shm.create``: fail the allocation like a full tmpfs."""
    import errno

    def action(value, **context):
        raise OSError(errno.ENOSPC, "No space left on device (injected)")

    return action


def kill_worker_at(worker: int) -> Callable:
    """Action for ``cluster.roundtrip``: kill ``worker`` before the op.

    The op then fans out to a dead process — the deterministic stand-in
    for a ``kill -9`` landing between two operations.
    """

    def action(value, cluster=None, **context):
        if cluster is None:
            raise TypeError("kill_worker_at needs the cluster= context")
        cluster.kill_worker(worker)

    return action


__all__ = [
    "FaultInjector",
    "InjectedFaultError",
    "active_injector",
    "fire",
    "inject_faults",
    "kill_worker_at",
    "shm_budget_exhausted",
    "truncate_bytes",
]
