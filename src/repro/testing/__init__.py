"""Test harnesses shipped with the library (fault injection, chaos)."""

from .faults import (
    FaultInjector,
    InjectedFaultError,
    active_injector,
    fire,
    inject_faults,
    kill_worker_at,
    shm_budget_exhausted,
    truncate_bytes,
)

__all__ = [
    "FaultInjector",
    "InjectedFaultError",
    "active_injector",
    "fire",
    "inject_faults",
    "kill_worker_at",
    "shm_budget_exhausted",
    "truncate_bytes",
]
