"""repro — a from-scratch reproduction of LINVIEW (SIGMOD 2014).

LINVIEW is a compilation framework for incremental view maintenance of
(iterative) linear algebra programs.  The package layout mirrors the
paper: :mod:`repro.expr` is the matrix-expression language,
:mod:`repro.delta` the delta calculus of Section 4, :mod:`repro.compiler`
Algorithm 1 plus the Section 6 optimizer and code generators,
:mod:`repro.runtime` the single-node evaluator,
:mod:`repro.distributed` the simulated cluster backend,
:mod:`repro.iterative` the Section 3.2/5 iterative models and
evaluation strategies, and :mod:`repro.analytics` the end-user
applications (OLS, linear regression, PageRank).  :mod:`repro.backends`
supplies the pluggable numeric kernels (dense NumPy and sparse CSR)
every evaluation path dispatches through.
"""

__version__ = "1.3.0"
