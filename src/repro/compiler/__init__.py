"""The LINVIEW compiler: programs, Algorithm 1, optimizer, code generators."""

from .chain import (
    UnboundDimensionError,
    chain_cost,
    chain_split,
    left_to_right_cost,
    optimize_chains,
    optimize_trigger_chains,
)
from .codegen import (
    compile_trigger_function,
    generate_octave_trigger,
    generate_python_trigger,
    generate_spark_trigger,
)
from .compile import compile_program
from .optimizer import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    optimize_trigger,
    propagate_copies,
)
from .program import Program, ProgramError, Statement
from .trigger import Assign, Trigger, Update

__all__ = [
    "Assign",
    "UnboundDimensionError",
    "Program",
    "ProgramError",
    "Statement",
    "Trigger",
    "Update",
    "chain_cost",
    "chain_split",
    "compile_program",
    "compile_trigger_function",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "generate_octave_trigger",
    "left_to_right_cost",
    "optimize_chains",
    "optimize_trigger_chains",
    "generate_python_trigger",
    "generate_spark_trigger",
    "optimize_trigger",
    "propagate_copies",
]
