"""Programs and statements (Section 3).

A :class:`Program` is a sequence of assignment statements over declared
input matrices, e.g. the running example of the paper::

    B := A * A
    C := B * B

Each statement materializes a view.  Programs are validated on
construction: targets are unique, every referenced matrix is an input or
an earlier view, and shapes are consistent (the expression layer checks
conformability).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..expr.ast import Expr, MatrixSymbol
from ..expr.printer import to_string
from ..expr.visitors import matrix_symbols


class ProgramError(ValueError):
    """Raised for malformed programs (unknown references, duplicate targets)."""


class Statement:
    """One assignment ``target := expr`` materializing a view."""

    __slots__ = ("target", "expr")

    def __init__(self, target: MatrixSymbol, expr: Expr):
        if target.shape != expr.shape:
            raise ProgramError(
                f"statement shape mismatch: {target.name} is {target.shape} "
                f"but expression is {expr.shape}"
            )
        self.target = target
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.target.name} := {to_string(self.expr)};"


class Program:
    """An ordered list of statements over declared inputs.

    ``inputs`` are the base matrices (candidates for updates);
    ``outputs`` names the views of interest (defaults to the last
    statement's target).  All views — output or auxiliary — are
    materialized and incrementally maintained, as in the paper.
    """

    def __init__(
        self,
        inputs: Sequence[MatrixSymbol],
        statements: Sequence[Statement],
        outputs: Iterable[str] | None = None,
    ):
        self.inputs = tuple(inputs)
        self.statements = tuple(statements)
        if not self.statements:
            raise ProgramError("a program needs at least one statement")

        input_names = [m.name for m in self.inputs]
        if len(set(input_names)) != len(input_names):
            raise ProgramError(f"duplicate input names in {input_names}")

        defined: dict[str, MatrixSymbol] = {m.name: m for m in self.inputs}
        for stmt in self.statements:
            if stmt.target.name in defined:
                raise ProgramError(f"duplicate definition of {stmt.target.name!r}")
            for sym in matrix_symbols(stmt.expr):
                known = defined.get(sym.name)
                if known is None:
                    raise ProgramError(
                        f"statement {stmt!r} references undefined matrix {sym.name!r}"
                    )
                if known.shape != sym.shape:
                    raise ProgramError(
                        f"matrix {sym.name!r} used with shape {sym.shape}, "
                        f"declared {known.shape}"
                    )
            defined[stmt.target.name] = stmt.target

        self.outputs = tuple(outputs) if outputs else (self.statements[-1].target.name,)
        for name in self.outputs:
            if name not in defined:
                raise ProgramError(f"unknown output {name!r}")
            if name in input_names:
                raise ProgramError(f"output {name!r} is an input, not a view")

    @property
    def input_names(self) -> tuple[str, ...]:
        """Names of the declared input matrices."""
        return tuple(m.name for m in self.inputs)

    @property
    def view_names(self) -> tuple[str, ...]:
        """Names of every materialized view, in statement order."""
        return tuple(s.target.name for s in self.statements)

    def input(self, name: str) -> MatrixSymbol:
        """Look up a declared input by name."""
        for m in self.inputs:
            if m.name == name:
                return m
        raise KeyError(f"no input named {name!r}")

    def statement_for(self, view: str) -> Statement:
        """The statement defining a given view."""
        for s in self.statements:
            if s.target.name == view:
                return s
        raise KeyError(f"no view named {view!r}")

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __repr__(self) -> str:
        inputs = ", ".join(f"{m.name}{m.shape}" for m in self.inputs)
        body = "\n".join(f"  {s!r}" for s in self.statements)
        outs = ", ".join(self.outputs)
        return f"Program(inputs: {inputs})\n{body}\n  output: {outs}"
