"""Program-level rewrites applied before Algorithm 1.

:func:`materialize_inversions` performs the restructuring the paper
applies by hand in Example 4.2: every ``inv(E)`` buried inside a larger
expression is hoisted into its own pair of statements

    Z_i := E            (when E is compound)
    W_i := inv(Z_i)

and references are substituted.  After the rewrite, every ``Inverse``
node is the root of a statement, so Algorithm 1's Woodbury rule can
reference the *materialized* old inverse (``W`` in Example 4.3) and no
trigger ever re-inverts an ``n x n`` operand.
"""

from __future__ import annotations

from ..expr.ast import Expr, Inverse, MatrixSymbol, inverse
from ..expr.visitors import substitute, walk
from .program import Program, Statement


def materialize_inversions(program: Program, prefix: str = "inv") -> Program:
    """Hoist nested inversions into dedicated statements.

    Statements whose *entire* right-hand side is already ``inv(...)``
    are left untouched.  Hoisted views are named ``{prefix}{i}`` (and
    ``{prefix}{i}_arg`` for compound operands); the rewritten program
    computes exactly the same outputs.
    """
    taken = set(program.input_names)
    taken.update(s.target.name for s in program.statements)
    counter = 0
    statements: list[Statement] = []

    for stmt in program.statements:
        expr = stmt.expr
        while True:
            node = _nested_inverse(expr)
            if node is None:
                break
            counter += 1
            while f"{prefix}{counter}" in taken:
                counter += 1
            inv_name = f"{prefix}{counter}"
            taken.add(inv_name)

            operand = node.child
            if not isinstance(operand, MatrixSymbol):
                arg_name = f"{inv_name}_arg"
                taken.add(arg_name)
                arg_sym = MatrixSymbol(arg_name, operand.shape.rows,
                                       operand.shape.cols)
                statements.append(Statement(arg_sym, operand))
                operand = arg_sym
            inv_sym = MatrixSymbol(inv_name, node.shape.rows, node.shape.cols)
            statements.append(Statement(inv_sym, inverse(operand)))
            expr = substitute(expr, {node: inv_sym})
        statements.append(Statement(stmt.target, expr))

    return Program(program.inputs, statements, program.outputs)


def _nested_inverse(expr: Expr) -> Inverse | None:
    """An ``Inverse`` node that is not the expression root (or None).

    Innermost-first, so nested inversions hoist inside-out.
    """
    candidates = [
        node for node in walk(expr) if isinstance(node, Inverse) and node is not expr
    ]
    if not candidates:
        return None
    # Prefer a candidate containing no further inverse below it.
    for node in candidates:
        inner = [
            child
            for child in walk(node.child)
            if isinstance(child, Inverse)
        ]
        if not inner:
            return node
    return candidates[-1]
