"""Trigger programs: the output of Algorithm 1.

A :class:`Trigger` handles updates to one input matrix.  It consists of

* *assignment* statements (``:=``) evaluating the factored delta blocks
  (``U_B := [u_A, A*u_A + u_A*(v_A'*u_A)]`` in Example 4.6), and
* *update* statements (``+=``) applying each factored delta to its view.

Execution contract (what makes the deltas correct): **all assignments
are evaluated before any update is applied**, and assignment expressions
refer only to old view values and previously computed temporaries.
"""

from __future__ import annotations

from typing import Sequence

from ..expr.ast import Expr, MatrixSymbol
from ..expr.printer import to_string


class Assign:
    """``name := expr`` — computes a temporary (delta factor block)."""

    __slots__ = ("target", "expr")

    def __init__(self, target: MatrixSymbol, expr: Expr):
        if target.shape != expr.shape:
            raise ValueError(
                f"assign shape mismatch: {target.name} is {target.shape}, "
                f"expr is {expr.shape}"
            )
        self.target = target
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.target.name} := {to_string(self.expr)};"


class Update:
    """``view += expr`` — applies a delta to a materialized view."""

    __slots__ = ("view", "expr")

    def __init__(self, view: MatrixSymbol, expr: Expr):
        if view.shape != expr.shape:
            raise ValueError(
                f"update shape mismatch: {view.name} is {view.shape}, "
                f"expr is {expr.shape}"
            )
        self.view = view
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.view.name} += {to_string(self.expr)};"


class Trigger:
    """The maintenance program for updates to one input matrix.

    ``params`` are the update's factor symbols (``u_A``, ``v_A`` for a
    rank-1 update; ``(n x k)`` blocks for rank-k).  ``assigns`` and
    ``updates`` are executed in order, assigns first.
    """

    def __init__(
        self,
        input_name: str,
        params: Sequence[MatrixSymbol],
        assigns: Sequence[Assign],
        updates: Sequence[Update],
    ):
        self.input_name = input_name
        self.params = tuple(params)
        self.assigns = tuple(assigns)
        self.updates = tuple(updates)

    @property
    def updated_views(self) -> tuple[str, ...]:
        """Names of all matrices this trigger maintains (input included)."""
        return tuple(u.view.name for u in self.updates)

    @property
    def temp_names(self) -> tuple[str, ...]:
        """Names of the temporaries the trigger computes."""
        return tuple(a.target.name for a in self.assigns)

    def __repr__(self) -> str:
        params = ", ".join(p.name for p in self.params)
        lines = [f"ON UPDATE {self.input_name} BY ({params}):"]
        lines.extend(f"  {a!r}" for a in self.assigns)
        lines.extend(f"  {u!r}" for u in self.updates)
        return "\n".join(lines)
