"""Cost-based evaluation-order selection for product chains (Section 5.1).

The paper observes that "the optimum evaluation order for this
expression depends on the size of X and Y" — e.g. in the OLS delta
``dbeta* = R S' X' Y`` the product must associate right-to-left when
``Y`` is a vector and left-to-right when ``p`` is large.  The delta
rules already *structurally* encode cheap orders for the factored forms
they create (Section 4.2); this pass handles everything else: given
concrete dimension bindings, it re-associates every maximal product
chain in an expression by the classic matrix-chain dynamic program, so
generated triggers evaluate each product in the provably FLOP-minimal
order.

Re-association preserves semantics exactly (matrix multiplication is
associative); floating-point results may differ at rounding level, as
with any BLAS reordering.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..cost.flops import matmul_flops
from ..expr.ast import Expr, MatMul
from ..expr.shapes import DimLike, DimSum, NamedDim
from ..expr.visitors import rebuild


class UnboundDimensionError(ValueError):
    """A symbolic dimension had no binding when a chain was costed."""


def resolve(dim: DimLike, binding: Mapping[str, int]) -> int:
    """Resolve a possibly-symbolic dimension against ``binding``."""
    if isinstance(dim, bool):
        raise UnboundDimensionError("bool is not a dimension")
    if isinstance(dim, int):
        return dim
    if isinstance(dim, NamedDim):
        try:
            return binding[dim.name]
        except KeyError:
            raise UnboundDimensionError(f"unbound dimension {dim.name!r}") from None
    if isinstance(dim, DimSum):
        return sum(resolve(a, binding) for a in dim.atoms) + dim.const
    raise UnboundDimensionError(f"cannot resolve dimension {dim!r}")


def chain_split(dims: Sequence[int]) -> tuple[int, list[list[int]]]:
    """Optimal matrix-chain parenthesization (classic O(f^3) DP).

    ``dims`` holds the ``f + 1`` boundary dimensions of an ``f``-factor
    chain (factor ``i`` is ``dims[i] x dims[i+1]``).  Returns the
    minimal FLOP count and the split table ``s`` where ``s[i][j]`` is
    the last split point of the optimal order for factors ``i..j``.
    """
    f = len(dims) - 1
    if f < 1:
        raise ValueError("chain needs at least one factor")
    cost = [[0] * f for _ in range(f)]
    split = [[0] * f for _ in range(f)]
    for length in range(2, f + 1):
        for i in range(f - length + 1):
            j = i + length - 1
            best, best_k = None, i
            for k in range(i, j):
                c = (
                    cost[i][k]
                    + cost[k + 1][j]
                    + matmul_flops(dims[i], dims[k + 1], dims[j + 1])
                )
                if best is None or c < best:
                    best, best_k = c, k
            cost[i][j] = best
            split[i][j] = best_k
    return cost[0][f - 1], split


def left_to_right_cost(dims: Sequence[int]) -> int:
    """FLOPs of the naive left-to-right association (the comparison base)."""
    total = 0
    rows = dims[0]
    for i in range(1, len(dims) - 1):
        total += matmul_flops(rows, dims[i], dims[i + 1])
    return total


def chain_factors(expr: Expr) -> list[Expr]:
    """The maximal factor list of a product tree (nested MatMuls flattened).

    Non-product nodes (symbols, transposes, sums, stacks, …) are atomic
    factors; their *internal* chains are handled by the recursive
    rewrite in :func:`optimize_chains`.
    """
    if not isinstance(expr, MatMul):
        return [expr]
    factors: list[Expr] = []
    for child in expr.children:
        factors.extend(chain_factors(child))
    return factors


def optimal_product(factors: Sequence[Expr], binding: Mapping[str, int]) -> Expr:
    """Rebuild a product over ``factors`` in the DP-optimal association."""
    factors = list(factors)
    if len(factors) == 1:
        return factors[0]
    dims = [resolve(factors[0].shape.rows, binding)]
    dims.extend(resolve(f.shape.cols, binding) for f in factors)
    _, split = chain_split(dims)

    def build(i: int, j: int) -> Expr:
        if i == j:
            return factors[i]
        k = split[i][j]
        return MatMul([build(i, k), build(k + 1, j)])

    return build(0, len(factors) - 1)


def optimize_chains(expr: Expr, binding: Mapping[str, int]) -> Expr:
    """Re-associate every maximal product chain of ``expr`` optimally.

    Children of atomic factors are rewritten first (bottom-up), so a
    chain inside a transpose or a stacked block is optimized too.
    Raises :class:`UnboundDimensionError` if a chain mentions a
    dimension absent from ``binding``.
    """
    if isinstance(expr, MatMul):
        factors = [optimize_chains(f, binding) for f in chain_factors(expr)]
        return optimal_product(factors, binding)
    if not expr.children:
        return expr
    new_children = tuple(optimize_chains(c, binding) for c in expr.children)
    if new_children == expr.children:
        return expr
    return rebuild(expr, new_children)


def chain_cost(expr: Expr, binding: Mapping[str, int]) -> int:
    """FLOPs to evaluate ``expr`` *as associated* (products only).

    Only multiplication cost is counted — the quantity the DP
    minimizes; additions/transposes are association-invariant.
    """
    if isinstance(expr, MatMul):
        total = 0
        for child in expr.children:
            total += chain_cost(child, binding)
        rows = resolve(expr.children[0].shape.rows, binding)
        for left, right in zip(expr.children, expr.children[1:]):
            mid = resolve(left.shape.cols, binding)
            cols = resolve(right.shape.cols, binding)
            total += matmul_flops(rows, mid, cols)
            # n-ary products evaluate left to right: the accumulated
            # prefix keeps `rows` rows and takes `cols` columns.
        return total
    return sum(chain_cost(c, binding) for c in expr.children)


def optimize_trigger_chains(trigger, binding: Mapping[str, int]):
    """Apply :func:`optimize_chains` to every statement of a trigger."""
    from .trigger import Assign, Trigger, Update

    assigns = [Assign(a.target, optimize_chains(a.expr, binding))
               for a in trigger.assigns]
    updates = [Update(u.view, optimize_chains(u.expr, binding))
               for u in trigger.updates]
    return Trigger(trigger.input_name, trigger.params, assigns, updates)


__all__ = [
    "UnboundDimensionError",
    "chain_cost",
    "chain_factors",
    "chain_split",
    "left_to_right_cost",
    "optimal_product",
    "optimize_chains",
    "optimize_trigger_chains",
    "resolve",
]
