"""Octave/MATLAB code generation for trigger programs.

The paper's single-node backend emits Octave programs; this generator
produces the same trigger text (Example 4.6's shape) so the compiler
remains demonstrably multi-backend.  The output is plain ``.m`` source —
we do not execute Octave in this reproduction (the NumPy backend plays
that role; see DESIGN.md), but the text is snapshot-tested against the
paper's published trigger.
"""

from __future__ import annotations

from ...expr.ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)
from ...expr.shapes import DimLike, DimSum, NamedDim
from ..trigger import Trigger
from .python_gen import _referenced_views

_PREC_ADD = 1
_PREC_MUL = 2
_PREC_POSTFIX = 3
_PREC_ATOM = 4


def _emit_dim(dim: DimLike) -> str:
    if isinstance(dim, int):
        return str(dim)
    if isinstance(dim, NamedDim):
        return dim.name
    if isinstance(dim, DimSum):
        parts = [a.name for a in dim.atoms]
        if dim.const:
            parts.append(str(dim.const))
        return " + ".join(parts)
    raise TypeError(f"cannot emit dimension {dim!r}")


def _paren(text: str, prec: int, parent: int) -> str:
    return f"({text})" if prec < parent else text


def emit_octave(expr: Expr) -> str:
    """Octave source text for an expression."""
    text, _ = _emit(expr)
    return text


def _emit(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, MatrixSymbol):
        return expr.name, _PREC_ATOM
    if isinstance(expr, Identity):
        return f"eye({_emit_dim(expr.shape.rows)})", _PREC_ATOM
    if isinstance(expr, ZeroMatrix):
        rows, cols = _emit_dim(expr.shape.rows), _emit_dim(expr.shape.cols)
        return f"zeros({rows}, {cols})", _PREC_ATOM
    if isinstance(expr, Add):
        parts = []
        for i, term in enumerate(expr.children):
            if isinstance(term, ScalarMul) and term.coeff == -1.0:
                inner, prec = _emit(term.child)
                parts.append(f" - {_paren(inner, prec, _PREC_ADD + 1)}")
            else:
                inner, prec = _emit(term)
                joined = _paren(inner, prec, _PREC_ADD)
                parts.append(joined if i == 0 else f" + {joined}")
        return "".join(parts), _PREC_ADD
    if isinstance(expr, MatMul):
        rendered = []
        for position, factor in enumerate(expr.children):
            inner, prec = _emit(factor)
            parent = _PREC_MUL if position == 0 else _PREC_MUL + 1
            rendered.append(_paren(inner, prec, parent))
        return "*".join(rendered), _PREC_MUL
    if isinstance(expr, ScalarMul):
        inner, prec = _emit(expr.child)
        body = _paren(inner, prec, _PREC_MUL + 1)
        if expr.coeff == -1.0:
            return f"-{body}", _PREC_MUL
        return f"{expr.coeff:g}*{body}", _PREC_MUL
    if isinstance(expr, Transpose):
        inner, prec = _emit(expr.child)
        return f"{_paren(inner, prec, _PREC_POSTFIX)}'", _PREC_POSTFIX
    if isinstance(expr, Inverse):
        inner, _ = _emit(expr.child)
        return f"inv({inner})", _PREC_ATOM
    if isinstance(expr, HStack):
        return "[" + ", ".join(emit_octave(b) for b in expr.children) + "]", _PREC_ATOM
    if isinstance(expr, VStack):
        return "[" + "; ".join(emit_octave(b) for b in expr.children) + "]", _PREC_ATOM
    raise TypeError(f"cannot emit node {type(expr).__name__}")


def generate_octave_trigger(trigger: Trigger, function_name: str | None = None) -> str:
    """Render a trigger as an Octave function (``.m`` source text)."""
    name = function_name or f"on_update_{trigger.input_name}"
    params = ", ".join(p.name for p in trigger.params)
    views = _referenced_views(trigger)
    lines = [
        f"function {name}({params})",
        f"  % Maintain views for a factored update to {trigger.input_name}",
        f"  global {' '.join(views)};",
    ]
    for assign in trigger.assigns:
        lines.append(f"  {assign.target.name} = {emit_octave(assign.expr)};")
    for update in trigger.updates:
        lines.append(f"  {update.view.name} += {emit_octave(update.expr)};")
    lines.append("end")
    return "\n".join(lines) + "\n"
