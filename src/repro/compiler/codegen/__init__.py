"""Code generators: Python/NumPy, Octave, and Spark (Scala) backends."""

from .octave_gen import generate_octave_trigger
from .python_gen import compile_trigger_function, generate_python_trigger
from .spark_gen import generate_spark_trigger

__all__ = [
    "compile_trigger_function",
    "generate_octave_trigger",
    "generate_python_trigger",
    "generate_spark_trigger",
]
