"""Code generators: Python/NumPy (generic + fused), Octave, and Spark."""

from .fused import FusedUnsupported, compile_fused_trigger, generate_fused_trigger
from .octave_gen import generate_octave_trigger
from .python_gen import compile_trigger_function, generate_python_trigger
from .spark_gen import generate_spark_trigger

__all__ = [
    "FusedUnsupported",
    "compile_fused_trigger",
    "compile_trigger_function",
    "generate_fused_trigger",
    "generate_octave_trigger",
    "generate_python_trigger",
    "generate_spark_trigger",
]
