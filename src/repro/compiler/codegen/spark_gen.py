"""Spark (Scala) code generation for trigger programs.

The paper's distributed backend generates "parallel Spark programs
running over a large cluster" (Sections 6 and 7).  This generator emits
the Scala source a Spark deployment would compile: each trigger becomes
a method over ``BlockMatrix`` views with the Section 6 execution
annotations —

* low-rank factors (the trigger parameters and the ``U``/``V`` blocks)
  are **broadcast** to all workers, never shuffled;
* large views stay partitioned on the cluster grid, and products
  against broadcast factors are marked local (no shuffle);
* view updates (``+=``) are in-place block updates.

Like the Octave backend, the emitted text is snapshot-tested rather
than executed — the simulated cluster (:mod:`repro.distributed`) plays
the execution role in this reproduction; see DESIGN.md.
"""

from __future__ import annotations

from ...expr.ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)
from ...expr.shapes import DimLike, DimSum, NamedDim
from ..trigger import Trigger
from .python_gen import _referenced_views


def _emit_dim(dim: DimLike) -> str:
    if isinstance(dim, int):
        return str(dim)
    if isinstance(dim, NamedDim):
        return dim.name
    if isinstance(dim, DimSum):
        parts = [a.name for a in dim.atoms]
        if dim.const:
            parts.append(str(dim.const))
        return " + ".join(parts)
    raise TypeError(f"cannot emit dimension {dim!r}")


def emit_spark(expr: Expr) -> str:
    """Scala/Spark source text for an expression (method-call style).

    The matrix algebra maps onto a ``BlockMatrix``-like API:
    ``multiply``, ``add``, ``subtract``, ``scale``, ``transpose``,
    ``inverse``, ``hstack``/``vstack``.  Method chaining encodes the
    association of the tree, so the factored evaluation order survives
    code generation verbatim.
    """
    if isinstance(expr, MatrixSymbol):
        return expr.name
    if isinstance(expr, Identity):
        return f"BlockMatrix.eye({_emit_dim(expr.shape.rows)})"
    if isinstance(expr, ZeroMatrix):
        rows, cols = _emit_dim(expr.shape.rows), _emit_dim(expr.shape.cols)
        return f"BlockMatrix.zeros({rows}, {cols})"
    if isinstance(expr, Add):
        first, *rest = expr.children
        text = emit_spark(first)
        for term in rest:
            if isinstance(term, ScalarMul) and term.coeff == -1.0:
                text = f"{text}.subtract({emit_spark(term.child)})"
            else:
                text = f"{text}.add({emit_spark(term)})"
        return text
    if isinstance(expr, MatMul):
        text = emit_spark(expr.children[0])
        for factor in expr.children[1:]:
            text = f"{text}.multiply({emit_spark(factor)})"
        return text
    if isinstance(expr, ScalarMul):
        return f"{emit_spark(expr.child)}.scale({expr.coeff:g})"
    if isinstance(expr, Transpose):
        return f"{emit_spark(expr.child)}.transpose"
    if isinstance(expr, Inverse):
        return f"{emit_spark(expr.child)}.inverse"
    if isinstance(expr, HStack):
        blocks = ", ".join(emit_spark(b) for b in expr.children)
        return f"BlockMatrix.hstack({blocks})"
    if isinstance(expr, VStack):
        blocks = ", ".join(emit_spark(b) for b in expr.children)
        return f"BlockMatrix.vstack({blocks})"
    raise TypeError(f"cannot emit node of type {type(expr).__name__}")


def generate_spark_trigger(trigger: Trigger, method_name: str | None = None) -> str:
    """Render a trigger as a Scala method over partitioned views.

    Trigger parameters and derived delta factors are local
    (driver-side) matrices broadcast to the workers; the partitioned
    views are fields of the enclosing class.  Update statements apply
    low-rank corrections block-locally (Section 6's hybrid partitioning
    makes both ``A * dA`` and ``dA * A`` orientations shuffle-free).
    """
    name = method_name or f"onUpdate{trigger.input_name}"
    params = ", ".join(f"{p.name}: LocalMatrix" for p in trigger.params)
    views = _referenced_views(trigger)
    lines = [
        f"def {name}({params}): Unit = {{",
        f"  // Maintain views {{{', '.join(views)}}} for a factored "
        f"update to {trigger.input_name}.",
    ]
    for p in trigger.params:
        lines.append(f"  val bc_{p.name} = sc.broadcast({p.name})")
    for assign in trigger.assigns:
        lines.append(
            f"  val {assign.target.name} = {emit_spark(assign.expr)}"
            "  // broadcast factor, no shuffle"
        )
        lines.append(f"  val bc_{assign.target.name} = "
                     f"sc.broadcast({assign.target.name})")
    for update in trigger.updates:
        lines.append(
            f"  {update.view.name}.blockwiseAdd({emit_spark(update.expr)})"
            "  // local per-block update"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


__all__ = ["emit_spark", "generate_spark_trigger"]
