"""Python code generation for trigger programs.

:func:`generate_python_trigger` renders a trigger as the source of a
plain Python function; :func:`compile_trigger_function` ``exec``-utes it
and hands back the callable.  The generated function mutates a ``views``
dict in place, binding every referenced view to a local *before* any
update is applied, so all delta expressions see old values — the same
contract the interpreter upholds.

Two emission styles share the renderer:

* the classic NumPy style (``A @ B + C``, the default for standalone
  ``generate_python_trigger`` calls) — idiomatic source for humans and
  the ``repro compile`` CLI;
* the backend-dispatched style (``be.add(be.matmul(A, B), C)``), used
  whenever a :class:`~repro.backends.base.Backend` is supplied, so
  codegen-mode sessions execute through pluggable kernels (sparse CSR,
  and eventually GPU) instead of hard-coded ``np.`` ops.

Generated signature::

    def on_update_A(views, u_A, v_A, dims=None): ...
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ...expr.ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)
from ...expr.shapes import DimLike, DimSum, NamedDim
from ...expr.visitors import walk
from ..trigger import Trigger

_PREC_ADD = 1
_PREC_MUL = 2
_PREC_ATOM = 3


def _emit_dim(dim: DimLike) -> str:
    if isinstance(dim, int):
        return str(dim)
    if isinstance(dim, NamedDim):
        return f"dims[{dim.name!r}]"
    if isinstance(dim, DimSum):
        parts = [f"dims[{a.name!r}]" for a in dim.atoms]
        if dim.const:
            parts.append(str(dim.const))
        return " + ".join(parts)
    raise TypeError(f"cannot emit dimension {dim!r}")


def emit_expr(expr: Expr) -> str:
    """NumPy source text for an expression (respects association order)."""
    text, _ = _emit(expr)
    return text


def _paren(text: str, prec: int, parent: int) -> str:
    return f"({text})" if prec < parent else text


def _emit(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, MatrixSymbol):
        return expr.name, _PREC_ATOM
    if isinstance(expr, Identity):
        return f"np.eye({_emit_dim(expr.shape.rows)})", _PREC_ATOM
    if isinstance(expr, ZeroMatrix):
        rows, cols = _emit_dim(expr.shape.rows), _emit_dim(expr.shape.cols)
        return f"np.zeros(({rows}, {cols}))", _PREC_ATOM
    if isinstance(expr, Add):
        parts = []
        for i, term in enumerate(expr.children):
            if isinstance(term, ScalarMul) and term.coeff == -1.0:
                inner, prec = _emit(term.child)
                parts.append(f" - {_paren(inner, prec, _PREC_ADD + 1)}")
            else:
                inner, prec = _emit(term)
                joined = _paren(inner, prec, _PREC_ADD)
                parts.append(joined if i == 0 else f" + {joined}")
        return "".join(parts), _PREC_ADD
    if isinstance(expr, MatMul):
        rendered = []
        for position, factor in enumerate(expr.children):
            inner, prec = _emit(factor)
            # Leading factor may chain without parens (left-association);
            # right-nested groups keep theirs to preserve evaluation order.
            parent = _PREC_MUL if position == 0 else _PREC_MUL + 1
            rendered.append(_paren(inner, prec, parent))
        return " @ ".join(rendered), _PREC_MUL
    if isinstance(expr, ScalarMul):
        inner, prec = _emit(expr.child)
        body = _paren(inner, prec, _PREC_MUL + 1)
        if expr.coeff == -1.0:
            return f"-{body}", _PREC_MUL
        return f"{expr.coeff!r} * {body}", _PREC_MUL
    if isinstance(expr, Transpose):
        inner, prec = _emit(expr.child)
        return f"{_paren(inner, prec, _PREC_ATOM)}.T", _PREC_ATOM
    if isinstance(expr, Inverse):
        inner, _ = _emit(expr.child)
        return f"np.linalg.inv({inner})", _PREC_ATOM
    if isinstance(expr, HStack):
        blocks = ", ".join(emit_expr(b) for b in expr.children)
        return f"np.hstack([{blocks}])", _PREC_ATOM
    if isinstance(expr, VStack):
        blocks = ", ".join(emit_expr(b) for b in expr.children)
        return f"np.vstack([{blocks}])", _PREC_ATOM
    raise TypeError(f"cannot emit node {type(expr).__name__}")


def emit_dispatch_expr(expr: Expr) -> str:
    """Backend-dispatched source text: every op is a ``be.*`` call.

    Association order is preserved structurally — nested calls evaluate
    exactly the grouping the optimizer chose, so the factored-delta cost
    claims hold under any backend.
    """
    if isinstance(expr, MatrixSymbol):
        return expr.name
    if isinstance(expr, Identity):
        return f"be.eye({_emit_dim(expr.shape.rows)})"
    if isinstance(expr, ZeroMatrix):
        rows, cols = _emit_dim(expr.shape.rows), _emit_dim(expr.shape.cols)
        return f"be.zeros({rows}, {cols})"
    if isinstance(expr, Add):
        total = emit_dispatch_expr(expr.children[0])
        for term in expr.children[1:]:
            if isinstance(term, ScalarMul) and term.coeff == -1.0:
                total = f"be.sub({total}, {emit_dispatch_expr(term.child)})"
            else:
                total = f"be.add({total}, {emit_dispatch_expr(term)})"
        return total
    if isinstance(expr, MatMul):
        result = emit_dispatch_expr(expr.children[0])
        for factor in expr.children[1:]:
            result = f"be.matmul({result}, {emit_dispatch_expr(factor)})"
        return result
    if isinstance(expr, ScalarMul):
        return f"be.scale({expr.coeff!r}, {emit_dispatch_expr(expr.child)})"
    if isinstance(expr, Transpose):
        return f"be.transpose({emit_dispatch_expr(expr.child)})"
    if isinstance(expr, Inverse):
        return f"be.inv({emit_dispatch_expr(expr.child)})"
    if isinstance(expr, HStack):
        blocks = ", ".join(emit_dispatch_expr(b) for b in expr.children)
        return f"be.hstack([{blocks}])"
    if isinstance(expr, VStack):
        blocks = ", ".join(emit_dispatch_expr(b) for b in expr.children)
        return f"be.vstack([{blocks}])"
    raise TypeError(f"cannot emit node {type(expr).__name__}")


def outer_operands(expr: Expr) -> "tuple[str, str] | None":
    """Match the canonical factored-delta shape ``U @ V'``.

    Returns the ``(U, V)`` symbol names when ``expr`` is exactly a
    two-factor product of a symbol with a transposed symbol (the form
    Algorithm 1 emits for every update statement), else ``None``.
    Callers use the match to apply updates through the backend's
    ``add_outer`` kernel instead of materializing the delta densely.
    """
    if (
        isinstance(expr, MatMul)
        and len(expr.children) == 2
        and isinstance(expr.children[0], MatrixSymbol)
        and isinstance(expr.children[1], Transpose)
        and isinstance(expr.children[1].child, MatrixSymbol)
    ):
        return expr.children[0].name, expr.children[1].child.name
    return None


def _referenced_views(trigger: Trigger) -> list[str]:
    """View names referenced by the trigger, excluding params and temps."""
    local = {p.name for p in trigger.params} | set(trigger.temp_names)
    names: list[str] = []
    seen: set[str] = set()
    exprs = [a.expr for a in trigger.assigns] + [u.expr for u in trigger.updates]
    for view in trigger.updated_views:
        if view not in seen:
            seen.add(view)
            names.append(view)
    for expr in exprs:
        for node in walk(expr):
            if (
                isinstance(node, MatrixSymbol)
                and node.name not in local
                and node.name not in seen
            ):
                seen.add(node.name)
                names.append(node.name)
    return names


def generate_python_trigger(
    trigger: Trigger,
    function_name: str | None = None,
    dispatch: bool = False,
) -> str:
    """Render a trigger as Python function source text.

    ``dispatch=True`` emits backend-dispatched ``be.*`` calls instead of
    NumPy operators; the compiled function then expects a backend bound
    to the global ``be``.
    """
    name = function_name or f"on_update_{trigger.input_name}"
    params = ", ".join(p.name for p in trigger.params)
    views = _referenced_views(trigger)
    emit = emit_dispatch_expr if dispatch else emit_expr
    lines = [
        f"def {name}(views, {params}, dims=None):",
        f'    """Maintain views for a factored update to {trigger.input_name}."""',
        "    dims = dims or {}",
    ]
    for view in views:
        lines.append(f"    {view} = views[{view!r}]")
    for assign in trigger.assigns:
        lines.append(f"    {assign.target.name} = {emit(assign.expr)}")
    for update in trigger.updates:
        target = update.view.name
        operands = outer_operands(update.expr) if dispatch else None
        if operands is not None:
            # Factored application: no dense delta is ever materialized
            # (copy-on-write keeps handed-out view references stable).
            u_name, v_name = operands
            lines.append(
                f"    views[{target!r}] = "
                f"be.add_outer({target}.copy(), {u_name}, {v_name})"
            )
        elif dispatch:
            lines.append(
                f"    views[{target!r}] = be.add({target}, {emit(update.expr)})"
            )
        else:
            lines.append(
                f"    views[{target!r}] = {target} + {emit(update.expr)}"
            )
    return "\n".join(lines) + "\n"


def compile_trigger_function(
    trigger: Trigger,
    extra_globals: Mapping[str, object] | None = None,
    backend=None,
) -> Callable:
    """Generate, ``exec`` and return the trigger as a Python callable.

    With ``backend`` set (a name or instance), the generated source
    dispatches every operation through that backend — the paper's
    generated-code path running on pluggable kernels.
    """
    dispatch = backend is not None
    source = generate_python_trigger(trigger, dispatch=dispatch)
    namespace: dict[str, object] = {"np": np}
    if dispatch:
        from ...backends import get_backend

        namespace["be"] = get_backend(backend)
    if extra_globals:
        namespace.update(extra_globals)
    exec(compile(source, f"<trigger:{trigger.input_name}>", "exec"), namespace)
    fn = namespace[f"on_update_{trigger.input_name}"]
    fn.__source__ = source  # type: ignore[attr-defined]
    return fn
