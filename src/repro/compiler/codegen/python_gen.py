"""Python/NumPy code generation for trigger programs.

:func:`generate_python_trigger` renders a trigger as the source of a
plain Python function; :func:`compile_trigger_function` ``exec``-utes it
and hands back the callable.  The generated function mutates a ``views``
dict in place, binding every referenced view to a local *before* any
update is applied, so all delta expressions see old values — the same
contract the interpreter upholds.

Generated signature::

    def on_update_A(views, u_A, v_A, dims=None): ...
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ...expr.ast import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)
from ...expr.shapes import DimLike, DimSum, NamedDim
from ...expr.visitors import walk
from ..trigger import Trigger

_PREC_ADD = 1
_PREC_MUL = 2
_PREC_ATOM = 3


def _emit_dim(dim: DimLike) -> str:
    if isinstance(dim, int):
        return str(dim)
    if isinstance(dim, NamedDim):
        return f"dims[{dim.name!r}]"
    if isinstance(dim, DimSum):
        parts = [f"dims[{a.name!r}]" for a in dim.atoms]
        if dim.const:
            parts.append(str(dim.const))
        return " + ".join(parts)
    raise TypeError(f"cannot emit dimension {dim!r}")


def emit_expr(expr: Expr) -> str:
    """NumPy source text for an expression (respects association order)."""
    text, _ = _emit(expr)
    return text


def _paren(text: str, prec: int, parent: int) -> str:
    return f"({text})" if prec < parent else text


def _emit(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, MatrixSymbol):
        return expr.name, _PREC_ATOM
    if isinstance(expr, Identity):
        return f"np.eye({_emit_dim(expr.shape.rows)})", _PREC_ATOM
    if isinstance(expr, ZeroMatrix):
        rows, cols = _emit_dim(expr.shape.rows), _emit_dim(expr.shape.cols)
        return f"np.zeros(({rows}, {cols}))", _PREC_ATOM
    if isinstance(expr, Add):
        parts = []
        for i, term in enumerate(expr.children):
            if isinstance(term, ScalarMul) and term.coeff == -1.0:
                inner, prec = _emit(term.child)
                parts.append(f" - {_paren(inner, prec, _PREC_ADD + 1)}")
            else:
                inner, prec = _emit(term)
                joined = _paren(inner, prec, _PREC_ADD)
                parts.append(joined if i == 0 else f" + {joined}")
        return "".join(parts), _PREC_ADD
    if isinstance(expr, MatMul):
        rendered = []
        for position, factor in enumerate(expr.children):
            inner, prec = _emit(factor)
            # Leading factor may chain without parens (left-association);
            # right-nested groups keep theirs to preserve evaluation order.
            parent = _PREC_MUL if position == 0 else _PREC_MUL + 1
            rendered.append(_paren(inner, prec, parent))
        return " @ ".join(rendered), _PREC_MUL
    if isinstance(expr, ScalarMul):
        inner, prec = _emit(expr.child)
        body = _paren(inner, prec, _PREC_MUL + 1)
        if expr.coeff == -1.0:
            return f"-{body}", _PREC_MUL
        return f"{expr.coeff!r} * {body}", _PREC_MUL
    if isinstance(expr, Transpose):
        inner, prec = _emit(expr.child)
        return f"{_paren(inner, prec, _PREC_ATOM)}.T", _PREC_ATOM
    if isinstance(expr, Inverse):
        inner, _ = _emit(expr.child)
        return f"np.linalg.inv({inner})", _PREC_ATOM
    if isinstance(expr, HStack):
        blocks = ", ".join(emit_expr(b) for b in expr.children)
        return f"np.hstack([{blocks}])", _PREC_ATOM
    if isinstance(expr, VStack):
        blocks = ", ".join(emit_expr(b) for b in expr.children)
        return f"np.vstack([{blocks}])", _PREC_ATOM
    raise TypeError(f"cannot emit node {type(expr).__name__}")


def _referenced_views(trigger: Trigger) -> list[str]:
    """View names referenced by the trigger, excluding params and temps."""
    local = {p.name for p in trigger.params} | set(trigger.temp_names)
    names: list[str] = []
    seen: set[str] = set()
    exprs = [a.expr for a in trigger.assigns] + [u.expr for u in trigger.updates]
    for view in trigger.updated_views:
        if view not in seen:
            seen.add(view)
            names.append(view)
    for expr in exprs:
        for node in walk(expr):
            if (
                isinstance(node, MatrixSymbol)
                and node.name not in local
                and node.name not in seen
            ):
                seen.add(node.name)
                names.append(node.name)
    return names


def generate_python_trigger(trigger: Trigger, function_name: str | None = None) -> str:
    """Render a trigger as Python function source text."""
    name = function_name or f"on_update_{trigger.input_name}"
    params = ", ".join(p.name for p in trigger.params)
    views = _referenced_views(trigger)
    lines = [
        f"def {name}(views, {params}, dims=None):",
        f'    """Maintain views for a factored update to {trigger.input_name}."""',
        "    dims = dims or {}",
    ]
    for view in views:
        lines.append(f"    {view} = views[{view!r}]")
    for assign in trigger.assigns:
        lines.append(f"    {assign.target.name} = {emit_expr(assign.expr)}")
    for update in trigger.updates:
        lines.append(f"    views[{update.view.name!r}] = {update.view.name}"
                     f" + {emit_expr(update.expr)}")
    return "\n".join(lines) + "\n"


def compile_trigger_function(
    trigger: Trigger, extra_globals: Mapping[str, object] | None = None
) -> Callable:
    """Generate, ``exec`` and return the trigger as a Python callable."""
    source = generate_python_trigger(trigger)
    namespace: dict[str, object] = {"np": np}
    if extra_globals:
        namespace.update(extra_globals)
    exec(compile(source, f"<trigger:{trigger.input_name}>", "exec"), namespace)
    fn = namespace[f"on_update_{trigger.input_name}"]
    fn.__source__ = source  # type: ignore[attr-defined]
    return fn
