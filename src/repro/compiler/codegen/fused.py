"""Fused, buffer-reusing trigger specialization (the zero-alloc path).

:mod:`.python_gen` lowers a trigger to *generic* Python: every kernel
allocates its result, every call re-dispatches through the backend, and
shapes are rediscovered per call.  That is the right artifact for
humans and for symbolic dimensions — and the wrong one for the steady
state, where a session fires the same trigger millions of times over
matrices whose shapes never change.  This module is the second, hotter
lowering: given a trigger, a **bound** ``dims`` mapping and a backend,
:func:`generate_fused_trigger` resolves every expression node's shape
to concrete integers at *compile* time and emits a flat function whose
temporaries are **preallocated buffers** leased once from a
:class:`~repro.runtime.workspace.Workspace`:

* every product/sum/scale runs through the backend's ``*_into``
  kernels (``np.matmul(..., out=)``, ufunc ``out=``) into its
  preassigned buffer — no result allocation;
* additions accumulate with ``+=``-style aliasing
  (``add_into(acc, t, acc)``);
* transposes of views and params are hoisted to one locals-binding at
  function top instead of being re-derived inside every expression;
* identity/zero leaves are materialized once at compile time;
* update statements apply through :meth:`add_outer_inplace
  <repro.backends.base.Backend.add_outer_inplace>` — views mutate in
  place (dense) instead of being copied per firing.  All delta
  expressions are still evaluated before any view is touched, so the
  trigger contract (deltas read only old values) survives the loss of
  copy-on-write.

After one warm-up firing the function performs **zero heap
allocation** on the dense backend (``tracemalloc``-verified in
``benchmarks/bench_fused_hotpath.py``); sparse state falls back to
allocation exactly where CSR structure forbids in-place writes.

Triggers containing nodes without an in-place lowering (``Inverse``),
or whose dimensions cannot be resolved from ``dims``, raise
:class:`FusedUnsupported` — callers (``IVMSession``) fall back to the
generic :func:`~.python_gen.compile_trigger_function` path.

Generated signature matches the generic path::

    def on_update_A(views, u_A, v_A, dims=None): ...

with ``fn.__source__`` (the emitted text), ``fn.__rank__`` (the update
width the buffers were sized for — off-width updates must take the
generic path) and ``fn.__workspace__`` attached.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ...expr.ast import (
    Add,
    Expr,
    HStack,
    Identity,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
)
from ...expr.visitors import walk
from ..trigger import Trigger
from .python_gen import _referenced_views, outer_operands


class FusedUnsupported(TypeError):
    """The trigger cannot be lowered to the fused in-place form."""


def _resolve(dim, dims: Mapping[str, int]) -> int:
    """Resolve a DimLike to a concrete int or raise FusedUnsupported."""
    # Local twin of runtime.executor.resolve_dim raising the fallback
    # signal instead of EvaluationError (and avoiding an import cycle).
    if isinstance(dim, bool) or dim is None:
        raise FusedUnsupported(f"cannot resolve dimension {dim!r}")
    if isinstance(dim, int):
        return dim
    name = getattr(dim, "name", None)
    if name is not None:
        try:
            return int(dims[name])
        except KeyError:
            raise FusedUnsupported(f"unbound dimension {name!r}") from None
    atoms = getattr(dim, "atoms", None)
    if atoms is not None:
        return sum(_resolve(a, dims) for a in atoms) + int(dim.const)
    raise FusedUnsupported(f"cannot resolve dimension {dim!r}")


def _copy_into(out: np.ndarray, src) -> np.ndarray:
    """Materialize ``src`` into the buffer ``out`` (dense fast path)."""
    if isinstance(src, np.ndarray):
        np.copyto(out, src)
        return out
    return src.copy()  # sparse fallback: buffers cannot hold CSR


class _Emitter:
    """Accumulates generated lines, buffer specs and compile-time consts."""

    def __init__(self, dims: Mapping[str, int]):
        self.dims = dims
        self.lines: list[str] = []
        #: name -> (rows, cols) of every workspace buffer, in lease order.
        self.buffers: list[tuple[str, int, int]] = []
        #: name -> zero-arg factory run once at compile time.
        self.constants: dict[str, Callable] = {}
        self._locals = 0

    def shape(self, expr: Expr) -> tuple[int, int]:
        return (_resolve(expr.shape.rows, self.dims),
                _resolve(expr.shape.cols, self.dims))

    def buffer(self, rows: int, cols: int) -> str:
        name = f"_b{len(self.buffers)}"
        self.buffers.append((name, int(rows), int(cols)))
        return name

    def local(self) -> str:
        self._locals += 1
        return f"_t{self._locals}"

    def emit(self, line: str) -> None:
        self.lines.append(f"    {line}")

    def constant(self, factory: Callable) -> str:
        name = f"_c{len(self.constants)}"
        self.constants[name] = factory
        return name


def _emit_expr(em: _Emitter, expr: Expr, transposed_views: Mapping[str, str]):
    """Emit statements computing ``expr``; return (fragment, buffer).

    ``fragment`` is the source naming the result (a function local);
    ``buffer`` is the name of the workspace buffer backing it, or
    ``None`` when the fragment merely aliases a view/param/constant.
    Buffer names are *globals* of the generated function (the leased
    arrays bind into its namespace), so results always land in fresh
    locals — assigning to a buffer name would shadow the binding.
    """
    if isinstance(expr, MatrixSymbol):
        return expr.name, None
    if isinstance(expr, Transpose):
        child = expr.child
        if isinstance(child, MatrixSymbol) and child.name in transposed_views:
            return transposed_views[child.name], None
        frag, _ = _emit_expr(em, child, transposed_views)
        return f"{frag}.T", None
    if isinstance(expr, Identity):
        rows, _ = em.shape(expr)
        return em.constant(lambda n=rows: ("eye", n)), None
    if isinstance(expr, ZeroMatrix):
        rows, cols = em.shape(expr)
        return em.constant(lambda r=rows, c=cols: ("zeros", r, c)), None
    if isinstance(expr, MatMul):
        frag, _ = _emit_expr(em, expr.children[0], transposed_views)
        rows = em.shape(expr.children[0])[0]
        for child in expr.children[1:]:
            rhs, _ = _emit_expr(em, child, transposed_views)
            cols = em.shape(child)[1]
            buf = em.buffer(rows, cols)
            out = em.local()
            em.emit(f"{out} = _mm({frag}, {rhs}, {buf})")
            frag = out
        return frag, buf
    if isinstance(expr, Add):
        first = expr.children[0]
        frag, buf = _emit_expr(em, first, transposed_views)
        if buf is None:
            buf = em.buffer(*em.shape(first))
            out = em.local()
            em.emit(f"{out} = _copy({buf}, {frag})")
            frag = out
        for term in expr.children[1:]:
            out = em.local()
            if isinstance(term, ScalarMul) and term.coeff == -1.0:
                rhs, _ = _emit_expr(em, term.child, transposed_views)
                em.emit(f"{out} = _sub({frag}, {rhs}, {buf})")
            else:
                rhs, _ = _emit_expr(em, term, transposed_views)
                em.emit(f"{out} = _add({frag}, {rhs}, {buf})")
            frag = out
        return frag, buf
    if isinstance(expr, ScalarMul):
        frag, _ = _emit_expr(em, expr.child, transposed_views)
        buf = em.buffer(*em.shape(expr))
        out = em.local()
        em.emit(f"{out} = _scale({expr.coeff!r}, {frag}, {buf})")
        return out, buf
    if isinstance(expr, (HStack, VStack)):
        frags = [
            _emit_expr(em, child, transposed_views)[0]
            for child in expr.children
        ]
        buf = em.buffer(*em.shape(expr))
        out = em.local()
        cat = "_hcat" if isinstance(expr, HStack) else "_vcat"
        em.emit(f"{out} = {cat}([{', '.join(frags)}], {buf})")
        return out, buf
    raise FusedUnsupported(
        f"no in-place lowering for node {type(expr).__name__}"
    )


def _hoistable_transposes(trigger: Trigger) -> list[str]:
    """Names whose plain transpose the trigger reads (views and params)."""
    local = set(trigger.temp_names)
    names: list[str] = []
    exprs = [a.expr for a in trigger.assigns] + [u.expr for u in trigger.updates]
    for expr in exprs:
        for node in walk(expr):
            if (
                isinstance(node, Transpose)
                and isinstance(node.child, MatrixSymbol)
                and node.child.name not in local
                and node.child.name not in names
            ):
                names.append(node.child.name)
    return names


def generate_fused_trigger(
    trigger: Trigger,
    dims: Mapping[str, int],
    function_name: str | None = None,
) -> tuple[str, list[tuple[str, int, int]], dict[str, Callable]]:
    """Fused source plus its buffer plan and compile-time constants.

    Returns ``(source, buffers, constants)``: ``buffers`` lists the
    ``(name, rows, cols)`` scratch buffers the function expects bound in
    its globals (lease them from a workspace, in order), ``constants``
    maps names to ``("eye", n)`` / ``("zeros", r, c)`` factory specs.
    """
    name = function_name or f"on_update_{trigger.input_name}"
    params = ", ".join(p.name for p in trigger.params)
    em = _Emitter(dims)
    views = _referenced_views(trigger)

    # Bind every referenced view to a local before anything runs; hoist
    # transposes of stable operands (views and update params) so inner
    # expressions reuse one view object per firing.
    transposed: dict[str, str] = {}
    header = [
        f"def {name}(views, {params}, dims=None):",
        f'    """Fused in-place maintenance for updates to '
        f'{trigger.input_name}."""',
    ]
    for view in views:
        header.append(f"    {view} = views[{view!r}]")
    for sym in _hoistable_transposes(trigger):
        transposed[sym] = f"_T_{sym}"
        header.append(f"    _T_{sym} = {sym}.T")

    # Phase 1: assigns (delta factor blocks), old values only.  A bare
    # alias result (e.g. ``U_B := u_A``) is snapshotted into a buffer:
    # temporaries must never share storage with something a later
    # in-place application could mutate.
    for assign in trigger.assigns:
        frag, buf = _emit_expr(em, assign.expr, transposed)
        if buf is None:
            buf = em.buffer(*em.shape(assign.expr))
            out = em.local()
            em.emit(f"{out} = _copy({buf}, {frag})")
            frag = out
        em.emit(f"{assign.target.name} = {frag}")

    # Phase 2: evaluate every non-factored update delta before any view
    # mutates (in-place application breaks copy-on-write, so the
    # evaluate-all-then-apply-all order now carries the contract alone).
    applies: list[str] = []
    for update in trigger.updates:
        target = update.view.name
        operands = outer_operands(update.expr)
        if operands is not None:
            u_name, v_name = operands
            applies.append(
                f"views[{target!r}] = _outer({target}, {u_name}, {v_name})"
            )
        else:
            frag, _ = _emit_expr(em, update.expr, transposed)
            applies.append(f"views[{target!r}] = _applyadd({target}, {frag})")

    # Phase 3: apply all deltas in place.
    for line in applies:
        em.emit(line)

    source = "\n".join(header + em.lines) + "\n"
    return source, em.buffers, em.constants


def compile_fused_trigger(
    trigger: Trigger,
    dims: Mapping[str, int],
    backend=None,
    workspace=None,
) -> Callable:
    """Compile the fused form of ``trigger`` against concrete ``dims``.

    Scratch buffers are leased from ``workspace`` (one is created when
    ``None``) at *compile* time, in a fresh top-level lease scope —
    triggers compiled against the same workspace share buffers by
    shape, which is safe because trigger firings never interleave.
    Raises :class:`FusedUnsupported` when the trigger contains a node
    with no in-place lowering or a dimension ``dims`` does not bind.
    """
    from ...backends import get_backend
    from ...runtime.workspace import Workspace

    be = get_backend(backend)
    source, buffers, constants = generate_fused_trigger(trigger, dims)
    ws = workspace if workspace is not None else Workspace()

    namespace: dict[str, object] = {
        "np": np,
        "_mm": be.matmul_into,
        "_add": be.add_into,
        "_sub": be.sub_into,
        "_scale": be.scale_into,
        "_hcat": be.hstack_into,
        "_vcat": be.vstack_into,
        "_outer": be.add_outer_inplace,
        "_applyadd": be.add_inplace,
        "_copy": _copy_into,
    }
    ws.begin()
    for buf_name, rows, cols in buffers:
        namespace[buf_name] = ws.lease(rows, cols)
    for const_name, factory in constants.items():
        spec = factory()
        if spec[0] == "eye":
            namespace[const_name] = be.eye(spec[1])
        else:
            namespace[const_name] = be.zeros(spec[1], spec[2])

    exec(compile(source, f"<fused-trigger:{trigger.input_name}>", "exec"),
         namespace)
    fn = namespace[f"on_update_{trigger.input_name}"]
    fn.__source__ = source  # type: ignore[attr-defined]
    fn.__rank__ = _resolve(  # type: ignore[attr-defined]
        trigger.params[0].shape.cols, dims
    )
    fn.__workspace__ = ws  # type: ignore[attr-defined]
    return fn


__all__ = [
    "FusedUnsupported",
    "compile_fused_trigger",
    "generate_fused_trigger",
]
