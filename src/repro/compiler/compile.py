"""Algorithm 1: compile a program into per-input trigger programs.

For each dynamic input ``X`` the compiler seeds the affected-matrix list
``D`` with the update's factored form ``dX = u_X @ v_X'`` and walks the
program statements in order.  For every statement ``A_i := E_i`` it
derives the factored delta ``dA_i = P_i @ Q_i'`` of ``E_i`` under *all*
updates accumulated so far, materializes ``P_i``/``Q_i`` as named
temporaries (``U_Ai`` / ``V_Ai``), registers ``dA_i`` in ``D`` expressed
over those temporaries (so downstream deltas stay compact), and emits
the ``A_i += U_Ai @ V_Ai'`` update.

Statements whose delta is zero produce no trigger statements at all —
views unaffected by ``X`` are never touched.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..delta.derivation import compute_delta
from ..delta.factored import FactoredDelta
from ..expr.ast import Expr, Inverse, MatrixSymbol, matmul, transpose
from ..expr.shapes import DimLike
from .program import Program
from .trigger import Assign, Trigger, Update


def compile_program(
    program: Program,
    dynamic_inputs: Sequence[str] | None = None,
    rank: DimLike = 1,
) -> dict[str, Trigger]:
    """Compile ``program`` into triggers, one per dynamic input.

    ``dynamic_inputs`` restricts which inputs may change (defaults to
    all of them); ``rank`` is the width of the incoming update factors
    (1 for the paper's rank-1 row/column updates; a symbolic dimension
    or a larger int for batched rank-k updates).

    Returns a mapping ``input name -> Trigger``.
    """
    names = list(dynamic_inputs) if dynamic_inputs is not None else list(
        program.input_names
    )
    for name in names:
        program.input(name)  # raises KeyError for unknown inputs
    return {name: _compile_for_input(program, name, rank) for name in names}


def _compile_for_input(program: Program, input_name: str, rank: DimLike) -> Trigger:
    x = program.input(input_name)
    u = MatrixSymbol(f"u_{input_name}", x.shape.rows, rank)
    v = MatrixSymbol(f"v_{input_name}", x.shape.cols, rank)

    deltas: dict[str, FactoredDelta] = {input_name: FactoredDelta.rank_one(u, v)}
    assigns: list[Assign] = []
    updates: list[Update] = [Update(x, matmul(u, transpose(v)))]

    for stmt in program.statements:
        refs = _inverse_refs(stmt.expr, stmt.target)
        delta = compute_delta(stmt.expr, deltas, inverse_refs=refs)
        if delta.is_zero:
            continue
        u_sym = MatrixSymbol(f"U_{stmt.target.name}", stmt.target.shape.rows, delta.width)
        v_sym = MatrixSymbol(f"V_{stmt.target.name}", stmt.target.shape.cols, delta.width)
        assigns.append(Assign(u_sym, delta.u_expr))
        assigns.append(Assign(v_sym, delta.v_expr))
        deltas[stmt.target.name] = FactoredDelta.rank_one(u_sym, v_sym)
        updates.append(Update(stmt.target, matmul(u_sym, transpose(v_sym))))

    return Trigger(input_name, (u, v), assigns, updates)


def _inverse_refs(expr: Expr, target: MatrixSymbol) -> Mapping[Expr, Expr]:
    """Old-inverse references for the Woodbury delta rule.

    When a statement's whole right-hand side is ``inv(Z)``, the view
    being maintained *is* the old inverse, so the rule may reference it
    by name (the ``W`` of Example 4.3) instead of re-inverting ``Z``.
    """
    if isinstance(expr, Inverse):
        return {expr: target}
    return {}
