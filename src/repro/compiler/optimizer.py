"""Trigger optimizer (Section 6).

The paper's optimizer "analyzes intra- and inter-statement dependencies
... and performs transformations, like common subexpression elimination
and copy propagation, to reduce the overall maintenance cost".  This
module implements those passes over :class:`~repro.compiler.trigger.Trigger`
programs:

* :func:`eliminate_common_subexpressions` — hoists repeated non-trivial
  subexpressions into fresh temporaries (largest first, to fixpoint);
* :func:`propagate_copies` — removes ``T := S`` aliases;
* :func:`eliminate_dead_code` — drops temporaries no update needs;
* :func:`optimize_trigger` — the standard pipeline (CSE, copies, DCE).

All passes preserve trigger semantics; ``tests/test_optimizer.py``
checks value-equivalence on random inputs and that CSE strictly reduces
operation counts on the OLS trigger.
"""

from __future__ import annotations

from collections import Counter as TallyCounter

from ..expr.ast import Expr, MatrixSymbol
from ..expr.visitors import count_nodes, substitute, walk
from .trigger import Assign, Trigger, Update


def optimize_trigger(trigger: Trigger, max_rounds: int = 10) -> Trigger:
    """Run the full pipeline (CSE, copy propagation, DCE) to fixpoint."""
    for _ in range(max_rounds):
        before = _signature(trigger)
        trigger = eliminate_common_subexpressions(trigger)
        trigger = propagate_copies(trigger)
        trigger = eliminate_dead_code(trigger)
        if _signature(trigger) == before:
            break
    return trigger


def _signature(trigger: Trigger) -> tuple:
    return (
        tuple((a.target.name, a.expr) for a in trigger.assigns),
        tuple((u.view.name, u.expr) for u in trigger.updates),
    )


def _candidate_subexpressions(trigger: Trigger) -> list[Expr]:
    """Non-leaf subexpressions occurring at least twice, largest first."""
    tally: TallyCounter[Expr] = TallyCounter()
    for expr in _all_expressions(trigger):
        seen_here: set[Expr] = set()
        for node in walk(expr):
            if node.children and node not in seen_here:
                seen_here.add(node)
                tally[node] += 1
        # Count repeats *within* one statement too.
        within: TallyCounter[Expr] = TallyCounter(
            node for node in walk(expr) if node.children
        )
        for node, count in within.items():
            if count > 1:
                tally[node] += count - 1
    repeated = [node for node, count in tally.items() if count >= 2]
    repeated.sort(key=count_nodes, reverse=True)
    return repeated


def _all_expressions(trigger: Trigger) -> list[Expr]:
    return [a.expr for a in trigger.assigns] + [u.expr for u in trigger.updates]


def eliminate_common_subexpressions(trigger: Trigger, prefix: str = "T") -> Trigger:
    """Hoist repeated subexpressions into fresh temporaries.

    Each hoisted expression becomes ``T<i> := <expr>`` placed before the
    first statement that uses it; all occurrences are replaced by the
    temporary.  Runs until no repeated non-leaf subexpression remains.
    """
    assigns = list(trigger.assigns)
    updates = list(trigger.updates)
    existing = {a.target.name for a in assigns} | {u.view.name for u in updates}
    existing.update(p.name for p in trigger.params)
    counter = 0

    for _ in range(100):  # fixpoint bound; each round strictly shrinks work
        current = Trigger(trigger.input_name, trigger.params, assigns, updates)
        candidates = _candidate_subexpressions(current)
        if not candidates:
            break
        target_expr = candidates[0]
        counter += 1
        while f"{prefix}{counter}" in existing:
            counter += 1
        name = f"{prefix}{counter}"
        existing.add(name)
        temp = MatrixSymbol(name, target_expr.shape.rows, target_expr.shape.cols)
        mapping = {target_expr: temp}

        new_assigns: list[Assign] = []
        inserted = False
        for a in assigns:
            replaced = substitute(a.expr, mapping)
            if replaced != a.expr and not inserted:
                new_assigns.append(Assign(temp, target_expr))
                inserted = True
            new_assigns.append(Assign(a.target, replaced))
        new_updates: list[Update] = []
        for u in updates:
            replaced = substitute(u.expr, mapping)
            if replaced != u.expr and not inserted:
                new_assigns.append(Assign(temp, target_expr))
                inserted = True
            new_updates.append(Update(u.view, replaced))
        if not inserted:
            break  # candidate vanished (was itself inside a replacement)
        assigns, updates = new_assigns, new_updates

    return Trigger(trigger.input_name, trigger.params, assigns, updates)


def propagate_copies(trigger: Trigger) -> Trigger:
    """Remove ``T := S`` pure-alias assignments, rewriting later uses."""
    assigns: list[Assign] = []
    mapping: dict[Expr, Expr] = {}
    for a in trigger.assigns:
        expr = substitute(a.expr, mapping) if mapping else a.expr
        if isinstance(expr, MatrixSymbol):
            mapping[a.target] = expr
        else:
            assigns.append(Assign(a.target, expr))
    updates = [
        Update(u.view, substitute(u.expr, mapping) if mapping else u.expr)
        for u in trigger.updates
    ]
    return Trigger(trigger.input_name, trigger.params, assigns, updates)


def eliminate_dead_code(trigger: Trigger) -> Trigger:
    """Drop temporaries that no update (or live temporary) references."""
    live: set[str] = set()
    for u in trigger.updates:
        live.update(s.name for s in _symbols(u.expr))
    kept: list[Assign] = []
    for a in reversed(trigger.assigns):
        if a.target.name in live:
            kept.append(a)
            live.update(s.name for s in _symbols(a.expr))
    kept.reverse()
    return Trigger(trigger.input_name, trigger.params, kept, trigger.updates)


def _symbols(expr: Expr) -> list[MatrixSymbol]:
    return [node for node in walk(expr) if isinstance(node, MatrixSymbol)]
