"""Seeded workload generators (Section 7's datasets, laptop scale).

The paper uses dense random matrices "preconditioned appropriately for
numerical stability".  For iterated computations that means keeping the
spectral radius below 1 (so ``A^k`` neither explodes nor denormalizes);
for inverse-bearing programs it means well-conditioned ``X'X``.  All
generators take an explicit ``numpy.random.Generator`` so every
experiment is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np


def dense_matrix(
    rng: np.random.Generator, rows: int, cols: int, scale: float = 1.0
) -> np.ndarray:
    """Plain Gaussian dense matrix."""
    return scale * rng.standard_normal((rows, cols))


def spectral_scale(
    rng: np.random.Generator,
    a: np.ndarray,
    radius: float = 0.9,
    iterations: int = 20,
) -> np.ndarray:
    """Scale an existing square matrix toward spectral radius ``radius``.

    The spectral norm is estimated with a short power iteration on
    ``A'A`` (exact norms are ``O(n^3)`` and unnecessary here).  An
    all-zero matrix is returned unchanged.
    """
    a = np.asarray(a, dtype=np.float64)
    x = rng.standard_normal((a.shape[0], 1))
    for _ in range(iterations):
        x = a.T @ (a @ x)
        norm = float(np.linalg.norm(x))
        if norm == 0.0:
            return a
        x /= norm
    sigma = float(np.linalg.norm(a @ x))
    if sigma == 0.0:
        return a
    return (radius / sigma) * a


def spectral_normalized(
    rng: np.random.Generator, n: int, radius: float = 0.9
) -> np.ndarray:
    """Random square matrix scaled to spectral radius ``radius``."""
    return spectral_scale(rng, rng.standard_normal((n, n)), radius)


def well_conditioned_design(
    rng: np.random.Generator, m: int, n: int, ridge: float = 0.5
) -> np.ndarray:
    """A design matrix ``X`` with comfortably invertible ``X'X``.

    Gaussian tall matrices are well conditioned with overwhelming
    probability; the ``ridge`` term nudges square cases away from
    singularity (mirroring the paper's preconditioning remark).
    """
    if m < n:
        raise ValueError(f"need m >= n, got m={m}, n={n}")
    x = rng.standard_normal((m, n))
    x[:n, :] += ridge * np.eye(n)
    return x


def regression_data(
    rng: np.random.Generator, m: int, n: int, p: int = 1, noise: float = 0.1
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic linear-regression data ``(X, Y, beta_true)``."""
    x = well_conditioned_design(rng, m, n)
    beta_true = rng.standard_normal((n, p))
    y = x @ beta_true + noise * rng.standard_normal((m, p))
    return x, y, beta_true


def random_adjacency(
    rng: np.random.Generator, n: int, avg_out_degree: float = 4.0
) -> np.ndarray:
    """Random directed-graph adjacency matrix (column = source node).

    Every node keeps at least one out-edge so the transition matrix has
    no dangling columns unless an experiment removes edges later.
    """
    probability = min(avg_out_degree / max(n - 1, 1), 1.0)
    adj = (rng.random((n, n)) < probability).astype(np.float64)
    np.fill_diagonal(adj, 0.0)
    for j in range(n):
        if adj[:, j].sum() == 0:
            target = int(rng.integers(0, n - 1))
            if target >= j:
                target += 1
            adj[target, j] = 1.0
    return adj
