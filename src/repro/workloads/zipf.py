"""Zipf-skewed row-update frequencies (the Table 4 workload).

The paper simulates "a use case in which certain regions of the input
matrix are changed more frequently than the others, and the frequency
of row updates is described using a Zipf distribution".  A batch of
1000 single-row updates is drawn; with a high Zipf factor the batch
hits few *distinct* rows (a low-rank batch), with factor 0 it spreads
uniformly (rank approaching ``min(batch, n)``), which is exactly the
knob that erodes the incremental advantage in Table 4.
"""

from __future__ import annotations

import numpy as np


def zipf_probabilities(n: int, theta: float) -> np.ndarray:
    """Zipf pmf over ranks ``1..n`` with exponent ``theta``.

    ``theta = 0`` degenerates to the uniform distribution.
    """
    if n < 1:
        raise ValueError("need at least one row")
    if theta < 0:
        raise ValueError(f"Zipf factor must be >= 0, got {theta}")
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
    return weights / weights.sum()


def sample_rows(
    rng: np.random.Generator, n: int, count: int, theta: float
) -> np.ndarray:
    """Draw ``count`` row indices with Zipf(theta)-distributed frequency.

    Rank-to-row assignment is a random permutation so the "hot" rows
    land anywhere in the matrix, as in the paper's use case.
    """
    probabilities = zipf_probabilities(n, theta)
    permutation = rng.permutation(n)
    ranks = rng.choice(n, size=count, p=probabilities)
    return permutation[ranks]


def zipf_batch(
    rng: np.random.Generator,
    n_rows: int,
    n_cols: int,
    batch_size: int,
    theta: float,
    scale: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """A batch of ``batch_size`` row updates, merged per distinct row.

    Returns ``(rows, deltas)`` where ``rows`` are the distinct affected
    row indices and ``deltas`` is ``(len(rows) x n_cols)`` — repeated
    hits on one row accumulate, so the batch applies as a rank-
    ``len(rows)`` factored update (see
    :func:`repro.runtime.updates.batch_row_update`).
    """
    hits = sample_rows(rng, n_rows, batch_size, theta)
    distinct, inverse = np.unique(hits, return_inverse=True)
    deltas = np.zeros((distinct.shape[0], n_cols))
    all_changes = scale * rng.standard_normal((batch_size, n_cols))
    np.add.at(deltas, inverse, all_changes)
    return distinct, deltas
