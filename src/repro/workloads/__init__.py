"""Workload generation: matrices, update streams, Zipf batches (Section 7)."""

from .generators import (
    dense_matrix,
    random_adjacency,
    regression_data,
    spectral_normalized,
    spectral_scale,
    well_conditioned_design,
)
from .streams import row_update_factors, update_stream, zipf_batch_update
from .zipf import sample_rows, zipf_batch, zipf_probabilities

__all__ = [
    "dense_matrix",
    "random_adjacency",
    "regression_data",
    "row_update_factors",
    "sample_rows",
    "spectral_normalized",
    "spectral_scale",
    "update_stream",
    "well_conditioned_design",
    "zipf_batch",
    "zipf_batch_update",
    "zipf_probabilities",
]
