"""Continuous update streams (Section 7's workload driver).

The evaluation generates "a continuous random stream of rank-1 updates
where each update affects one row of an input matrix".  These helpers
produce such streams deterministically from a seed, either as raw
``(u, v)`` factor pairs (for the iterative maintainers) or as
:class:`~repro.runtime.updates.FactoredUpdate` events (for sessions).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..runtime.updates import FactoredUpdate, batch_row_update
from .zipf import zipf_batch


def row_update_factors(
    rng: np.random.Generator, n_rows: int, n_cols: int, count: int,
    scale: float = 0.01,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``count`` rank-1 row updates as ``(u, v)`` column pairs.

    ``u`` is the indicator of a random row; ``v`` the (scaled) change
    of that row.  Small ``scale`` keeps long streams numerically tame
    on spectrally normalized inputs.
    """
    for _ in range(count):
        row = int(rng.integers(0, n_rows))
        u = np.zeros((n_rows, 1))
        u[row, 0] = 1.0
        v = scale * rng.standard_normal((n_cols, 1))
        yield u, v


def update_stream(
    rng: np.random.Generator, target: str, n_rows: int, n_cols: int,
    count: int, scale: float = 0.01,
) -> Iterator[FactoredUpdate]:
    """Yield ``count`` rank-1 row updates as session events."""
    for u, v in row_update_factors(rng, n_rows, n_cols, count, scale):
        yield FactoredUpdate(target, u, v)


def zipf_batch_update(
    rng: np.random.Generator, target: str, n_rows: int, n_cols: int,
    batch_size: int, theta: float, scale: float = 0.01,
) -> FactoredUpdate:
    """One merged Table-4-style batch as a rank-k session event."""
    rows, deltas = zipf_batch(rng, n_rows, n_cols, batch_size, theta, scale)
    return batch_row_update(target, n_rows, rows, deltas)
